//! End-to-end integration tests spanning every crate: kernels flow from the
//! TSVC suite through the synthetic LLM, checksum testing, and the symbolic
//! verifier.

use llm_vectorizer_repro::agents::{run_fsm, vectorize_correct, FsmConfig};
use llm_vectorizer_repro::autovec::{speedup_over, Compiler, CompilerProfile, CostTable};
use llm_vectorizer_repro::core::{check_equivalence, Equivalence, PipelineConfig, Stage};
use llm_vectorizer_repro::interp::{checksum_test, ChecksumConfig};
use llm_vectorizer_repro::tsvc;

#[test]
fn correct_vectorizations_survive_the_whole_pipeline() {
    for name in ["s000", "s112", "s127", "s2711", "vsumr"] {
        let scalar = tsvc::kernel(name).unwrap().function();
        let candidate = vectorize_correct(&scalar).unwrap();
        let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
        assert_eq!(
            report.verdict,
            Equivalence::Equivalent,
            "{}: {} (stage {:?})",
            name,
            report.detail,
            report.stage
        );
    }
}

#[test]
fn paper_motivating_example_end_to_end() {
    let scalar = tsvc::kernel("s212").unwrap().function();
    let candidate = vectorize_correct(&scalar).unwrap();
    // Checksum-plausible, formally verified, and faster than the baselines
    // that refuse to vectorize.
    let checksum = checksum_test(&scalar, &candidate, &ChecksumConfig::default());
    assert!(checksum.outcome.is_plausible());
    let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
    assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
    let costs = CostTable::default();
    let gcc = speedup_over(
        &CompilerProfile::of(Compiler::Gcc),
        &scalar,
        &candidate,
        32_000,
        &costs,
    );
    let icc = speedup_over(
        &CompilerProfile::of(Compiler::Icc),
        &scalar,
        &candidate,
        32_000,
        &costs,
    );
    assert!(gcc > 2.0, "GCC speedup {:.2}", gcc);
    assert!(
        gcc > icc,
        "dependence kernels favour the LLM most against GCC/Clang"
    );
}

#[test]
fn fsm_produces_verified_candidates_for_easy_kernels() {
    let scalar = tsvc::kernel("s000").unwrap().function();
    let result = run_fsm(&scalar, &FsmConfig::default());
    assert!(result.succeeded());
    let report = check_equivalence(
        &scalar,
        result.candidate.as_ref().unwrap(),
        &PipelineConfig::default(),
    );
    assert_eq!(report.verdict, Equivalence::Equivalent);
}

#[test]
fn broken_candidates_are_caught_by_testing_or_verification() {
    // A dependence-violating s212 candidate: loads a[i+1] after storing a[i].
    let scalar = tsvc::kernel("s212").unwrap().function();
    let broken = llm_vectorizer_repro::cir::parse_function(
        "void s212(int n, int *a, int *b, int *c, int *d) { int i; for (i = 0; i + 8 <= n - 1; i += 8) { __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]); __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]); __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]); __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_mullo_epi32(a_vec, c_vec)); __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]); _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, _mm256_mullo_epi32(a_next, d_vec))); } for (; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
    )
    .unwrap();
    let report = check_equivalence(&scalar, &broken, &PipelineConfig::default());
    assert_eq!(report.verdict, Equivalence::NotEquivalent);
    // Either stage may catch it; it must not be reported as verified.
    assert_ne!(report.stage, Stage::Splitting);
}
