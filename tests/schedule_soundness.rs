//! Schedule soundness: reordering the symbolic cascade stages can change
//! which stage answers, but never *what* is answered.
//!
//! The property test enumerates every permutation of the three symbolic
//! stages (checksum pinned first, as `StageSchedule` enforces) and pins that
//! all of them produce bit-identical verdicts on a TSVC slice spanning every
//! kernel category — while non-default permutations fingerprint distinctly,
//! so their cache entries never mix with the default schedule's. The profile
//! tests pin the cross-run loop: a persisted `CrossRunProfile` reloads to an
//! identical derived schedule and identical derived budgets, and a slice
//! whose conditional kernels waste their Alive2 budget derives a non-default
//! schedule with *no pilot slice* that still yields the same verdicts.

use llm_vectorizer_repro::agents::vectorize_correct;
use llm_vectorizer_repro::analysis::{categorize, KernelCategory};
use llm_vectorizer_repro::core::{
    AdaptiveBudgetPolicy, BatchReport, CrossRunProfile, EngineConfig, Equivalence, FsyncPolicy,
    Job, PipelineConfig, Stage, StageSchedule, VerificationEngine, SYMBOLIC_STAGES,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};

/// Reduced budgets (the shard-sweep example's): small enough that the
/// conditional kernels exhaust Alive2 and fall through — which is exactly
/// the regime where reordering matters.
fn pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    }
}

/// A TSVC slice covering every kernel category (including a checksum-refuted
/// candidate, s319) — small enough that 6 permutations stay test-friendly.
fn slice_jobs() -> Vec<Job> {
    [
        "s000", "s112", "vsumr", "s313", "s2711", "s441", "s212", "s453", "s319",
    ]
    .iter()
    .filter_map(|name| {
        let scalar = llm_vectorizer_repro::tsvc::kernel(name)?.function();
        let candidate = vectorize_correct(&scalar).ok()?;
        Some(Job::new(*name, scalar, candidate))
    })
    .collect()
}

fn all_symbolic_permutations() -> Vec<[Stage; 3]> {
    let [a, b, c] = SYMBOLIC_STAGES;
    vec![
        [a, b, c],
        [a, c, b],
        [b, a, c],
        [b, c, a],
        [c, a, b],
        [c, b, a],
    ]
}

/// A schedule applying `order` to every category, so every job in the batch
/// runs reordered.
fn uniform_schedule(order: [Stage; 3]) -> StageSchedule {
    KernelCategory::all()
        .into_iter()
        .try_fold(StageSchedule::algorithm1(), |schedule, category| {
            schedule.with_override(category, order.to_vec())
        })
        .expect("a permutation of SYMBOLIC_STAGES is always valid")
}

fn assert_verdicts_match(default: &BatchReport, other: &BatchReport, what: &str) {
    assert_eq!(default.jobs.len(), other.jobs.len(), "{}: job count", what);
    for (d, o) in default.jobs.iter().zip(&other.jobs) {
        assert_eq!(d.label, o.label, "{}: job order", what);
        assert_eq!(d.verdict, o.verdict, "{}: verdict for {}", what, d.label);
        assert_eq!(
            d.checksum, o.checksum,
            "{}: checksum class for {}",
            what, d.label
        );
    }
}

#[test]
fn every_symbolic_permutation_yields_identical_verdicts() {
    let jobs = slice_jobs();
    assert!(jobs.len() >= 8, "slice must cover every category");
    let categories: Vec<KernelCategory> = jobs.iter().map(|j| categorize(&j.scalar)).collect();
    for category in KernelCategory::all() {
        assert!(
            categories.contains(&category),
            "slice is missing a {} kernel",
            category.tag()
        );
    }

    let default_config = EngineConfig::full(pipeline()).with_threads(1);
    let default_fingerprint = default_config.semantic_fingerprint();
    let default_run = VerificationEngine::new(default_config).run_batch(&jobs);
    assert!(
        default_run.count(Equivalence::Equivalent) >= 6,
        "the slice must exercise the symbolic stages"
    );
    assert!(
        default_run.count(Equivalence::NotEquivalent) >= 1,
        "the slice must include a refuted candidate"
    );

    for order in all_symbolic_permutations() {
        let config = EngineConfig::full(pipeline())
            .with_threads(1)
            .with_schedule(uniform_schedule(order));
        let fingerprint = config.semantic_fingerprint();
        if order == SYMBOLIC_STAGES {
            assert_eq!(
                fingerprint, default_fingerprint,
                "the identity permutation is the default configuration"
            );
        } else {
            assert_ne!(
                fingerprint, default_fingerprint,
                "a real reorder must fingerprint (and therefore cache) distinctly"
            );
        }
        let run = VerificationEngine::new(config).run_batch(&jobs);
        assert_verdicts_match(&default_run, &run, &format!("permutation {:?}", order));
        // The permutation really was executed: every job that ran a
        // symbolic stage ran them in the permuted order (checksum first).
        for report in &run.jobs {
            let symbolic: Vec<Stage> = report
                .traces
                .iter()
                .map(|t| t.stage)
                .filter(|s| *s != Stage::Checksum)
                .collect();
            let expected: Vec<Stage> = order.iter().copied().take(symbolic.len()).collect();
            assert_eq!(
                symbolic, expected,
                "{}: symbolic stages must run in schedule order",
                report.label
            );
            if !report.traces.is_empty() {
                assert_eq!(
                    report.traces[0].stage,
                    Stage::Checksum,
                    "checksum is pinned"
                );
            }
        }
    }
}

#[test]
fn profile_round_trip_derives_identical_schedule_and_budgets() {
    let jobs = slice_jobs();
    let run =
        VerificationEngine::new(EngineConfig::full(pipeline()).with_threads(1)).run_batch(&jobs);
    let profile = CrossRunProfile::from_batch(&jobs, &run.jobs);
    assert!(!profile.is_empty());

    let path = std::env::temp_dir().join(format!(
        "lv-schedule-roundtrip-{}.profile.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    profile.append_to(&path, FsyncPolicy::OnCompact).unwrap();
    let reloaded = CrossRunProfile::load(&path).unwrap();
    assert_eq!(reloaded, profile, "persist -> reload is lossless");

    // Identical derived schedule…
    assert_eq!(
        StageSchedule::from_profile(&reloaded),
        StageSchedule::from_profile(&profile)
    );
    // …and identical derived budgets.
    let policy = AdaptiveBudgetPolicy::default();
    let base = pipeline().tv;
    let from_memory = policy.derive_from_profile(&profile, &base);
    let from_disk = policy.derive_from_profile(&reloaded, &base);
    assert_eq!(from_memory.alive2_budget, from_disk.alive2_budget);
    assert_eq!(from_memory.cunroll_budget, from_disk.cunroll_budget);
    assert_eq!(from_memory.spatial_budget, from_disk.spatial_budget);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn warm_profile_derives_a_non_default_schedule_with_identical_verdicts() {
    let jobs = slice_jobs();
    let default_run =
        VerificationEngine::new(EngineConfig::full(pipeline()).with_threads(1)).run_batch(&jobs);

    // First run recorded; second run derives its schedule from the profile
    // alone — no pilot slice, no fresh telemetry.
    let profile = CrossRunProfile::from_batch(&jobs, &default_run.jobs);
    let derived = StageSchedule::from_profile(&profile);
    assert!(
        !derived.is_default(),
        "conditional kernels exhaust Alive2 under these budgets, so the profile \
         must demote it for that category; derived: {}",
        derived.spec()
    );
    let conditional = derived
        .override_for(KernelCategory::Conditional)
        .expect("the conditional category is the one with wasted Alive2 budget");
    assert_ne!(
        conditional[0],
        Stage::Alive2,
        "Alive2 killed nothing for conditional kernels and must not stay first"
    );

    let guided = VerificationEngine::new(
        EngineConfig::full(pipeline())
            .with_threads(1)
            .with_schedule(derived),
    )
    .run_batch(&jobs);
    assert_verdicts_match(&default_run, &guided, "profile-guided schedule");
}
