//! Shard-planning properties and the merge-equivalence pin: a sweep split
//! over N shards — run through the real on-disk exchange (manifest →
//! per-shard runner → shard report + cache file → merge) — must reproduce
//! the single-process batch exactly, for N ∈ {1, 2, 7}, on the TSVC suite.

use llm_vectorizer_repro::agents::{sample_completion_batch, LlmConfig};
use llm_vectorizer_repro::core::shard::{run_shard, ShardReportFile, SweepManifest};
use llm_vectorizer_repro::core::{
    EngineConfig, Job, JobReport, PipelineConfig, ShardPlan, ShardPolicy, VerdictCache,
    VerificationEngine,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use lv_bench::sweep_tv_config;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Reduced budgets so three full-suite sweeps stay test-friendly (debug-mode
/// SAT is the slow part; the equivalence claims hold for any budget).
fn sweep_pipeline() -> PipelineConfig {
    let mut tv = sweep_tv_config();
    tv.alive2_budget.max_conflicts = 500;
    tv.cunroll_budget.max_conflicts = 4_000;
    tv.spatial_budget.max_conflicts = 1_500;
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    }
}

/// One synthetic-LLM candidate per TSVC kernel: a realistic mix of correct,
/// refutable, and non-compiling candidates across the whole suite.
fn suite_jobs() -> Vec<Job> {
    let scalars: Vec<_> = KERNELS.iter().map(|k| k.function()).collect();
    let batch = sample_completion_batch(&scalars, &LlmConfig::default(), 1);
    KERNELS
        .iter()
        .zip(&scalars)
        .zip(batch.completions.iter())
        .map(|((kernel, scalar), completions)| {
            Job::new(
                kernel.name,
                scalar.clone(),
                completions[0].candidate.clone(),
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lv-shard-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every job lands in exactly one shard, for random shard counts and a
    /// random subset of the suite, under both policies.
    #[test]
    fn every_job_lands_in_exactly_one_shard(shards in 1usize..12, take in 1usize..40, hash in any::<bool>()) {
        let jobs: Vec<Job> = suite_jobs().into_iter().take(take).collect();
        let policy = if hash { ShardPolicy::HashMod } else { ShardPolicy::Contiguous };
        let plan = ShardPlan::new(&jobs, shards, policy);
        let mut owners = vec![0usize; jobs.len()];
        for shard in 0..plan.shards() {
            for index in plan.indices_of(shard) {
                prop_assert_eq!(plan.shard_of(index), shard);
                owners[index] += 1;
            }
        }
        prop_assert!(owners.iter().all(|&n| n == 1), "{:?}", owners);
    }

    /// Plans are a pure function of (jobs, shards, policy): rebuilding one
    /// from scratch yields the identical assignment.
    #[test]
    fn plans_are_stable_across_runs(shards in 1usize..12, hash in any::<bool>()) {
        let policy = if hash { ShardPolicy::HashMod } else { ShardPolicy::Contiguous };
        let first = ShardPlan::new(&suite_jobs(), shards, policy);
        let second = ShardPlan::new(&suite_jobs(), shards, policy);
        prop_assert_eq!(first, second);
    }
}

/// Runs every shard of `manifest` through the real worker path (files and
/// all) in-process, then merges reports and caches the way the coordinator
/// does, returning the reports in job order plus the merged cache.
fn run_all_shards_and_merge(
    manifest: &SweepManifest,
    dir: &std::path::Path,
) -> (Vec<JobReport>, VerdictCache) {
    let manifest_path = dir.join("manifest.json");
    manifest.write(&manifest_path).expect("write manifest");
    let loaded = SweepManifest::load(&manifest_path).expect("reload manifest");
    assert_eq!(loaded.fingerprint(), manifest.fingerprint());

    let merged = VerdictCache::in_memory();
    let mut entries: BTreeMap<usize, JobReport> = BTreeMap::new();
    for shard in 0..loaded.shards {
        // Journal-mode default: the report and cache land as journals,
        // which the loaders below sniff and replay.
        let output = run_shard(
            &loaded,
            shard,
            dir,
            None,
            llm_vectorizer_repro::core::FlushMode::default(),
        )
        .expect("shard run");
        let report = ShardReportFile::load(&output.report_file).expect("shard report");
        assert_eq!(report.fingerprint, manifest.fingerprint());
        for (index, job_report) in report.entries {
            assert!(
                entries.insert(index, job_report).is_none(),
                "job {} reported by two shards",
                index
            );
        }
        let shard_cache = VerdictCache::open(&output.cache_file).expect("shard cache");
        merged
            .merge_from(&shard_cache)
            .expect("shard caches must agree");
    }
    assert_eq!(entries.len(), loaded.jobs.len(), "no job may be lost");
    (entries.into_values().collect(), merged)
}

#[test]
fn merged_reports_equal_single_process_for_1_2_and_7_shards() {
    let jobs = suite_jobs();
    assert!(jobs.len() >= 60, "expected the whole embedded TSVC suite");
    let config = EngineConfig::full(sweep_pipeline()).with_threads(1);

    // Single-process baseline, with the same kind of cold cache the shard
    // workers run with (intra-batch duplicate kernels hit it, so cache_hit
    // flags are part of the comparison where shard layout permits).
    let baseline_cache = std::sync::Arc::new(VerdictCache::in_memory());
    let baseline =
        VerificationEngine::new(config.clone().with_cache(baseline_cache.clone())).run_batch(&jobs);

    for shards in [1usize, 2, 7] {
        let dir = temp_dir(&format!("merge{}", shards));
        let manifest = SweepManifest::new(&config, &jobs, shards, ShardPolicy::HashMod);
        let (merged_reports, merged_cache) = run_all_shards_and_merge(&manifest, &dir);

        for (s, m) in baseline.jobs.iter().zip(&merged_reports) {
            assert_eq!(s.label, m.label, "{} shards: job order", shards);
            assert_eq!(
                s.verdict, m.verdict,
                "{} shards: verdict for {}",
                shards, s.label
            );
            assert_eq!(s.stage, m.stage, "{} shards: stage for {}", shards, s.label);
            assert_eq!(
                s.detail, m.detail,
                "{} shards: detail for {}",
                shards, s.label
            );
            assert_eq!(
                s.checksum, m.checksum,
                "{} shards: checksum for {}",
                shards, s.label
            );
        }
        // The merged cache holds exactly the baseline's verdict set: same
        // keys, same payloads — the strongest form of "bit-identical",
        // since persisting either produces the same sorted rendering.
        assert_eq!(
            merged_cache.len(),
            baseline_cache.len(),
            "{} shards",
            shards
        );
        let conflict_free = merged_cache.merge_from(&baseline_cache);
        assert_eq!(
            conflict_free.expect("caches must agree").added,
            0,
            "{} shards: merged cache is missing baseline verdicts",
            shards
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
