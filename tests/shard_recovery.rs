//! Coordinator supervision and recovery: dead, failing, hanging, and
//! partially-finished shard workers must never cost a verdict — the
//! coordinator re-runs exactly the missing jobs in-process and the merged
//! result equals the single-process run.
//!
//! These tests drive [`run_sharded_sweep`] with deliberately broken worker
//! commands (`false`, a sleeping shell) and with real partial output staged
//! by the in-process shard runner, so they cover the recovery machinery
//! without self-exec; the 2-shard *self-exec* path (healthy and killed
//! mid-sweep via `--fail-after`) is pinned by `examples/shard_sweep.rs` in
//! CI.

use llm_vectorizer_repro::core::shard::{
    run_shard, run_shard_with, ShardRunOptions, SweepManifest,
};
use llm_vectorizer_repro::core::{
    run_sharded_sweep, EngineConfig, FlushMode, Job, PipelineConfig, ShardPolicy, ShardStatus,
    SweepConfig, VerificationEngine, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use std::path::PathBuf;
use std::time::Duration;

fn quick_config() -> EngineConfig {
    let mut tv = llm_vectorizer_repro::tv::TvConfig {
        alive2_chunks: 1,
        ..Default::default()
    };
    // Reduced budgets keep the repeated 4-kernel sweeps test-friendly; the
    // recovery contract holds for any budget.
    tv.alive2_budget.max_conflicts = 1_000;
    tv.cunroll_budget.max_conflicts = 10_000;
    tv.spatial_budget.max_conflicts = 4_000;
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    })
    .with_threads(1)
}

fn small_jobs() -> Vec<Job> {
    ["s000", "s112", "s212", "vsumr"]
        .iter()
        .map(|name| {
            let scalar = llm_vectorizer_repro::tsvc::kernel(name).unwrap().function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).unwrap();
            Job::new(*name, scalar, candidate)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lv-recover-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn assert_matches_single_process(swept: &llm_vectorizer_repro::core::ShardedSweep, jobs: &[Job]) {
    let single = VerificationEngine::new(quick_config()).run_batch(jobs);
    assert_eq!(swept.report.jobs.len(), single.jobs.len());
    for (s, m) in single.jobs.iter().zip(&swept.report.jobs) {
        assert_eq!(s.label, m.label);
        assert_eq!(s.verdict, m.verdict, "verdict drifted for {}", s.label);
        assert_eq!(s.stage, m.stage, "stage drifted for {}", s.label);
        assert_eq!(s.detail, m.detail, "detail drifted for {}", s.label);
    }
}

#[test]
fn workers_that_die_immediately_are_fully_recovered() {
    let jobs = small_jobs();
    let dir = temp_dir("dead");
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir: dir.clone(),
        // `false` exits 1 without writing any output: total worker loss.
        worker: WorkerSpec::new("false"),
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &quick_config(), &sweep).expect("sweep must recover");
    for outcome in &swept.shards {
        assert_eq!(outcome.status, ShardStatus::Failed(Some(1)));
        assert_eq!(outcome.reported, 0);
    }
    assert_eq!(swept.recovered, vec![0, 1, 2, 3], "every job recovered");
    assert_eq!(swept.cache.len(), jobs.len(), "recovery fills the cache");
    assert_matches_single_process(&swept, &jobs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hanging_workers_are_killed_at_the_timeout_and_recovered() {
    let jobs = small_jobs();
    let dir = temp_dir("hang");
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        timeout: Duration::from_millis(300),
        // The shard arguments land in the shell's `$0`/positional slots and
        // are ignored; the worker just hangs past the deadline.
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec!["-c".to_string(), "sleep 60".to_string()],
        },
        ..SweepConfig::default()
    };
    let start = std::time::Instant::now();
    let swept = run_sharded_sweep(&jobs, &quick_config(), &sweep).expect("sweep must recover");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "the coordinator must not wait out the full sleep"
    );
    for outcome in &swept.shards {
        assert_eq!(outcome.status, ShardStatus::TimedOut);
    }
    assert_eq!(swept.recovered.len(), jobs.len());
    assert_matches_single_process(&swept, &jobs);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unspawnable_workers_are_recovered() {
    let jobs = small_jobs();
    let dir = temp_dir("spawn");
    let sweep = SweepConfig {
        shards: 2,
        workdir: dir.clone(),
        worker: WorkerSpec::new("/nonexistent/lv-shard-worker"),
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &quick_config(), &sweep).expect("sweep must recover");
    for outcome in &swept.shards {
        assert!(
            matches!(outcome.status, ShardStatus::SpawnFailed(_)),
            "{:?}",
            outcome.status
        );
    }
    assert_eq!(swept.recovered.len(), jobs.len());
    assert_matches_single_process(&swept, &jobs);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker killed mid-sweep leaves flushed partial output; the coordinator
/// must keep the finished prefix and re-run only the missing jobs. The
/// partial state is staged with the real shard runner (its `fail_after`
/// fault injection would exit *this* process, so the prefix is produced by
/// running shard 0 over a truncated manifest — byte-for-byte what a killed
/// worker leaves behind, since flushes happen after every job).
#[test]
fn partial_shard_output_is_kept_and_only_missing_jobs_rerun() {
    let jobs = small_jobs();
    let config = quick_config();
    let dir = temp_dir("partial");

    // Contiguous split of 4 jobs over 2 shards: shard 0 owns jobs {0, 1}.
    // Stage, in a side directory, shard 0's output as it looks after dying
    // past job 0: run it over a manifest whose shard 0 is just job 0 (same
    // shard count, so the fingerprint matches), then truncate the report to
    // entry 0 — byte-for-byte what a killed worker leaves behind, since
    // flushes happen after every job.
    let staging = temp_dir("partial-staging");
    let truncated: Vec<Job> = vec![jobs[0].clone(), jobs[2].clone(), jobs[3].clone()];
    let staged = SweepManifest::new(&config, &truncated, 2, ShardPolicy::Contiguous);
    assert_eq!(staged.plan().indices_of(0), vec![0, 1], "staging layout");
    // Rewrite mode keeps the legacy whole-file flush protocol covered; the
    // journal-mode version of this scenario is `torn_journal_tails_...`.
    let output =
        run_shard(&staged, 0, &staging, None, FlushMode::Rewrite).expect("staging shard run");
    let mut report =
        llm_vectorizer_repro::core::shard::ShardReportFile::load(&output.report_file).unwrap();
    report.entries.retain(|(index, _)| *index == 0);
    report.write(&output.report_file).unwrap();
    // Park the partial output under names the coordinator's pre-clean
    // leaves alone; the shard 0 "worker" installs it mid-sweep and dies.
    std::fs::copy(&output.report_file, dir.join("partial.report.json")).unwrap();
    std::fs::copy(&output.cache_file, dir.join("partial.cache.json")).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        // Shard 0 leaves the staged partial output and dies; shard 1 dies
        // with nothing ($1 is `i/N`, $5 is the --out directory).
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec![
                "-c".to_string(),
                "if [ \"${1%%/*}\" = 0 ]; then \
                     cp \"$5/partial.report.json\" \"$5/shard-0.report.json\"; \
                     cp \"$5/partial.cache.json\" \"$5/shard-0.cache.json\"; \
                 fi; exit 7"
                    .to_string(),
            ],
        },
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &config, &sweep).expect("sweep must recover");
    assert_eq!(
        swept.shards[0].reported, 1,
        "the flushed prefix must be kept"
    );
    assert_eq!(
        swept.recovered,
        vec![1, 2, 3],
        "only the unreported jobs are re-run"
    );
    assert_matches_single_process(&swept, &jobs);
    assert_eq!(swept.cache.len(), jobs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reused workdir holding shard outputs from a *previous* sweep (same
/// engine configuration, different job list) must not leak the old results
/// into the new sweep: per-shard outputs are wiped before workers spawn.
#[test]
fn stale_outputs_in_a_reused_workdir_are_ignored() {
    let config = quick_config();
    let dir = temp_dir("stale");

    // Sweep A: stage shard outputs for one job list via the real runner.
    let old_jobs = small_jobs();
    let old_manifest = SweepManifest::new(&config, &old_jobs, 2, ShardPolicy::Contiguous);
    run_shard(&old_manifest, 0, &dir, None, FlushMode::default()).expect("staging shard run");
    run_shard(&old_manifest, 1, &dir, None, FlushMode::default()).expect("staging shard run");

    // Sweep B: a *different* job list, same configuration (so the
    // config-only fingerprint in the stale reports matches), same workdir,
    // and workers that die instantly — if the stale reports were trusted,
    // old verdicts would be attributed to the wrong jobs.
    let new_jobs: Vec<Job> = small_jobs().into_iter().rev().collect();
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        worker: WorkerSpec::new("false"),
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&new_jobs, &config, &sweep).expect("sweep must recover");
    assert_eq!(
        swept.recovered.len(),
        new_jobs.len(),
        "stale reports must not satisfy any of the new sweep's jobs"
    );
    for outcome in &swept.shards {
        assert_eq!(
            outcome.reported, 0,
            "shard {} leaked stale entries",
            outcome.shard
        );
    }
    let single = VerificationEngine::new(quick_config()).run_batch(&new_jobs);
    for (s, m) in single.jobs.iter().zip(&swept.report.jobs) {
        assert_eq!((&s.label, s.verdict), (&m.label, m.verdict));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The journal-mode mirror of the partial-output case: a worker killed
/// mid-*append* leaves journals whose final record is torn mid-frame. The
/// coordinator must keep every complete record (detecting the torn tail by
/// its checksum framing, never mis-parsing it) and re-run only the jobs
/// past the tear — and the merged result must still equal the
/// single-process run.
#[test]
fn torn_journal_tails_are_truncated_and_only_missing_jobs_rerun() {
    let jobs = small_jobs();
    let config = quick_config();
    let dir = temp_dir("torn-journal");

    // Stage shard 0's journals (contiguous split: jobs {0, 1}) with the
    // real runner, then tear the final record of both journals by chopping
    // bytes off the end — byte-for-byte what a kill mid-append leaves,
    // since journal appends are sequential writes.
    let staging = temp_dir("torn-journal-staging");
    let manifest = SweepManifest::new(&config, &jobs, 2, ShardPolicy::Contiguous);
    assert_eq!(manifest.plan().indices_of(0), vec![0, 1], "staging layout");
    let output =
        run_shard(&manifest, 0, &staging, None, FlushMode::default()).expect("staging shard run");
    for file in [&output.report_file, &output.cache_file] {
        let bytes = std::fs::read(file).unwrap();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(
            text.starts_with("{\"journal\":"),
            "staged output must be a journal, got: {}",
            &text[..text.len().min(40)]
        );
        // Cut inside the final record (5 bytes shy of its newline).
        std::fs::write(file, &bytes[..bytes.len() - 5]).unwrap();
    }
    std::fs::copy(&output.report_file, dir.join("partial.report.json")).unwrap();
    std::fs::copy(&output.cache_file, dir.join("partial.cache.json")).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        // Shard 0 installs the torn journals and dies; shard 1 dies with
        // nothing ($1 is `i/N`, $5 is the --out directory).
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec![
                "-c".to_string(),
                "if [ \"${1%%/*}\" = 0 ]; then \
                     cp \"$5/partial.report.json\" \"$5/shard-0.report.json\"; \
                     cp \"$5/partial.cache.json\" \"$5/shard-0.cache.json\"; \
                 fi; exit 9"
                    .to_string(),
            ],
        },
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &config, &sweep).expect("sweep must recover");
    assert_eq!(
        swept.shards[0].reported, 1,
        "the complete journal prefix (job 0) must be kept"
    );
    assert_eq!(
        swept.recovered,
        vec![1, 2, 3],
        "only the torn-away and unreported jobs are re-run"
    );
    assert_matches_single_process(&swept, &jobs);
    assert_eq!(swept.cache.len(), jobs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The batched-flush (`--flush-every N`) mirror of the torn-journal case: a
/// worker killed between batch flushes loses up to N−1 *whole* buffered
/// tail records — the journals end at a clean record boundary with recent
/// jobs simply absent, rather than with a torn frame. The coordinator must
/// keep the flushed prefix, tolerate the lost tail, and recover to a result
/// equal to the single-process run.
#[test]
fn batched_flush_kill_loses_at_most_n_minus_1_tail_records_and_recovers() {
    let jobs = small_jobs();
    let config = quick_config();
    let dir = temp_dir("flush-every");
    const FLUSH_EVERY: usize = 3;

    // Stage shard 0's journals (contiguous split: jobs {0, 1}) through the
    // real batched-flush runner, then drop the last 2 records (one from
    // each journal would do; chop the report's tail job and the cache's
    // newest entry) — byte-for-byte what a kill between batch flushes
    // leaves, since unflushed appends never reach the file at all.
    let staging = temp_dir("flush-every-staging");
    let manifest = SweepManifest::new(&config, &jobs, 2, ShardPolicy::Contiguous);
    assert_eq!(manifest.plan().indices_of(0), vec![0, 1], "staging layout");
    let output = run_shard_with(
        &manifest,
        0,
        &staging,
        &ShardRunOptions {
            flush_every: FLUSH_EVERY,
            ..ShardRunOptions::default()
        },
    )
    .expect("staging shard run");
    for file in [&output.report_file, &output.cache_file] {
        let text = std::fs::read_to_string(file).unwrap();
        assert!(
            text.starts_with("{\"journal\":"),
            "staged output must be a journal"
        );
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "header + 2 records, got {}", lines.len());
        lines.pop(); // the batched tail record that never got flushed
        std::fs::write(file, format!("{}\n", lines.join("\n"))).unwrap();
    }
    std::fs::copy(&output.report_file, dir.join("partial.report.json")).unwrap();
    std::fs::copy(&output.cache_file, dir.join("partial.cache.json")).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        flush_every: FLUSH_EVERY,
        // Shard 0 installs the truncated journals and dies; shard 1 dies
        // with nothing ($1 is `i/N`, $5 is the --out directory).
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec![
                "-c".to_string(),
                "if [ \"${1%%/*}\" = 0 ]; then \
                     cp \"$5/partial.report.json\" \"$5/shard-0.report.json\"; \
                     cp \"$5/partial.cache.json\" \"$5/shard-0.cache.json\"; \
                 fi; exit 5"
                    .to_string(),
            ],
        },
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &config, &sweep).expect("sweep must recover");
    let finished = 2usize; // jobs shard 0 completed before the "kill"
    assert!(
        swept.shards[0].reported >= finished - (FLUSH_EVERY - 1)
            && swept.shards[0].reported < finished,
        "the kill must cost at most N-1 tail records (reported {}, finished {})",
        swept.shards[0].reported,
        finished
    );
    assert_eq!(
        swept.recovered,
        vec![1, 2, 3],
        "exactly the lost tail and the dead shard's jobs are re-run"
    );
    assert_matches_single_process(&swept, &jobs);
    assert_eq!(swept.cache.len(), jobs.len());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard whose *cache file* is corrupt (torn write, disk trouble) must
/// not discard the healthy shards' work: the verdicts are re-derivable from
/// the shard reports and the recovery run, and the merged cache is rebuilt
/// complete from those.
#[test]
fn corrupt_shard_caches_are_tolerated_and_the_merged_cache_is_complete() {
    let jobs = small_jobs();
    let config = quick_config();
    let dir = temp_dir("torncache");

    // The "worker" writes garbage over its own shard cache (positional
    // parameters: $1 is `i/N`, $5 is the --out directory) and exits 0
    // without producing a report.
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec![
                "-c".to_string(),
                "echo garbage > \"$5/shard-${1%%/*}.cache.json\"".to_string(),
            ],
        },
        ..SweepConfig::default()
    };
    let swept = run_sharded_sweep(&jobs, &config, &sweep)
        .expect("a corrupt shard cache must not abort the sweep");
    assert_eq!(swept.recovered.len(), jobs.len());
    assert_eq!(
        swept.cache.len(),
        jobs.len(),
        "the merged cache is rebuilt complete from the collected verdicts"
    );
    assert_matches_single_process(&swept, &jobs);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shard cache that disagrees with another shard's results is a typed
/// merge conflict, not silent last-write-wins.
#[test]
fn conflicting_shard_caches_abort_the_merge() {
    let jobs = small_jobs();
    let config = quick_config();
    let dir = temp_dir("conflict");

    // Produce a healthy shard cache in a staging directory, flip one
    // verdict, and park the forgery under a name the coordinator's
    // output pre-clean leaves alone. The "workers" then install the
    // forgery as their own shard cache (positional parameters: $1 is
    // `i/N`, $5 is the --out directory) without writing a report, so every
    // job is re-run in-process — and the recovery verdicts disagree with
    // the forged cache entry.
    let staging = temp_dir("conflict-staging");
    let manifest = SweepManifest::new(&config, &jobs, 2, ShardPolicy::Contiguous);
    // Rewrite mode: the forgery below edits the snapshot text in place,
    // which a journal's per-record checksums would (correctly) reject as
    // corruption rather than surface as a merge conflict.
    let output =
        run_shard(&manifest, 0, &staging, None, FlushMode::Rewrite).expect("healthy shard run");
    let text = std::fs::read_to_string(&output.cache_file).unwrap();
    let flipped = text.replacen(
        "\"verdict\":\"equivalent\"",
        "\"verdict\":\"inconclusive\"",
        1,
    );
    assert_ne!(text, flipped, "need at least one equivalent verdict");
    std::fs::write(dir.join("forged.json"), flipped).unwrap();
    let _ = std::fs::remove_dir_all(&staging);

    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec![
                "-c".to_string(),
                "cp \"$5/forged.json\" \"$5/shard-${1%%/*}.cache.json\"".to_string(),
            ],
        },
        ..SweepConfig::default()
    };
    let err = run_sharded_sweep(&jobs, &config, &sweep)
        .expect_err("a disagreeing shard cache must abort the merge");
    assert!(
        matches!(
            err,
            llm_vectorizer_repro::core::ShardError::MergeConflict(_)
        ),
        "{:?}",
        err
    );
    let _ = std::fs::remove_dir_all(&dir);
}
