//! The overlapped generation→verification pipeline must be an
//! observationally pure speed-up: per-cell seeded generation is a pure
//! function of `(base seed, kernel index, completion index)` — injective
//! across cells, platform-stable, and identical at any generator thread
//! count — and streaming jobs into the engine as they are produced yields a
//! `BatchReport` bit-identical to running the precomputed job list, at any
//! worker count.

use llm_vectorizer_repro::agents::{
    derive_cell_seed, sample_completion_batch_seeded, Completion, LlmConfig,
};
use llm_vectorizer_repro::cir::ast::Function;
use llm_vectorizer_repro::cir::print_function;
use llm_vectorizer_repro::core::{
    generate_then_verify_pass_at_k, job_channel, overlapped_pass_at_k, BatchReport, EngineConfig,
    Job, PassKRun, PipelineConfig, VerificationEngine,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::kernel;
use lv_bench::sweep_tv_config;
use proptest::prelude::*;
use std::time::Duration;

/// A pipeline fast enough to sweep `kernels × k` cells at several thread
/// counts in a debug-build test, while still reaching symbolic stages.
fn quick_pipeline() -> PipelineConfig {
    let mut tv = sweep_tv_config();
    tv.alive2_budget.max_conflicts = 1_000;
    tv.cunroll_budget.max_conflicts = 10_000;
    tv.spatial_budget.max_conflicts = 4_000;
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    }
}

/// A small kernel slice with a mix of verdict outcomes under the synthetic
/// LLM: straight-line, reduction, and control-flow categories.
fn pipeline_kernels() -> Vec<(String, Function)> {
    ["s000", "s112", "vsumr"]
        .iter()
        .map(|name| (name.to_string(), kernel(name).unwrap().function()))
        .collect()
}

/// The observable outcome of one job, excluding wall times (which may vary
/// run to run) — everything the pipeline identity claims cover.
fn outcomes(report: &BatchReport) -> Vec<(String, String)> {
    report
        .jobs
        .iter()
        .map(|job| {
            (
                job.label.clone(),
                format!(
                    "{:?}|{:?}|{:?}|{}|{}",
                    job.verdict, job.stage, job.checksum, job.detail, job.cache_hit
                ),
            )
        })
        .collect()
}

fn assert_same_run(reference: &PassKRun, candidate: &PassKRun, what: &str) {
    assert_eq!(
        outcomes(&reference.report),
        outcomes(&candidate.report),
        "job outcomes diverged: {}",
        what
    );
    assert_eq!(
        reference.plausible_per_kernel, candidate.plausible_per_kernel,
        "plausible counts diverged: {}",
        what
    );
    assert_eq!(reference.curve, candidate.curve, "curve diverged: {}", what);
}

/// `derive_cell_seed` must reproduce these exact values on every platform —
/// the seeds (and therefore every generated candidate, and every shard
/// manifest's generation spec) are part of the cross-process contract.
#[test]
fn cell_seed_golden_values_are_platform_stable() {
    for (base, i, j, expected) in [
        (0x0, 0, 0, 0x48218226FF3CD4BF),
        (0x0, 0, 1, 0x9E0160293A33AAF7),
        (0x0, 1, 0, 0x16AD48B0285970E5),
        (0xC0FFEE, 0, 0, 0xDFFD7DC90F638802),
        (0xC0FFEE, 3, 7, 0x69527716C97060AA),
        (0xDEADBEEF, 12, 34, 0x8493487671FD4D7B),
    ] {
        assert_eq!(
            derive_cell_seed(base, i, j),
            expected,
            "derive_cell_seed(0x{:X}, {}, {})",
            base,
            i,
            j
        );
    }
}

/// Seeded generation is a pure function of the seed: one, two, and eight
/// generator threads produce the identical completion grid.
#[test]
fn seeded_generation_is_identical_at_gen_thread_counts_1_2_8() {
    let scalars: Vec<Function> = pipeline_kernels().into_iter().map(|(_, f)| f).collect();
    let config = LlmConfig {
        seed: 0xC0FFEE,
        ..LlmConfig::default()
    };
    let texts = |threads: usize| -> Vec<Vec<String>> {
        sample_completion_batch_seeded(&scalars, &config, 5, threads)
            .completions
            .iter()
            .map(|row| {
                row.iter()
                    .map(|c: &Completion| format!("{}\n{}", print_function(&c.candidate), c.notes))
                    .collect()
            })
            .collect()
    };
    let reference = texts(1);
    assert_eq!(reference, texts(2), "2 generator threads diverged");
    assert_eq!(reference, texts(8), "8 generator threads diverged");
}

/// A producer that trickles jobs into the channel — stalling between pushes
/// so workers repeatedly drain the queue dry and block — still yields a
/// `BatchReport` identical to `run_batch` on the precomputed job list, at
/// worker counts 1, 2, and 8.
#[test]
fn delayed_producer_stream_matches_precomputed_batch_at_worker_counts_1_2_8() {
    let kernels = pipeline_kernels();
    let config = LlmConfig {
        seed: 7,
        ..LlmConfig::default()
    };
    let k = 3;
    let scalars: Vec<Function> = kernels.iter().map(|(_, f)| f.clone()).collect();
    let jobs: Vec<Job> = sample_completion_batch_seeded(&scalars, &config, k, 1)
        .into_jobs()
        .map(|(i, j, completion)| {
            Job::new(
                format!("{}#{}", kernels[i].0, j),
                kernels[i].1.clone(),
                completion.candidate,
            )
        })
        .collect();

    for workers in [1, 2, 8] {
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(workers));
        let reference = engine.run_batch(&jobs);
        let (producer, source) = job_channel(2);
        let streamed = std::thread::scope(|scope| {
            scope.spawn(|| {
                for (index, job) in jobs.iter().enumerate() {
                    std::thread::sleep(Duration::from_millis(1));
                    producer.push(index, job.clone());
                }
                drop(producer);
            });
            engine.run_stream(&source)
        });
        assert_eq!(
            outcomes(&reference),
            outcomes(&streamed),
            "streamed report diverged from batch at {} workers",
            workers
        );
    }
}

/// The tentpole pin: the overlapped pipeline is bit-identical to
/// generate-then-verify with the same seed, across worker counts 1/2/8 and
/// generator thread counts 1/2/8.
#[test]
fn overlapped_pipeline_matches_generate_then_verify_at_thread_counts_1_2_8() {
    let kernels = pipeline_kernels();
    let config = LlmConfig {
        seed: 0xC0FFEE,
        ..LlmConfig::default()
    };
    let k = 4;
    let ks = [1, 2, 4];

    let reference_engine =
        VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(1));
    let reference = generate_then_verify_pass_at_k(&reference_engine, &kernels, &config, k, &ks, 1);
    assert!(
        reference.plausible_per_kernel.iter().any(|&c| c > 0),
        "degenerate pin: no plausible candidates at all"
    );

    for workers in [1, 2, 8] {
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(workers));
        for gen_threads in [1, 2, 8] {
            let overlapped =
                overlapped_pass_at_k(&engine, &kernels, &config, k, &ks, gen_threads, 2);
            assert_same_run(
                &reference,
                &overlapped,
                &format!("{} workers, {} generator threads", workers, gen_threads),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any base seed, distinct `(kernel, completion)` cells derive
    /// distinct seeds — the packing is injective and the SplitMix64
    /// finalizer is a bijection, so candidate streams never alias.
    #[test]
    fn cell_seed_derivation_is_injective(
        base in any::<u64>(),
        i1 in 0usize..1 << 20,
        j1 in 0usize..1 << 20,
        i2 in 0usize..1 << 20,
        j2 in 0usize..1 << 20,
    ) {
        // The shim has no prop_assume; identical cells are simply vacuous.
        if (i1, j1) != (i2, j2) {
            prop_assert_ne!(
                derive_cell_seed(base, i1, j1),
                derive_cell_seed(base, i2, j2),
                "cells ({}, {}) and ({}, {}) collided under base {:#x}",
                i1, j1, i2, j2, base
            );
        }
    }
}
