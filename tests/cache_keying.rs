//! Property tests for the verdict cache's content addressing, plus the
//! engine-level cache contract.
//!
//! The cache key must be exactly as coarse as the verification problem:
//! alpha-renaming (variables, labels, the function name) must not change a
//! function's [`structural_hash`], while any semantic mutation — a constant,
//! an operator — must. The properties mutate real TSVC kernel ASTs with the
//! `proptest` shim's deterministic sampler; the engine test then checks the
//! behavioral consequence end to end: a renamed candidate is answered from
//! the cache without running a single stage.

use llm_vectorizer_repro::cir::ast::{BinOp, Block, Expr, Function, Stmt};
use llm_vectorizer_repro::cir::visit::{collect_var_names, map_exprs_in_block, rename_var};
use llm_vectorizer_repro::cir::{parse_function, structural_hash};
use llm_vectorizer_repro::core::{
    CachedVerdict, EngineConfig, Equivalence, Job, PipelineConfig, Stage, VerdictCache,
    VerificationEngine,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use proptest::prelude::*;
use std::cell::Cell;
use std::sync::Arc;

/// Renames declared names in `Decl` statements ([`rename_var`] only touches
/// expression occurrences).
fn rename_decls(block: Block, from: &str, to: &str) -> Block {
    Block {
        stmts: block
            .stmts
            .into_iter()
            .map(|stmt| rename_decls_stmt(stmt, from, to))
            .collect(),
    }
}

fn rename_decls_stmt(stmt: Stmt, from: &str, to: &str) -> Stmt {
    match stmt {
        Stmt::Decl { ty, name, init } => Stmt::Decl {
            ty,
            name: if name == from { to.to_string() } else { name },
            init,
        },
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond,
            then_branch: rename_decls(then_branch, from, to),
            else_branch: else_branch.map(|b| rename_decls(b, from, to)),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init: init.map(|s| Box::new(rename_decls_stmt(*s, from, to))),
            cond,
            step,
            body: rename_decls(body, from, to),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond,
            body: rename_decls(body, from, to),
        },
        Stmt::Block(b) => Stmt::Block(rename_decls(b, from, to)),
        other => other,
    }
}

/// Collects every declared name in a block, recursively.
fn collect_decl_names(block: &Block, out: &mut Vec<String>) {
    llm_vectorizer_repro::cir::visit::for_each_stmt_in_block(block, &mut |stmt| {
        if let Stmt::Decl { name, .. } = stmt {
            if !out.contains(name) {
                out.push(name.clone());
            }
        }
    });
}

/// Renames every variable (parameters and locals included) to a fresh
/// spelling, along with the function itself.
fn rename_all_vars(func: &Function) -> Function {
    let mut renamed = func.clone();
    renamed.name = format!("{}_renamed", func.name);
    let mut names: Vec<String> = func.params.iter().map(|p| p.name.clone()).collect();
    for name in collect_var_names(&func.body) {
        if !names.contains(&name) {
            names.push(name);
        }
    }
    collect_decl_names(&func.body, &mut names);
    for (i, name) in names.iter().enumerate() {
        let fresh = format!("rn{}_{}", i, name);
        renamed.body = rename_var(renamed.body, name, &fresh);
        renamed.body = rename_decls(renamed.body, name, &fresh);
        for param in &mut renamed.params {
            if param.name == *name {
                param.name = fresh.clone();
            }
        }
    }
    renamed
}

/// Replaces the `target`-th integer literal with `value + delta`; returns
/// `None` when the function has fewer literals.
fn mutate_literal(func: &Function, target: usize, delta: i64) -> Option<Function> {
    let seen = Cell::new(0usize);
    let mutated = Function {
        body: map_exprs_in_block(func.body.clone(), &|e| match e {
            Expr::IntLit(v) => {
                let index = seen.get();
                seen.set(index + 1);
                if index == target {
                    Expr::IntLit(v.wrapping_add(delta))
                } else {
                    Expr::IntLit(v)
                }
            }
            other => other,
        }),
        ..func.clone()
    };
    (seen.get() > target).then_some(mutated)
}

/// Flips the `target`-th `+`/`-`/`*` binary operator; returns `None` when
/// the function has fewer of them.
fn mutate_operator(func: &Function, target: usize) -> Option<Function> {
    let seen = Cell::new(0usize);
    let mutated = Function {
        body: map_exprs_in_block(func.body.clone(), &|e| match e {
            Expr::Binary { op, lhs, rhs } if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul) => {
                let index = seen.get();
                seen.set(index + 1);
                let op = if index == target {
                    match op {
                        BinOp::Add => BinOp::Sub,
                        BinOp::Sub => BinOp::Mul,
                        _ => BinOp::Add,
                    }
                } else {
                    op
                };
                Expr::Binary { op, lhs, rhs }
            }
            other => other,
        }),
        ..func.clone()
    };
    (seen.get() > target).then_some(mutated)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Renaming every variable and the function itself never changes the
    /// hash, for any kernel in the embedded suite.
    #[test]
    fn renaming_preserves_the_hash(kernel in 0usize..62) {
        let func = KERNELS[kernel % KERNELS.len()].function();
        let renamed = rename_all_vars(&func);
        prop_assert_ne!(&renamed, &func, "renaming must actually change the AST");
        prop_assert_eq!(structural_hash(&renamed), structural_hash(&func));
    }

    /// Perturbing any integer literal changes the hash.
    #[test]
    fn constant_mutations_change_the_hash(kernel in 0usize..62, target in 0usize..6, delta in 1i64..1000) {
        let func = KERNELS[kernel % KERNELS.len()].function();
        if let Some(mutated) = mutate_literal(&func, target, delta) {
            prop_assert_ne!(&mutated, &func);
            prop_assert_ne!(structural_hash(&mutated), structural_hash(&func));
            // And the mutation stays detectable under renaming.
            prop_assert_ne!(
                structural_hash(&rename_all_vars(&mutated)),
                structural_hash(&func)
            );
        }
    }

    /// Flipping any arithmetic operator changes the hash.
    #[test]
    fn operator_mutations_change_the_hash(kernel in 0usize..62, target in 0usize..4) {
        let func = KERNELS[kernel % KERNELS.len()].function();
        if let Some(mutated) = mutate_operator(&func, target) {
            prop_assert_ne!(&mutated, &func);
            prop_assert_ne!(structural_hash(&mutated), structural_hash(&func));
        }
    }

    /// The cache file format round-trips arbitrary keys and details,
    /// including every escape-worthy character class.
    #[test]
    fn cache_file_round_trips(
        scalar in any::<u64>(),
        candidate in any::<u64>(),
        config in any::<u64>(),
        detail_codes in proptest::collection::vec(0u32..0x2500, 12),
    ) {
        use llm_vectorizer_repro::core::CacheKey;
        let detail: String = detail_codes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        let dir = std::env::temp_dir().join(format!("lv-cache-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.json");
        let _ = std::fs::remove_file(&path);

        let key = CacheKey { scalar, candidate, config };
        let verdict = CachedVerdict {
            verdict: Equivalence::NotEquivalent,
            stage: Stage::Checksum,
            detail,
            checksum: None,
        };
        let cache = VerdictCache::open(&path).unwrap();
        cache.insert(key, verdict.clone());
        cache.persist().unwrap();
        let reloaded = VerdictCache::open(&path).unwrap();
        prop_assert_eq!(reloaded.get(&key), Some(verdict));
        std::fs::remove_file(&path).unwrap();
    }
}

/// A goto/label kernel: renaming the label alone must keep the hash stable.
#[test]
fn label_renaming_preserves_the_hash() {
    let original = parse_function(
        "void k(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i]) { goto done; } a[i] = 0; } done: ; }",
    )
    .unwrap();
    let renamed = parse_function(
        "void k(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i]) { goto finish; } a[i] = 0; } finish: ; }",
    )
    .unwrap();
    assert_ne!(original, renamed);
    assert_eq!(structural_hash(&original), structural_hash(&renamed));
}

/// Renames only the candidate's *locals* (declared names), leaving the
/// parameter names — and therefore the scalar↔candidate name pairing —
/// intact.
fn rename_locals(func: &Function) -> Function {
    let mut renamed = func.clone();
    let params: Vec<String> = func.params.iter().map(|p| p.name.clone()).collect();
    let mut locals = Vec::new();
    collect_decl_names(&func.body, &mut locals);
    locals.retain(|name| !params.contains(name));
    for (i, name) in locals.iter().enumerate() {
        let fresh = format!("local{}_{}", i, name);
        renamed.body = rename_var(renamed.body, name, &fresh);
        renamed.body = rename_decls(renamed.body, name, &fresh);
    }
    renamed
}

fn quick_pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 44,
            ..ChecksumConfig::default()
        },
        ..PipelineConfig::default()
    }
}

const S000_SCALAR: &str =
    "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
const S000_VEC: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";

/// End to end: a candidate with its locals renamed is the same cache entry,
/// so the second batch answers it without running any stage.
#[test]
fn local_renamed_candidate_is_answered_from_the_cache() {
    let scalar = parse_function(S000_SCALAR).unwrap();
    let candidate = parse_function(S000_VEC).unwrap();
    let renamed = rename_locals(&candidate);
    assert_ne!(renamed, candidate, "the rename must change the AST");

    let cache = Arc::new(VerdictCache::in_memory());
    let engine =
        VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));
    let cold = engine.run_batch(&[Job::new("s000", scalar.clone(), candidate)]);
    assert_eq!(cold.jobs[0].verdict, Equivalence::Equivalent);
    assert_eq!(cache.len(), 1);

    let warm = engine.run_batch(&[Job::new("s000", scalar, renamed)]);
    assert!(warm.jobs[0].cache_hit, "local-renamed candidate must hit");
    assert_eq!(warm.stage_runs(), 0);
    assert_eq!(warm.jobs[0].verdict, cold.jobs[0].verdict);
    assert_eq!(warm.jobs[0].detail, cold.jobs[0].detail);
}

/// Renaming the candidate's *parameters* breaks the name pairing the
/// harnesses rely on (arrays are bound by parameter name), so it is a
/// different verification problem: the verdicts genuinely differ, and the
/// cache must keep the two apart even though the candidates are
/// alpha-equivalent in isolation.
#[test]
fn parameter_renamed_candidate_is_a_different_cache_entry() {
    let scalar = parse_function(S000_SCALAR).unwrap();
    // Missing epilogue: with matching names the checksum harness refutes it
    // (n = 44 is not a multiple of 8).
    let no_epilogue = parse_function(
        "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } }",
    )
    .unwrap();
    // The same candidate with renamed parameters: the checksum harness
    // binds disjoint arrays, so the refutation disappears.
    let params_renamed = parse_function(
        "void s000(int m, int *x, int *y) { int i; for (i = 0; i + 8 <= m; i += 8) { __m256i v = _mm256_loadu_si256((__m256i *)&y[i]); _mm256_storeu_si256((__m256i *)&x[i], _mm256_add_epi32(v, _mm256_set1_epi32(1))); } }",
    )
    .unwrap();
    // Alpha-equivalent in isolation...
    assert_eq!(
        structural_hash(&no_epilogue),
        structural_hash(&params_renamed)
    );

    // ...but different verdicts against the same scalar.
    let fresh = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
    let named_verdict = fresh.check_one(&scalar, &no_epilogue);
    assert_eq!(named_verdict.verdict, Equivalence::NotEquivalent);
    let renamed_verdict = fresh.check_one(&scalar, &params_renamed);
    assert_ne!(renamed_verdict.verdict, named_verdict.verdict);

    // The cache must not cross-contaminate: warm it with the renamed pair,
    // then query the name-matched pair — it must miss and re-derive the
    // refutation.
    let cache = Arc::new(VerdictCache::in_memory());
    let engine =
        VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));
    engine.run_batch(&[Job::new("renamed", scalar.clone(), params_renamed)]);
    assert_eq!(cache.len(), 1);
    let second = engine.run_batch(&[Job::new("named", scalar, no_epilogue)]);
    assert!(
        !second.jobs[0].cache_hit,
        "a param-renamed entry must not answer the name-matched problem"
    );
    assert_eq!(second.jobs[0].verdict, Equivalence::NotEquivalent);
    assert_eq!(cache.len(), 2);
}
