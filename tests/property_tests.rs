//! Property-based tests over the core data structures and invariants.

use llm_vectorizer_repro::cir::{parse_expr, parse_function, print_expr, print_function};
use llm_vectorizer_repro::interp::{run_function, ArgBindings, ExecConfig};
use llm_vectorizer_repro::simd::{eval_intrinsic, I32x8};
use llm_vectorizer_repro::smt::{Solver, SolverBudget, Validity};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing then re-parsing an expression built from random operands is
    /// the identity on the AST.
    #[test]
    fn expr_print_parse_roundtrip(a in -1000i64..1000, b in -1000i64..1000, op in 0usize..5) {
        let ops = ["+", "-", "*", "&", "|"];
        let src = format!("x * {} {} (y + {})", a, ops[op], b);
        let parsed = parse_expr(&src).unwrap();
        let reparsed = parse_expr(&print_expr(&parsed)).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// The scalar interpreter and the AVX2 lane model agree on element-wise
    /// addition and multiplication.
    #[test]
    fn simd_matches_scalar_semantics(values in proptest::collection::vec(-10_000i32..10_000, 8)) {
        let v = I32x8::load(&values);
        let doubled = eval_intrinsic("_mm256_add_epi32", &[v.into(), v.into()]).unwrap().unwrap_vector();
        let squared = eval_intrinsic("_mm256_mullo_epi32", &[v.into(), v.into()]).unwrap().unwrap_vector();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(doubled.lanes()[i], v.wrapping_add(v));
            prop_assert_eq!(squared.lanes()[i], v.wrapping_mul(v));
        }
    }

    /// Running a simple kernel through the interpreter matches a Rust oracle.
    #[test]
    fn interpreter_matches_oracle(b_values in proptest::collection::vec(-1000i32..1000, 16)) {
        let func = parse_function(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * 3 + 1; } }",
        ).unwrap();
        let args = ArgBindings::new()
            .scalar("n", b_values.len() as i32)
            .array("a", vec![0; b_values.len()])
            .array("b", b_values.clone());
        let result = run_function(&func, &args, &ExecConfig::default()).unwrap();
        let expected: Vec<i32> = b_values.iter().map(|&x| x.wrapping_mul(3).wrapping_add(1)).collect();
        prop_assert_eq!(&result.arrays["a"], &expected);
    }

    /// The bitvector solver agrees with wrapping i32 arithmetic on ground terms.
    #[test]
    fn smt_constant_arithmetic_is_sound(a in any::<i32>(), b in any::<i32>()) {
        let mut solver = Solver::new();
        let ta = solver.ctx.bv32(a);
        let tb = solver.ctx.bv32(b);
        let sum = solver.ctx.bv_add(ta, tb);
        let expected = solver.ctx.bv32(a.wrapping_add(b));
        let eq = solver.ctx.eq(sum, expected);
        prop_assert_eq!(solver.check_validity(eq, &SolverBudget::default()), Validity::Valid);
    }

    /// Round-tripping whole kernels through the printer preserves structure.
    #[test]
    fn function_print_parse_roundtrip(shift in 1i64..7, k in -50i64..50) {
        let src = format!(
            "void f(int n, int *a, int *b) {{ for (int i = 0; i < n - {}; i++) {{ if (b[i] > {}) {{ a[i] = b[i + {}] * {}; }} }} }}",
            shift, k, shift, k
        );
        let parsed = parse_function(&src).unwrap();
        let reparsed = parse_function(&print_function(&parsed)).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}
