//! Property-based tests over the core data structures and invariants.

use llm_vectorizer_repro::cir::{parse_expr, parse_function, print_expr, print_function};
use llm_vectorizer_repro::core::cache::{
    CacheFormat, CacheKey, CacheSnapshot, CachedVerdict, VerdictCache,
};
use llm_vectorizer_repro::core::pipeline::{Equivalence, Stage};
use llm_vectorizer_repro::interp::{run_function, ArgBindings, ChecksumClass, ExecConfig};
use llm_vectorizer_repro::simd::{eval_intrinsic, I32x8};
use llm_vectorizer_repro::smt::{Solver, SolverBudget, Validity};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh scratch directory per property case (the shim runs cases
/// sequentially, but every case gets its own files regardless).
fn scratch_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "lv-prop-cache-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Expands one random seed into a cache entry covering every verdict
/// class, stage, and checksum tag, with details that exercise the string
/// escaping edge cases (empty, quotes, newlines, non-ASCII).
fn cache_entry(seed: u64) -> (CacheKey, CachedVerdict) {
    let verdict = match seed % 3 {
        0 => Equivalence::Equivalent,
        1 => Equivalence::NotEquivalent,
        _ => Equivalence::Inconclusive,
    };
    let stage = match (seed >> 2) % 4 {
        0 => Stage::Checksum,
        1 => Stage::Alive2,
        2 => Stage::CUnroll,
        _ => Stage::Splitting,
    };
    let checksum = match (seed >> 4) % 5 {
        0 => None,
        1 => Some(ChecksumClass::Plausible),
        2 => Some(ChecksumClass::NotEquivalent),
        3 => Some(ChecksumClass::CannotCompile),
        _ => Some(ChecksumClass::ScalarFailed),
    };
    let detail = match (seed >> 7) % 4 {
        0 => String::new(),
        1 => format!("a[{}]: expected 1 but the code produced 2", seed % 100),
        2 => format!("says \"{}\"\nacross two lines", seed % 100),
        _ => format!("counterexample №{} → λ", seed % 100),
    };
    (
        CacheKey {
            scalar: seed,
            candidate: seed.rotate_left(17) ^ 0xabcd,
            config: seed.rotate_left(41),
        },
        CachedVerdict {
            verdict,
            stage,
            detail,
            checksum,
        },
    )
}

fn cache_entries(seeds: &[u64]) -> HashMap<CacheKey, CachedVerdict> {
    seeds.iter().map(|&seed| cache_entry(seed)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Printing then re-parsing an expression built from random operands is
    /// the identity on the AST.
    #[test]
    fn expr_print_parse_roundtrip(a in -1000i64..1000, b in -1000i64..1000, op in 0usize..5) {
        let ops = ["+", "-", "*", "&", "|"];
        let src = format!("x * {} {} (y + {})", a, ops[op], b);
        let parsed = parse_expr(&src).unwrap();
        let reparsed = parse_expr(&print_expr(&parsed)).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// The scalar interpreter and the AVX2 lane model agree on element-wise
    /// addition and multiplication.
    #[test]
    fn simd_matches_scalar_semantics(values in proptest::collection::vec(-10_000i32..10_000, 8)) {
        let v = I32x8::load(&values);
        let doubled = eval_intrinsic("_mm256_add_epi32", &[v.into(), v.into()]).unwrap().unwrap_vector();
        let squared = eval_intrinsic("_mm256_mullo_epi32", &[v.into(), v.into()]).unwrap().unwrap_vector();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(doubled.lanes()[i], v.wrapping_add(v));
            prop_assert_eq!(squared.lanes()[i], v.wrapping_mul(v));
        }
    }

    /// Running a simple kernel through the interpreter matches a Rust oracle.
    #[test]
    fn interpreter_matches_oracle(b_values in proptest::collection::vec(-1000i32..1000, 16)) {
        let func = parse_function(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * 3 + 1; } }",
        ).unwrap();
        let args = ArgBindings::new()
            .scalar("n", b_values.len() as i32)
            .array("a", vec![0; b_values.len()])
            .array("b", b_values.clone());
        let result = run_function(&func, &args, &ExecConfig::default()).unwrap();
        let expected: Vec<i32> = b_values.iter().map(|&x| x.wrapping_mul(3).wrapping_add(1)).collect();
        prop_assert_eq!(&result.arrays["a"], &expected);
    }

    /// The bitvector solver agrees with wrapping i32 arithmetic on ground terms.
    #[test]
    fn smt_constant_arithmetic_is_sound(a in any::<i32>(), b in any::<i32>()) {
        let mut solver = Solver::new();
        let ta = solver.ctx.bv32(a);
        let tb = solver.ctx.bv32(b);
        let sum = solver.ctx.bv_add(ta, tb);
        let expected = solver.ctx.bv32(a.wrapping_add(b));
        let eq = solver.ctx.eq(sum, expected);
        prop_assert_eq!(solver.check_validity(eq, &SolverBudget::default()), Validity::Valid);
    }

    /// Round-tripping whole kernels through the printer preserves structure.
    #[test]
    fn function_print_parse_roundtrip(shift in 1i64..7, k in -50i64..50) {
        let src = format!(
            "void f(int n, int *a, int *b) {{ for (int i = 0; i < n - {}; i++) {{ if (b[i] > {}) {{ a[i] = b[i + {}] * {}; }} }} }}",
            shift, k, shift, k
        );
        let parsed = parse_function(&src).unwrap();
        let reparsed = parse_function(&print_function(&parsed)).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Converting a verdict cache JSON → binary → JSON is the identity on
    /// both the entries (every verdict class, stage, checksum tag, and
    /// detail edge case) and the JSON snapshot bytes themselves.
    #[test]
    fn cache_json_binary_conversion_roundtrip(seeds in proptest::collection::vec(any::<u64>(), 16)) {
        let dir = scratch_dir();
        let path = dir.join("cache.json");
        let entries = cache_entries(&seeds);

        let cache = VerdictCache::open(&path).unwrap();
        for (key, verdict) in &entries {
            cache.insert(*key, verdict.clone());
        }
        cache.persist().unwrap();
        drop(cache);
        let json_before = std::fs::read(&path).unwrap();

        // JSON → binary: same entries through the warm tier.
        let cache = VerdictCache::open(&path).unwrap();
        cache.compact_to(CacheFormat::Binary).unwrap();
        drop(cache);
        let binary = VerdictCache::open(&path).unwrap();
        prop_assert_eq!(binary.len(), entries.len());
        for (key, verdict) in &entries {
            prop_assert_eq!(binary.get(key).as_ref(), Some(verdict));
        }

        // Binary → JSON: byte-identical to the original snapshot.
        binary.compact_to(CacheFormat::Json).unwrap();
        drop(binary);
        let json_after = std::fs::read(&path).unwrap();
        prop_assert_eq!(json_before, json_after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The bloom block never reports a stored key as absent, and every
    /// stored key decodes back to exactly the verdict that went in.
    #[test]
    fn bloom_filter_has_zero_false_negatives(seeds in proptest::collection::vec(any::<u64>(), 32)) {
        let dir = scratch_dir();
        let path = dir.join("snap.lvcs");
        let entries = cache_entries(&seeds);
        let mut sorted: Vec<(CacheKey, CachedVerdict)> =
            entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        sorted.sort_by_key(|(key, _)| *key);
        CacheSnapshot::write_file(&path, &sorted, true, false).unwrap();

        let snapshot = CacheSnapshot::open(&path).unwrap();
        prop_assert!(snapshot.bloom_stats().is_some());
        for (key, verdict) in &entries {
            prop_assert!(snapshot.maybe_contains(key), "bloom false negative");
            prop_assert_eq!(snapshot.get(key).as_ref(), Some(verdict));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// On a random workload of present and absent probes the zero-copy
    /// binary snapshot answers exactly like the in-memory `HashMap` tier.
    #[test]
    fn snapshot_lookup_agrees_with_hashmap_tier(
        seeds in proptest::collection::vec(any::<u64>(), 24),
        probes in proptest::collection::vec(any::<u64>(), 48),
    ) {
        let dir = scratch_dir();
        let path = dir.join("snap.lvcs");
        let entries = cache_entries(&seeds);
        let mut sorted: Vec<(CacheKey, CachedVerdict)> =
            entries.iter().map(|(k, v)| (*k, v.clone())).collect();
        sorted.sort_by_key(|(key, _)| *key);
        CacheSnapshot::write_file(&path, &sorted, true, false).unwrap();
        let snapshot = CacheSnapshot::open(&path).unwrap();

        // Half the probes reuse stored seeds (hits), half are fresh (mostly
        // misses — and when one accidentally collides, both sides must agree
        // on that too).
        for (i, &probe) in probes.iter().enumerate() {
            let key = if i % 2 == 0 {
                cache_entry(seeds[i % seeds.len()]).0
            } else {
                cache_entry(probe).0
            };
            prop_assert_eq!(snapshot.get(&key), entries.get(&key).cloned());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
