//! The parallel batch engine must be an observationally pure speed-up:
//! byte-identical verdicts, stages, and details for every thread count, and
//! equal to the sequential one-shot `check_equivalence` path — plus the
//! Algorithm 1 early-exit ordering pin.

use llm_vectorizer_repro::agents::{sample_completion_batch, LlmConfig};
use llm_vectorizer_repro::cir::parse_function;
use llm_vectorizer_repro::core::{
    check_equivalence, EngineConfig, Equivalence, Job, PipelineConfig, Stage, VerificationEngine,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use lv_bench::{sweep_tv_config, REPRESENTATIVE_KERNELS};

/// A pipeline configuration fast enough for a full-suite sweep in a test,
/// while still reaching every cascade stage. Starts from the bench sweep
/// configuration and cuts the budgets further (the equivalence claims hold
/// for any budget; debug-mode SAT is what makes tests slow).
fn sweep_pipeline() -> PipelineConfig {
    let mut tv = sweep_tv_config();
    tv.alive2_budget.max_conflicts = 1_000;
    tv.cunroll_budget.max_conflicts = 10_000;
    tv.spatial_budget.max_conflicts = 4_000;
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    }
}

/// One candidate per TSVC kernel from the synthetic LLM — a realistic mix of
/// correct, refutable, and non-compiling candidates across the whole suite.
fn suite_jobs() -> Vec<Job> {
    let scalars: Vec<_> = KERNELS.iter().map(|k| k.function()).collect();
    let batch = sample_completion_batch(&scalars, &LlmConfig::default(), 1);
    KERNELS
        .iter()
        .zip(&scalars)
        .zip(batch.completions.iter())
        .map(|((kernel, scalar), completions)| {
            Job::new(
                kernel.name,
                scalar.clone(),
                completions[0].candidate.clone(),
            )
        })
        .collect()
}

#[test]
fn parallel_engine_matches_sequential_check_equivalence_across_the_suite() {
    let pipeline = sweep_pipeline();
    let jobs = suite_jobs();
    assert!(jobs.len() >= 60, "expected the whole embedded TSVC suite");

    let engine = VerificationEngine::new(EngineConfig::full(pipeline.clone()).with_threads(0));
    let batch = engine.run_batch(&jobs);

    let mut verdict_kinds = std::collections::HashSet::new();
    for (job, report) in jobs.iter().zip(&batch.jobs) {
        let sequential = check_equivalence(&job.scalar, &job.candidate, &pipeline);
        assert_eq!(
            report.verdict, sequential.verdict,
            "verdict for {}",
            job.label
        );
        assert_eq!(report.stage, sequential.stage, "stage for {}", job.label);
        assert_eq!(report.detail, sequential.detail, "detail for {}", job.label);
        verdict_kinds.insert(report.verdict);
    }
    // The sweep is only meaningful if it exercises more than one outcome.
    assert!(
        verdict_kinds.len() >= 2,
        "degenerate sweep: {:?}",
        verdict_kinds
    );
}

#[test]
fn thread_count_does_not_change_batch_reports() {
    let jobs: Vec<Job> = suite_jobs()
        .into_iter()
        .filter(|job| REPRESENTATIVE_KERNELS.contains(&job.label.as_str()))
        .collect();
    assert!(jobs.len() >= 8);

    let one = VerificationEngine::new(EngineConfig::full(sweep_pipeline()).with_threads(1))
        .run_batch(&jobs);
    let many = VerificationEngine::new(EngineConfig::full(sweep_pipeline()).with_threads(8))
        .run_batch(&jobs);
    assert_eq!(one.threads, 1);
    assert!(many.threads > 1);
    for (s, p) in one.jobs.iter().zip(&many.jobs) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.verdict, p.verdict);
        assert_eq!(s.stage, p.stage);
        assert_eq!(s.detail, p.detail);
        assert_eq!(s.checksum, p.checksum);
    }
}

#[test]
fn checksum_refutation_short_circuits_before_any_symbolic_strategy() {
    // Algorithm 1 line 2: a candidate refuted by testing must never reach
    // the symbolic strategies. The trace pins both the ordering (checksum
    // first) and the early exit (nothing after it, zero SAT conflicts).
    let scalar = parse_function(
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
    )
    .unwrap();
    let wrong = parse_function(
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }",
    )
    .unwrap();
    let engine = VerificationEngine::new(EngineConfig::full(sweep_pipeline()));
    let report = engine.check_one(&scalar, &wrong);

    assert_eq!(report.verdict, Equivalence::NotEquivalent);
    assert_eq!(report.stage, Stage::Checksum);
    assert_eq!(
        report.traces.len(),
        1,
        "no stage may run after the refutation"
    );
    assert_eq!(report.traces[0].stage, Stage::Checksum);
    assert!(report.traces[0].conclusive);
    assert_eq!(
        report.traces[0].conflicts, 0,
        "no SAT work before/at checksum"
    );

    // And a plausible candidate's trace starts with the checksum stage
    // before any symbolic stage appears.
    let good = parse_function(
        "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }",
    )
    .unwrap();
    let report = engine.check_one(&scalar, &good);
    assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
    assert_eq!(report.traces[0].stage, Stage::Checksum);
    assert!(!report.traces[0].conclusive);
    assert!(report.traces.len() >= 2);
    assert_ne!(report.stage, Stage::Checksum);
}
