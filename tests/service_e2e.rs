//! End-to-end verification-service tests over real loopback TCP: verdicts
//! served over the wire are bit-identical to the in-process engine, a warm
//! resubmission is answered entirely from the dedupe cache with zero stages
//! run, and killed clients — garbage bytes, or a valid handshake followed
//! by a torn frame — never take the daemon down.

use llm_vectorizer_repro::core::service::VerdictFrame;
use llm_vectorizer_repro::core::{
    EngineConfig, Job, PipelineConfig, ServiceClient, VerdictCache, VerificationEngine,
    VerificationService,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn quick_config() -> EngineConfig {
    let mut tv = llm_vectorizer_repro::tv::TvConfig {
        alive2_chunks: 1,
        ..Default::default()
    };
    tv.alive2_budget.max_conflicts = 1_000;
    tv.cunroll_budget.max_conflicts = 10_000;
    tv.spatial_budget.max_conflicts = 4_000;
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    })
    .with_threads(1)
}

fn small_jobs() -> Vec<Job> {
    ["s000", "s112", "s212", "vsumr"]
        .iter()
        .map(|name| {
            let scalar = llm_vectorizer_repro::tsvc::kernel(name).unwrap().function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).unwrap();
            Job::new(*name, scalar, candidate)
        })
        .collect()
}

fn assert_frames_match_engine(frames: &[VerdictFrame], jobs: &[Job]) {
    let baseline = VerificationEngine::new(quick_config()).run_batch(jobs);
    assert_eq!(frames.len(), baseline.jobs.len());
    for (frame, report) in frames.iter().zip(&baseline.jobs) {
        assert_eq!(frame.label, report.label);
        assert_eq!(
            frame.verdict.verdict, report.verdict,
            "verdict drifted over the wire for {}",
            report.label
        );
        assert_eq!(
            frame.verdict.stage, report.stage,
            "stage drifted over the wire for {}",
            report.label
        );
        assert_eq!(
            frame.verdict.detail, report.detail,
            "detail drifted over the wire for {}",
            report.label
        );
    }
}

#[test]
fn loopback_service_matches_engine_dedupes_warm_and_survives_killed_clients() {
    let jobs = small_jobs();
    let cache = Arc::new(VerdictCache::in_memory());
    let service = VerificationService::bind("127.0.0.1:0", quick_config(), cache).expect("bind");
    let addr = service.local_addr();
    let daemon = std::thread::spawn(move || {
        service.serve_forever().expect("serve");
        service.status()
    });

    // Killer 1: pure garbage — not even the right magic — then hang up.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET / HTTP/1.0\r\n\r\n").expect("write");
    }

    // Killer 2: a *valid* handshake, then die inside a frame — a length
    // prefix promising 64 bytes with only 5 behind it.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"LVSV").expect("magic");
        // Hello is tag 0x01 + u32 version; frame it by hand.
        let version = llm_vectorizer_repro::core::service::WIRE_VERSION.to_le_bytes();
        let payload = [0x01u8, version[0], version[1], version[2], version[3]];
        let crc = llm_vectorizer_repro::core::journal::crc32(&payload);
        stream
            .write_all(&(payload.len() as u32).to_le_bytes())
            .expect("len");
        stream.write_all(&payload).expect("payload");
        stream.write_all(&crc.to_le_bytes()).expect("crc");
        // Consume the server's magic so the handshake really completed.
        let mut magic = [0u8; 4];
        stream.read_exact(&mut magic).expect("server magic");
        assert_eq!(&magic, b"LVSV");
        // Now the torn frame: claim 64 bytes, send 5, vanish.
        stream.write_all(&64u32.to_le_bytes()).expect("torn len");
        stream.write_all(&[1, 2, 3, 4, 5]).expect("torn bytes");
    }

    // The daemon must still be serving: a real client connects, submits
    // the batch cold, and gets verdicts bit-identical to the in-process
    // engine.
    let mut client = ServiceClient::connect(addr).expect("daemon must have survived the killers");
    let cold = client.submit(&jobs).expect("cold submit");
    assert_frames_match_engine(&cold, &jobs);
    assert!(
        cold.iter().all(|frame| !frame.cache_hit),
        "a cold batch has nothing to dedupe against"
    );
    let after_cold = client.status().expect("status");
    assert_eq!(after_cold.completed, jobs.len() as u64);
    assert_eq!(after_cold.dedupe_hits, 0);
    assert!(after_cold.stages > 0, "cold jobs must actually run stages");

    // Warm resubmission (a *new* connection): every verdict is answered
    // from the dedupe cache before any stage runs — the stage counter does
    // not move — and the verdict payloads are identical to the cold run.
    let mut warm_client = ServiceClient::connect(addr).expect("connect again");
    let warm = warm_client.submit(&jobs).expect("warm submit");
    assert_frames_match_engine(&warm, &jobs);
    assert!(
        warm.iter().all(|frame| frame.cache_hit),
        "a warm batch is answered entirely from dedupe"
    );
    for (cold_frame, warm_frame) in cold.iter().zip(&warm) {
        assert_eq!(cold_frame.verdict, warm_frame.verdict);
    }
    let after_warm = warm_client.status().expect("status");
    assert_eq!(
        after_warm.stages, after_cold.stages,
        "zero stages ran for the warm resubmission"
    );
    assert_eq!(after_warm.dedupe_hits, jobs.len() as u64);
    assert_eq!(after_warm.completed, 2 * jobs.len() as u64);

    // Clean shutdown stops serve_forever and the daemon thread.
    warm_client.shutdown().expect("shutdown");
    drop(client);
    let final_status = daemon.join().expect("daemon thread");
    assert_eq!(final_status.completed, 2 * jobs.len() as u64);
    assert!(final_status.connections >= 4);
}
