//! Live-shard work stealing and stall handling: an idle shard claims a
//! slow sibling's pending jobs through the claim journals and the combined
//! reports still cover every job with verdicts identical to a
//! single-process run; a worker with no liveness signal at all is killed
//! early as stalled and fully recovered.

use llm_vectorizer_repro::core::shard::{
    read_claims, read_progress, run_shard_with, ShardReportFile, ShardRunOptions, SweepManifest,
};
use llm_vectorizer_repro::core::{
    run_sharded_sweep, EngineConfig, Job, PipelineConfig, ShardPolicy, ShardStatus, SweepConfig,
    VerificationEngine, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::time::Duration;

fn quick_config() -> EngineConfig {
    let mut tv = llm_vectorizer_repro::tv::TvConfig {
        alive2_chunks: 1,
        ..Default::default()
    };
    tv.alive2_budget.max_conflicts = 1_000;
    tv.cunroll_budget.max_conflicts = 10_000;
    tv.spatial_budget.max_conflicts = 4_000;
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv,
    })
    .with_threads(1)
}

fn small_jobs() -> Vec<Job> {
    ["s000", "s112", "s212", "vsumr"]
        .iter()
        .map(|name| {
            let scalar = llm_vectorizer_repro::tsvc::kernel(name).unwrap().function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).unwrap();
            Job::new(*name, scalar, candidate)
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lv-steal-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn an_idle_shard_steals_a_delayed_siblings_share() {
    let jobs = small_jobs();
    let config = quick_config();
    let manifest = SweepManifest::new(&config, &jobs, 2, ShardPolicy::Contiguous);
    let fingerprint = manifest.fingerprint();
    let dir = temp_dir("steal");

    // Shard 0 is the victim: alive (heartbeating) but delayed long past the
    // time shard 1 needs to finish its own share and turn thief. Both run
    // with stealing on, exactly as a `--steal` coordinator would spawn
    // them.
    let victim_options = ShardRunOptions {
        steal: true,
        heartbeat: Some(Duration::from_millis(50)),
        delay: Some(Duration::from_secs(8)),
        ..ShardRunOptions::default()
    };
    let thief_options = ShardRunOptions {
        steal: true,
        heartbeat: Some(Duration::from_millis(50)),
        ..ShardRunOptions::default()
    };
    let (victim, thief) = std::thread::scope(|scope| {
        let victim = scope.spawn(|| run_shard_with(&manifest, 0, &dir, &victim_options));
        let thief = scope.spawn(|| run_shard_with(&manifest, 1, &dir, &thief_options));
        (
            victim.join().expect("victim thread").expect("victim run"),
            thief.join().expect("thief thread").expect("thief run"),
        )
    });

    // The thief must actually have stolen; its claims journal records the
    // stolen indices so the late-waking victim skipped them.
    assert!(
        thief.stolen >= 1,
        "the idle shard stole nothing from an 8s-delayed sibling"
    );
    assert_eq!(victim.stolen, 0, "the delayed shard had no one to rob");
    let thief_claims = read_claims(&dir.join("shard-1.claims.json"), fingerprint);
    let victim_share: BTreeSet<usize> = manifest.plan().indices_of(0).into_iter().collect();
    assert!(
        thief_claims.intersection(&victim_share).count() >= thief.stolen.min(1),
        "stolen jobs must be claimed in the thief's journal"
    );

    // The victim heartbeated through its delay — alive-but-slow, exactly
    // the signal stealing keys on — even if it reported few or no jobs.
    let progress = read_progress(&dir.join("shard-0.report.json"), fingerprint)
        .expect("victim report journal");
    assert!(
        progress.heartbeats >= 1,
        "the delayed shard must heartbeat while sleeping"
    );

    // Combined coverage: every job reported by someone, each report
    // bit-identical to the single-process engine.
    let baseline = VerificationEngine::new(quick_config()).run_batch(&jobs);
    let mut covered: BTreeSet<usize> = BTreeSet::new();
    for shard in 0..2 {
        let report = ShardReportFile::load(dir.join(format!("shard-{}.report.json", shard)))
            .expect("report loads");
        assert_eq!(report.fingerprint, fingerprint);
        for (index, entry) in report.entries {
            let expected = &baseline.jobs[index];
            assert_eq!(entry.label, expected.label);
            assert_eq!(
                entry.verdict, expected.verdict,
                "verdict drift at {}",
                index
            );
            assert_eq!(entry.stage, expected.stage, "stage drift at {}", index);
            assert_eq!(entry.detail, expected.detail, "detail drift at {}", index);
            covered.insert(index);
        }
    }
    assert_eq!(
        covered,
        (0..jobs.len()).collect::<BTreeSet<usize>>(),
        "stealing must not lose (or fail to cover) any job"
    );
    assert!(
        victim.finished + thief.finished >= covered.len(),
        "a benign claim race may duplicate work but never under-covers"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn workers_with_no_liveness_signal_are_stalled_out_and_recovered() {
    let jobs = small_jobs();
    let dir = temp_dir("stall");
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::Contiguous,
        workdir: dir.clone(),
        // The hard deadline is far away; only stall detection can end this
        // sweep quickly. The fake worker ignores its arguments, writes no
        // journal, and so never heartbeats: hung-and-silent, not
        // hung-but-alive.
        timeout: Duration::from_secs(600),
        stall_timeout: Some(Duration::from_millis(400)),
        worker: WorkerSpec {
            program: PathBuf::from("sh"),
            args: vec!["-c".to_string(), "sleep 60".to_string()],
        },
        ..SweepConfig::default()
    };
    let start = std::time::Instant::now();
    let swept = run_sharded_sweep(&jobs, &quick_config(), &sweep).expect("sweep must recover");
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "stall detection must beat the 600s deadline"
    );
    for outcome in &swept.shards {
        assert_eq!(outcome.status, ShardStatus::Stalled);
        assert_eq!(outcome.reported, 0);
        assert_eq!(outcome.heartbeats, 0);
    }
    assert_eq!(swept.recovered, vec![0, 1, 2, 3], "every job recovered");
    let baseline = VerificationEngine::new(quick_config()).run_batch(&jobs);
    for (expected, merged) in baseline.jobs.iter().zip(&swept.report.jobs) {
        assert_eq!(expected.label, merged.label);
        assert_eq!(expected.verdict, merged.verdict);
        assert_eq!(expected.stage, merged.stage);
        assert_eq!(expected.detail, merged.detail);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
