//! Reproduces the motivating example of Figure 1: the s212 kernel, its
//! AVX2 vectorization, and the simulated speedups over GCC / Clang / ICC.

use llm_vectorizer_repro::core::{figure1, ExperimentConfig};

fn main() {
    let fig = figure1(&ExperimentConfig::default());
    println!("=== Figure 1(c): s212 runtime speedup ===");
    println!("{}", fig.render());
}
