//! The verification-service acceptance check, run by CI.
//!
//! Builds the full TSVC Table 3 workload (one FSM-produced candidate per
//! kernel, exactly like `shard_sweep.rs`), then checks the `lv-sweep
//! serve` subsystem's contract end to end over real loopback TCP:
//!
//! * a daemon ([`VerificationService`]) serves the whole workload to a
//!   [`ServiceClient`] **cold** — every streamed verdict bit-identical
//!   (verdict, stage, detail, checksum class) to an offline
//!   single-process `run_batch` under the same configuration;
//! * a **warm** resubmission over a fresh connection is answered entirely
//!   from the dedupe/admission cache: every frame is flagged as a dedupe
//!   hit, the payloads equal the cold run's, and the daemon's stage
//!   counter does not move — zero stages ran;
//! * a 2-shard self-exec sweep with one **deliberately slowed shard**
//!   completes via live-shard work stealing — the idle shard claims the
//!   sleeper's pending jobs through the claim journals — with verdicts
//!   and a merged cache file **byte**-identical to the same sweep with no
//!   slowdown and no stealing.
//!
//! Exits non-zero (panics) on any violation.

use llm_vectorizer_repro::agents::{fsm_candidate_batch, FsmConfig, LlmConfig, SyntheticLlm};
use llm_vectorizer_repro::core::service::VerdictFrame;
use llm_vectorizer_repro::core::shard::run_worker_from_args;
use llm_vectorizer_repro::core::{
    run_sharded_sweep, BatchReport, EngineConfig, Job, PipelineConfig, ServiceClient, ShardPolicy,
    ShardStatus, SweepConfig, VerdictCache, VerificationEngine, VerificationService, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use std::path::Path;
use std::sync::Arc;

/// Reduced solver budgets so the full-suite runs stay CI-friendly; the
/// bit-identity contracts hold for any budget.
fn service_config() -> EngineConfig {
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    })
}

/// The Table 3 workload: the FSM's best candidate per TSVC kernel.
fn table3_jobs(checksum: &ChecksumConfig) -> Vec<Job> {
    let scalars: Vec<_> = KERNELS.iter().map(|k| k.function()).collect();
    let llm_config = LlmConfig::default();
    let mut llm = SyntheticLlm::new(llm_config.clone());
    let fsm_config = FsmConfig {
        max_attempts: 10,
        checksum: checksum.clone(),
        llm: llm_config,
    };
    fsm_candidate_batch(&scalars, &fsm_config, &mut llm)
        .into_iter()
        .enumerate()
        .filter_map(|(i, fsm)| {
            fsm.candidate
                .map(|candidate| Job::new(KERNELS[i].name, scalars[i].clone(), candidate))
        })
        .collect()
}

fn assert_frames_match(frames: &[VerdictFrame], baseline: &BatchReport, what: &str) {
    assert_eq!(frames.len(), baseline.jobs.len(), "{}: job count", what);
    for (frame, report) in frames.iter().zip(&baseline.jobs) {
        assert_eq!(frame.label, report.label, "{}: job order", what);
        assert_eq!(
            frame.verdict.verdict, report.verdict,
            "{}: verdict for {}",
            what, report.label
        );
        assert_eq!(
            frame.verdict.stage, report.stage,
            "{}: stage for {}",
            what, report.label
        );
        assert_eq!(
            frame.verdict.detail, report.detail,
            "{}: detail for {}",
            what, report.label
        );
        assert_eq!(
            frame.verdict.checksum, report.checksum,
            "{}: checksum class for {}",
            what, report.label
        );
    }
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {}", path.display(), e))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(result) = run_worker_from_args(&args) {
        // This process is one of the stealing sweep's shard workers.
        result.expect("shard worker failed");
        return;
    }

    let dir = std::env::temp_dir().join(format!("lv-service-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = service_config();
    let jobs = table3_jobs(&config.pipeline.checksum);
    assert!(
        jobs.len() >= 30,
        "expected the full TSVC workload, got {} jobs",
        jobs.len()
    );

    println!(
        "== offline single-process baseline ({} jobs) ==",
        jobs.len()
    );
    let baseline = VerificationEngine::new(config.clone()).run_batch(&jobs);

    println!("== daemon + client, cold over loopback ==");
    let service = VerificationService::bind(
        "127.0.0.1:0",
        config.clone(),
        Arc::new(VerdictCache::in_memory()),
    )
    .expect("bind daemon");
    let addr = service.local_addr();
    println!(
        "daemon on {} (fingerprint {:016x})",
        addr,
        service.fingerprint()
    );
    let daemon = std::thread::spawn(move || {
        service.serve_forever().expect("serve");
        service.status()
    });
    let mut client = ServiceClient::connect(addr).expect("connect");
    let cold = client.submit(&jobs).expect("cold submit");
    assert_frames_match(&cold, &baseline, "cold service run");
    let after_cold = client.status().expect("status");
    assert_eq!(after_cold.completed, jobs.len() as u64);
    assert!(after_cold.stages > 0, "the cold run must run stages");
    println!(
        "cold: {} verdicts, {} dedupe hit(s), {} stage run(s)",
        cold.len(),
        after_cold.dedupe_hits,
        after_cold.stages
    );

    println!("== warm resubmission: all dedupe, zero stages ==");
    let mut warm_client = ServiceClient::connect(addr).expect("reconnect");
    let warm = warm_client.submit(&jobs).expect("warm submit");
    assert_frames_match(&warm, &baseline, "warm service run");
    assert!(
        warm.iter().all(|frame| frame.cache_hit),
        "a warm resubmission must be answered entirely from dedupe"
    );
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(
            c.verdict, w.verdict,
            "warm verdict payload drifted for {}",
            c.label
        );
    }
    let after_warm = warm_client.status().expect("status");
    assert_eq!(
        after_warm.stages, after_cold.stages,
        "zero stages may run for a fully deduped batch"
    );
    assert_eq!(after_warm.completed, 2 * jobs.len() as u64);
    println!(
        "warm: {} verdicts, all dedupe; stages still {}",
        warm.len(),
        after_warm.stages
    );
    warm_client.shutdown().expect("shutdown");
    drop(client);
    let final_status = daemon.join().expect("daemon thread");
    println!(
        "daemon served {} connection(s), {} job(s)",
        final_status.connections, final_status.received
    );

    println!("== 2-shard sweep, no slowdown (reference) ==");
    let reference = run_sharded_sweep(
        &jobs,
        &config,
        &SweepConfig {
            shards: 2,
            policy: ShardPolicy::HashMod,
            workdir: dir.join("reference"),
            worker: WorkerSpec::current_exe().expect("own executable"),
            ..SweepConfig::default()
        },
    )
    .expect("reference sweep");
    for outcome in &reference.shards {
        assert_eq!(outcome.status, ShardStatus::Completed);
    }
    let reference_bytes = read(&reference.cache_file);

    println!("== 2-shard sweep, shard 0 slowed 20s, work stealing on ==");
    let start = std::time::Instant::now();
    let stolen_sweep = run_sharded_sweep(
        &jobs,
        &config,
        &SweepConfig {
            shards: 2,
            policy: ShardPolicy::HashMod,
            workdir: dir.join("steal"),
            worker: WorkerSpec::current_exe().expect("own executable"),
            steal: true,
            delay_shard: Some((0, 20_000)),
            ..SweepConfig::default()
        },
    )
    .expect("stealing sweep");
    let mut stolen_total = 0;
    for outcome in &stolen_sweep.shards {
        println!(
            "shard {}: {:?}, {}/{} reported, {} stolen, {} heartbeat(s)",
            outcome.shard,
            outcome.status,
            outcome.reported,
            outcome.planned,
            outcome.stolen,
            outcome.heartbeats
        );
        assert_eq!(
            outcome.status,
            ShardStatus::Completed,
            "stealing sweep: worker {} must complete (see shard-{}.log)",
            outcome.shard,
            outcome.shard
        );
        assert!(
            outcome.heartbeats >= 1,
            "stealing implies heartbeats; shard {} wrote none",
            outcome.shard
        );
        stolen_total += outcome.stolen;
    }
    assert!(
        stolen_total >= 1,
        "the idle shard must steal from a 20s-delayed sibling"
    );
    assert!(
        stolen_sweep.recovered.is_empty(),
        "live stealing, not coordinator recovery, must cover the slow shard"
    );
    // The stolen sweep's merged outputs are byte-identical to the
    // unstalled reference sweep's.
    for (r, s) in reference.report.jobs.iter().zip(&stolen_sweep.report.jobs) {
        assert_eq!(r.label, s.label);
        assert_eq!(r.verdict, s.verdict, "verdict drift for {}", r.label);
        assert_eq!(r.stage, s.stage, "stage drift for {}", r.label);
        assert_eq!(r.detail, s.detail, "detail drift for {}", r.label);
    }
    let stolen_bytes = read(&stolen_sweep.cache_file);
    assert_eq!(
        reference_bytes, stolen_bytes,
        "stealing sweep: merged cache file must be byte-identical to the \
         unstalled run"
    );
    println!(
        "stealing sweep matched the reference bit for bit ({} jobs, {} stolen, wall {:?})",
        stolen_sweep.report.jobs.len(),
        stolen_total,
        start.elapsed()
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("service sweep acceptance: all checks passed");
}
