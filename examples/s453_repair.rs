//! Reproduces the Section 4.4 walk-through: the multi-agent FSM repairing a
//! wrong vectorization of s453 through checksum feedback.

use llm_vectorizer_repro::agents::{run_fsm, FsmConfig, LlmConfig};
use llm_vectorizer_repro::cir::print_function;

fn main() {
    let scalar = llm_vectorizer_repro::tsvc::kernel("s453")
        .unwrap()
        .function();
    // A higher temperature makes the first attempt more likely to contain the
    // wrong `_mm256_set1_epi32` seeding the paper shows.
    let result = run_fsm(
        &scalar,
        &FsmConfig {
            llm: LlmConfig {
                temperature: 1.4,
                seed: 3,
                ..LlmConfig::default()
            },
            ..FsmConfig::default()
        },
    );
    println!("=== transcript ===");
    for message in &result.transcript {
        println!(
            "[{:?} -> {:?}]\n{}\n",
            message.from, message.to, message.content
        );
    }
    match result.candidate {
        Some(candidate) => println!(
            "plausible candidate after {} attempt(s):\n{}",
            result.attempts,
            print_function(&candidate)
        ),
        None => println!("no plausible candidate within {} attempts", result.attempts),
    }
}
