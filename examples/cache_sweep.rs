//! The persistent-cache acceptance check, run by CI.
//!
//! Runs the Table 3 funnel twice over a kernel subset with a file-backed
//! verdict cache and asserts the cache contract:
//!
//! * the first run misses on every engine job and persists its verdicts;
//! * the second run — through a *fresh* cache loaded from the file —
//!   reports 100% cache hits, executes **zero** checksum/SMT stages, and
//!   produces bit-identical verdicts;
//! * the cache compacted to the **binary `LVCS` tier** replays the same
//!   sweep bit-identically — again 100% hits and zero stages, now answered
//!   from the zero-copy warm tier — and converting the binary file back to
//!   JSON reproduces the legacy snapshot byte-for-byte.
//!
//! Exits non-zero (panics) on any violation.

use llm_vectorizer_repro::core::{
    table3_with, CacheFormat, CountingObserver, ExperimentConfig, Table3, VerdictCache,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use std::path::Path;
use std::sync::Arc;

fn sweep(cache_path: &Path) -> (Table3, CountingObserver) {
    let cache = Arc::new(VerdictCache::open(cache_path).expect("cache file must load"));
    let config = ExperimentConfig {
        kernel_names: Some(
            ["s000", "s112", "s212", "s278", "s2711", "vsumr"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        ),
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        cache: Some(cache.clone()),
        ..ExperimentConfig::default()
    };
    let counter = CountingObserver::new();
    let table = table3_with(&config, &counter);
    cache.persist().expect("cache file must persist");
    (table, counter)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("lv-cache-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("verdicts.json");
    let _ = std::fs::remove_file(&path);

    println!("== cold run (empty cache at {}) ==", path.display());
    let (cold, cold_counter) = sweep(&path);
    println!("{}", cold.render());
    let jobs = cold.batch.jobs.len();
    assert!(jobs >= 4, "expected a non-trivial sweep, got {} jobs", jobs);
    assert_eq!(cold.batch.cache_hits, 0, "cold run must miss everywhere");
    assert_eq!(cold.batch.cache_misses, jobs);
    assert!(cold_counter.stage_count() > 0);

    println!("== warm run (cache reloaded from disk) ==");
    let (warm, warm_counter) = sweep(&path);
    assert_eq!(
        warm.batch.cache_hits, jobs,
        "warm run must be answered entirely from the cache"
    );
    assert_eq!(warm.batch.cache_misses, 0);
    assert_eq!(
        warm_counter.stage_count(),
        0,
        "a warm cache must execute zero checksum/SMT stages"
    );
    assert_eq!(
        warm.batch.stage_runs(),
        0,
        "no stage traces may exist on a fully cached run"
    );
    assert_eq!(warm.batch.total_conflicts(), 0);

    assert_eq!(cold.render(), warm.render(), "rendered tables must match");
    assert_eq!(cold.verdicts.len(), warm.verdicts.len());
    for (c, w) in cold.verdicts.iter().zip(&warm.verdicts) {
        assert_eq!(c.name, w.name);
        assert_eq!(c.verdict, w.verdict, "verdict drifted for {}", c.name);
        assert_eq!(c.stage, w.stage, "stage drifted for {}", c.name);
    }

    println!("== binary-tier run (cache compacted to the LVCS snapshot) ==");
    let json_snapshot = std::fs::read(&path).expect("JSON snapshot must be readable");
    let reopened = VerdictCache::open(&path).expect("cache file must load");
    reopened
        .compact_to(CacheFormat::Binary)
        .expect("binary compaction must succeed");
    drop(reopened);
    let on_disk = std::fs::read(&path).expect("binary snapshot must be readable");
    assert_eq!(
        &on_disk[..4],
        b"LVCS",
        "compacted file must be a binary snapshot"
    );
    let (binary, binary_counter) = sweep(&path);
    assert_eq!(
        binary.batch.cache_hits, jobs,
        "the binary tier must answer the whole sweep"
    );
    assert_eq!(binary.batch.cache_misses, 0);
    assert_eq!(
        binary_counter.stage_count(),
        0,
        "a warm binary tier must execute zero checksum/SMT stages"
    );
    assert_eq!(
        cold.render(),
        binary.render(),
        "binary-tier replay must render the identical table"
    );
    for (c, b) in cold.verdicts.iter().zip(&binary.verdicts) {
        assert_eq!(c.name, b.name);
        assert_eq!(
            c.verdict, b.verdict,
            "verdict drifted for {} (binary)",
            c.name
        );
        assert_eq!(c.stage, b.stage, "stage drifted for {} (binary)", c.name);
    }

    println!("== binary -> JSON conversion (byte-identity) ==");
    let back = VerdictCache::open(&path).expect("binary snapshot must load");
    back.compact_to(CacheFormat::Json)
        .expect("JSON compaction must succeed");
    drop(back);
    let converted = std::fs::read(&path).expect("converted snapshot must be readable");
    assert_eq!(
        converted, json_snapshot,
        "binary -> JSON conversion must reproduce the legacy snapshot byte-for-byte"
    );

    println!("== funnel (cold run) ==");
    println!("{}", cold.funnel.render());
    println!(
        "cache sweep OK: {} jobs, cold wall {:?}, warm wall {:?}, binary wall {:?} \
         ({} entries on disk)",
        jobs, cold.batch.wall, warm.batch.wall, binary.batch.wall, jobs
    );
    let _ = std::fs::remove_file(&path);
}
