//! Reproduces Table 3: the equivalence-checking funnel over the embedded
//! TSVC suite, followed by Figure 6's speedups for the verified kernels.

use llm_vectorizer_repro::core::{figure6, table3, ExperimentConfig};

fn main() {
    let config = ExperimentConfig::default();
    let table = table3(&config);
    println!("=== Table 3: verification funnel ===");
    println!("{}", table.render());
    let fig = figure6(&config, &table.verdicts);
    println!("=== Figure 6: speedups of verified kernels ===");
    println!("{}", fig.render());
}
