//! Reproduces Table 3: the equivalence-checking funnel over the embedded
//! TSVC suite, followed by Figure 6's speedups for the verified kernels.
//!
//! Results stream incrementally through `StreamObserver`s — one line per
//! kernel as its verdict lands — before the paper-shaped tables and the
//! telemetry funnel are printed.

use llm_vectorizer_repro::core::{figure6_with, table3_with, ExperimentConfig, StreamObserver};

fn main() {
    let config = ExperimentConfig::default();
    let observer = StreamObserver::new(std::io::stdout(), config.kernels().len());
    println!("=== streaming verdicts ===");
    let table = table3_with(&config, &observer);
    println!("=== Table 3: verification funnel ===");
    println!("{}", table.render());
    println!("=== telemetry funnel ===");
    println!("{}", table.funnel.render());
    // Figure 6 streams one row per *verified* kernel; it gets its own
    // observer sized to that count.
    let verified = table.rows.last().map_or(0, |all| all.equivalent);
    let fig_observer = StreamObserver::new(std::io::stdout(), verified);
    let fig = figure6_with(&config, &table.verdicts, &fig_observer);
    println!("=== Figure 6: speedups of verified kernels ===");
    println!("{}", fig.render());
}
