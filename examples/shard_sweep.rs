//! The sharded-sweep acceptance check, run by CI.
//!
//! Builds the full TSVC Table 3 workload (one FSM-produced candidate per
//! kernel, exactly like the `table3` driver), then checks the shard
//! subsystem's contract end to end, self-executing as its own worker
//! processes:
//!
//! * a 2-shard multi-process sweep on the **journal** flush path (the
//!   default: per-shard cache + report are append-only journals, O(record)
//!   flush I/O) produces per-job verdicts identical to a single-process
//!   run, and compacts — the coordinator's merge writes the canonical
//!   snapshot — to a merged verdict-cache file **byte** identical to the
//!   single-process cache file;
//! * the legacy **rewrite** flush path (whole-file rewrite per job) still
//!   merges byte-identically too, so both exchange formats stay honest;
//! * killing one shard worker mid-sweep on the journal path (fault
//!   injection: the worker exits after 2 jobs, records flushed) is
//!   recovered by the coordinator re-running the missing jobs in-process —
//!   and the merged outputs are *still* byte-identical to the
//!   single-process run.
//!
//! Exits non-zero (panics) on any violation.

use llm_vectorizer_repro::agents::{fsm_candidate_batch, FsmConfig, LlmConfig, SyntheticLlm};
use llm_vectorizer_repro::core::shard::run_worker_from_args;
use llm_vectorizer_repro::core::{
    run_sharded_sweep, BatchReport, EngineConfig, FlushMode, Job, PipelineConfig, ShardPolicy,
    ShardStatus, SweepConfig, VerdictCache, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Reduced solver budgets so the full-suite sweep stays CI-friendly; the
/// bit-identity contract holds for any budget. Worker engines are pinned to
/// one thread so the `--fail-after 2` fault injection dies after *exactly*
/// two flushed jobs on any host — with per-CPU threads, concurrent workers
/// could flush a third entry before the failing thread exits.
fn sweep_config() -> EngineConfig {
    let config = EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    });
    config.with_threads(1)
}

/// The Table 3 workload: the FSM's best candidate per TSVC kernel.
fn table3_jobs(checksum: &ChecksumConfig) -> Vec<Job> {
    let scalars: Vec<_> = KERNELS.iter().map(|k| k.function()).collect();
    let llm_config = LlmConfig::default();
    let mut llm = SyntheticLlm::new(llm_config.clone());
    let fsm_config = FsmConfig {
        max_attempts: 10,
        checksum: checksum.clone(),
        llm: llm_config,
    };
    fsm_candidate_batch(&scalars, &fsm_config, &mut llm)
        .into_iter()
        .enumerate()
        .filter_map(|(i, fsm)| {
            fsm.candidate
                .map(|candidate| Job::new(KERNELS[i].name, scalars[i].clone(), candidate))
        })
        .collect()
}

fn assert_reports_match(single: &BatchReport, merged: &BatchReport, what: &str) {
    assert_eq!(single.jobs.len(), merged.jobs.len(), "{}: job count", what);
    for (s, m) in single.jobs.iter().zip(&merged.jobs) {
        assert_eq!(s.label, m.label, "{}: job order", what);
        assert_eq!(s.verdict, m.verdict, "{}: verdict for {}", what, s.label);
        assert_eq!(s.stage, m.stage, "{}: stage for {}", what, s.label);
        assert_eq!(s.detail, m.detail, "{}: detail for {}", what, s.label);
        assert_eq!(s.checksum, m.checksum, "{}: checksum for {}", what, s.label);
        // Traces are execution artifacts, not part of the verdict contract:
        // structurally duplicate kernels (s311/s311r are alpha-equivalent,
        // and the content-addressed cache is rename-insensitive) are
        // answered from the warm intra-batch cache, and *which* duplicate
        // ran and which one hit depends on scheduling and shard layout.
        // When both runs executed the job's cascade, the telemetry must
        // agree exactly.
        if s.cache_hit == m.cache_hit {
            assert_eq!(
                s.traces.len(),
                m.traces.len(),
                "{}: trace count for {}",
                what,
                s.label
            );
            for (st, mt) in s.traces.iter().zip(&m.traces) {
                assert_eq!(st.stage, mt.stage, "{}: trace stage for {}", what, s.label);
                assert_eq!(
                    (st.conclusive, st.conflicts, st.clauses, st.name_mismatch),
                    (mt.conclusive, mt.conflicts, mt.clauses, mt.name_mismatch),
                    "{}: trace telemetry for {}",
                    what,
                    s.label
                );
            }
        }
    }
}

fn sharded(
    jobs: &[Job],
    config: &EngineConfig,
    workdir: PathBuf,
    fail: Option<(usize, usize)>,
    flush: FlushMode,
) -> llm_vectorizer_repro::core::ShardedSweep {
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir,
        worker: WorkerSpec::current_exe().expect("own executable"),
        fail_shard_after: fail,
        flush,
        ..SweepConfig::default()
    };
    run_sharded_sweep(jobs, config, &sweep).expect("sharded sweep must succeed")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {}", path.display(), e))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(result) = run_worker_from_args(&args) {
        // This process is one of the coordinator's shard workers.
        result.expect("shard worker failed");
        return;
    }

    let dir = std::env::temp_dir().join(format!("lv-shard-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = sweep_config();
    let jobs = table3_jobs(&config.pipeline.checksum);
    assert!(
        jobs.len() >= 30,
        "expected the full TSVC workload (the FSM finds ~36 plausible candidates \
         across the 62-kernel suite), got {} jobs",
        jobs.len()
    );

    println!("== single-process baseline ({} jobs) ==", jobs.len());
    let single_cache_path = dir.join("single.cache.json");
    let single_cache = Arc::new(VerdictCache::open(&single_cache_path).expect("cache"));
    let single_engine = llm_vectorizer_repro::core::VerificationEngine::new(
        config.clone().with_cache(single_cache.clone()),
    );
    let single = single_engine.run_batch(&jobs);
    single_cache.persist().expect("persist single cache");
    let single_bytes = read(&single_cache_path);

    println!("== 2-shard multi-process sweep, journal flush (self-exec workers) ==");
    let healthy = sharded(
        &jobs,
        &config,
        dir.join("healthy"),
        None,
        FlushMode::default(),
    );
    for outcome in &healthy.shards {
        println!(
            "shard {}: {:?}, {}/{} reported",
            outcome.shard, outcome.status, outcome.reported, outcome.planned
        );
        assert_eq!(
            outcome.status,
            ShardStatus::Completed,
            "healthy sweep: worker {} must complete (see shard-{}.log)",
            outcome.shard,
            outcome.shard
        );
        assert_eq!(outcome.reported, outcome.planned);
    }
    assert!(healthy.recovered.is_empty(), "nothing to recover");
    // The exchange files really took the journal path: both per-shard
    // outputs must carry the journal marker.
    for shard in 0..2 {
        for name in [
            format!("shard-{}.cache.json", shard),
            format!("shard-{}.report.json", shard),
        ] {
            let text = read(&dir.join("healthy").join(&name));
            assert!(
                text.starts_with("{\"journal\":"),
                "{} must be an append-only journal, got: {}…",
                name,
                &text[..text.len().min(30)]
            );
        }
    }
    assert_reports_match(&single, &healthy.report, "healthy 2-shard journal sweep");
    let merged_bytes = read(&healthy.cache_file);
    assert_eq!(
        single_bytes, merged_bytes,
        "journal sweep: merged cache file must compact byte-identical to the \
         single-process cache file"
    );

    println!("== 2-shard sweep, legacy rewrite flush ==");
    let legacy = sharded(&jobs, &config, dir.join("legacy"), None, FlushMode::Rewrite);
    for outcome in &legacy.shards {
        assert_eq!(outcome.status, ShardStatus::Completed);
        assert_eq!(outcome.reported, outcome.planned);
    }
    assert_reports_match(&single, &legacy.report, "healthy 2-shard rewrite sweep");
    assert_eq!(
        single_bytes,
        read(&legacy.cache_file),
        "rewrite sweep: merged cache file must stay byte-identical too"
    );

    println!("== kill-recovery on the journal path: shard 0 dies after 2 jobs ==");
    let wounded = sharded(
        &jobs,
        &config,
        dir.join("wounded"),
        Some((0, 2)),
        FlushMode::default(),
    );
    let shard0 = &wounded.shards[0];
    assert_eq!(
        shard0.status,
        ShardStatus::Failed(Some(3)),
        "shard 0 must have died mid-sweep"
    );
    assert_eq!(
        shard0.reported, 2,
        "partial output: exactly the flushed prefix"
    );
    assert!(
        !wounded.recovered.is_empty(),
        "the killed worker's remaining jobs must be recovered in-process"
    );
    println!(
        "shard 0 reported {}/{} before dying; coordinator recovered {} job(s)",
        shard0.reported,
        shard0.planned,
        wounded.recovered.len()
    );
    assert_reports_match(&single, &wounded.report, "recovered 2-shard sweep");
    let recovered_bytes = read(&wounded.cache_file);
    assert_eq!(
        single_bytes, recovered_bytes,
        "recovery must still yield a byte-identical merged cache file"
    );

    println!(
        "shard sweep OK: {} jobs, merged cache {} bytes, recovery re-ran {} job(s)",
        jobs.len(),
        merged_bytes.len(),
        wounded.recovered.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
