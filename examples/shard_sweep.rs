//! The sharded-sweep acceptance check, run by CI.
//!
//! Builds the full TSVC Table 3 workload (one FSM-produced candidate per
//! kernel, exactly like the `table3` driver), then checks the shard
//! subsystem's contract end to end, self-executing as its own worker
//! processes:
//!
//! * a 2-shard multi-process sweep on the **journal** flush path (the
//!   default: per-shard cache + report are append-only journals, O(record)
//!   flush I/O) produces per-job verdicts identical to a single-process
//!   run, and compacts — the coordinator's merge writes the canonical
//!   snapshot — to a merged verdict-cache file **byte** identical to the
//!   single-process cache file;
//! * the legacy **rewrite** flush path (whole-file rewrite per job) still
//!   merges byte-identically too, so both exchange formats stay honest;
//! * killing one shard worker mid-sweep on the journal path (fault
//!   injection: the worker exits after 2 jobs, records flushed) is
//!   recovered by the coordinator re-running the missing jobs in-process —
//!   and the merged outputs are *still* byte-identical to the
//!   single-process run;
//! * the single-process run's telemetry, persisted as a `CrossRunProfile`
//!   journal, derives a **non-default** per-category stage schedule with no
//!   pilot slice, and a profile-guided 2-shard sweep under that schedule
//!   produces verdicts identical to the default-schedule single-process run
//!   (the concluding *stages* legitimately differ — that is the point);
//! * a worker killed between batched flushes (`--flush-every 3`) loses at
//!   most 2 buffered tail records, and recovery still merges the cache file
//!   byte-identical to the single-process run;
//! * a **solver-reuse** 2-shard sweep (blast memo + incremental per-scalar
//!   sessions + portfolio racing, carried to the workers through the
//!   manifest) produces verdicts identical to the reuse-off single-process
//!   run, with the merged report's reuse counters proving the warm sessions
//!   actually ran.
//!
//! Exits non-zero (panics) on any violation.

use llm_vectorizer_repro::agents::{fsm_candidate_batch, FsmConfig, LlmConfig, SyntheticLlm};
use llm_vectorizer_repro::core::shard::run_worker_from_args;
use llm_vectorizer_repro::core::{
    run_sharded_sweep, BatchReport, CrossRunProfile, EngineConfig, EngineReuse, FlushMode,
    FsyncPolicy, Job, PipelineConfig, ShardPolicy, ShardStatus, StageSchedule, SweepConfig,
    VerdictCache, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tsvc::KERNELS;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Reduced solver budgets so the full-suite sweep stays CI-friendly; the
/// bit-identity contract holds for any budget. Worker engines are pinned to
/// one thread so the `--fail-after 2` fault injection dies after *exactly*
/// two flushed jobs on any host — with per-CPU threads, concurrent workers
/// could flush a third entry before the failing thread exits.
fn sweep_config() -> EngineConfig {
    let config = EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    });
    config.with_threads(1)
}

/// The Table 3 workload: the FSM's best candidate per TSVC kernel.
fn table3_jobs(checksum: &ChecksumConfig) -> Vec<Job> {
    let scalars: Vec<_> = KERNELS.iter().map(|k| k.function()).collect();
    let llm_config = LlmConfig::default();
    let mut llm = SyntheticLlm::new(llm_config.clone());
    let fsm_config = FsmConfig {
        max_attempts: 10,
        checksum: checksum.clone(),
        llm: llm_config,
    };
    fsm_candidate_batch(&scalars, &fsm_config, &mut llm)
        .into_iter()
        .enumerate()
        .filter_map(|(i, fsm)| {
            fsm.candidate
                .map(|candidate| Job::new(KERNELS[i].name, scalars[i].clone(), candidate))
        })
        .collect()
}

fn assert_reports_match(single: &BatchReport, merged: &BatchReport, what: &str) {
    assert_eq!(single.jobs.len(), merged.jobs.len(), "{}: job count", what);
    for (s, m) in single.jobs.iter().zip(&merged.jobs) {
        assert_eq!(s.label, m.label, "{}: job order", what);
        assert_eq!(s.verdict, m.verdict, "{}: verdict for {}", what, s.label);
        assert_eq!(s.stage, m.stage, "{}: stage for {}", what, s.label);
        assert_eq!(s.detail, m.detail, "{}: detail for {}", what, s.label);
        assert_eq!(s.checksum, m.checksum, "{}: checksum for {}", what, s.label);
        // Traces are execution artifacts, not part of the verdict contract:
        // structurally duplicate kernels (s311/s311r are alpha-equivalent,
        // and the content-addressed cache is rename-insensitive) are
        // answered from the warm intra-batch cache, and *which* duplicate
        // ran and which one hit depends on scheduling and shard layout.
        // When both runs executed the job's cascade, the telemetry must
        // agree exactly.
        if s.cache_hit == m.cache_hit {
            assert_eq!(
                s.traces.len(),
                m.traces.len(),
                "{}: trace count for {}",
                what,
                s.label
            );
            for (st, mt) in s.traces.iter().zip(&m.traces) {
                assert_eq!(st.stage, mt.stage, "{}: trace stage for {}", what, s.label);
                assert_eq!(
                    (st.conclusive, st.conflicts, st.clauses, st.name_mismatch),
                    (mt.conclusive, mt.conflicts, mt.clauses, mt.name_mismatch),
                    "{}: trace telemetry for {}",
                    what,
                    s.label
                );
            }
        }
    }
}

fn sharded(
    jobs: &[Job],
    config: &EngineConfig,
    workdir: PathBuf,
    fail: Option<(usize, usize)>,
    flush: FlushMode,
) -> llm_vectorizer_repro::core::ShardedSweep {
    sharded_with(jobs, config, workdir, fail, flush, 1, None)
}

#[allow(clippy::too_many_arguments)]
fn sharded_with(
    jobs: &[Job],
    config: &EngineConfig,
    workdir: PathBuf,
    fail: Option<(usize, usize)>,
    flush: FlushMode,
    flush_every: usize,
    profile: Option<PathBuf>,
) -> llm_vectorizer_repro::core::ShardedSweep {
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir,
        worker: WorkerSpec::current_exe().expect("own executable"),
        fail_shard_after: fail,
        flush,
        flush_every,
        profile,
        ..SweepConfig::default()
    };
    run_sharded_sweep(jobs, config, &sweep).expect("sharded sweep must succeed")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {}", path.display(), e))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(result) = run_worker_from_args(&args) {
        // This process is one of the coordinator's shard workers.
        result.expect("shard worker failed");
        return;
    }

    let dir = std::env::temp_dir().join(format!("lv-shard-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = sweep_config();
    let jobs = table3_jobs(&config.pipeline.checksum);
    assert!(
        jobs.len() >= 30,
        "expected the full TSVC workload (the FSM finds ~36 plausible candidates \
         across the 62-kernel suite), got {} jobs",
        jobs.len()
    );

    println!("== single-process baseline ({} jobs) ==", jobs.len());
    let single_cache_path = dir.join("single.cache.json");
    let single_cache = Arc::new(VerdictCache::open(&single_cache_path).expect("cache"));
    let single_engine = llm_vectorizer_repro::core::VerificationEngine::new(
        config.clone().with_cache(single_cache.clone()),
    );
    let single = single_engine.run_batch(&jobs);
    single_cache.persist().expect("persist single cache");
    let single_bytes = read(&single_cache_path);

    println!("== 2-shard multi-process sweep, journal flush (self-exec workers) ==");
    let healthy = sharded(
        &jobs,
        &config,
        dir.join("healthy"),
        None,
        FlushMode::default(),
    );
    for outcome in &healthy.shards {
        println!(
            "shard {}: {:?}, {}/{} reported",
            outcome.shard, outcome.status, outcome.reported, outcome.planned
        );
        assert_eq!(
            outcome.status,
            ShardStatus::Completed,
            "healthy sweep: worker {} must complete (see shard-{}.log)",
            outcome.shard,
            outcome.shard
        );
        assert_eq!(outcome.reported, outcome.planned);
    }
    assert!(healthy.recovered.is_empty(), "nothing to recover");
    // The exchange files really took the journal path: both per-shard
    // outputs must carry the journal marker.
    for shard in 0..2 {
        for name in [
            format!("shard-{}.cache.json", shard),
            format!("shard-{}.report.json", shard),
        ] {
            let text = read(&dir.join("healthy").join(&name));
            assert!(
                text.starts_with("{\"journal\":"),
                "{} must be an append-only journal, got: {}…",
                name,
                &text[..text.len().min(30)]
            );
        }
    }
    assert_reports_match(&single, &healthy.report, "healthy 2-shard journal sweep");
    let merged_bytes = read(&healthy.cache_file);
    assert_eq!(
        single_bytes, merged_bytes,
        "journal sweep: merged cache file must compact byte-identical to the \
         single-process cache file"
    );

    println!("== 2-shard sweep, legacy rewrite flush ==");
    let legacy = sharded(&jobs, &config, dir.join("legacy"), None, FlushMode::Rewrite);
    for outcome in &legacy.shards {
        assert_eq!(outcome.status, ShardStatus::Completed);
        assert_eq!(outcome.reported, outcome.planned);
    }
    assert_reports_match(&single, &legacy.report, "healthy 2-shard rewrite sweep");
    assert_eq!(
        single_bytes,
        read(&legacy.cache_file),
        "rewrite sweep: merged cache file must stay byte-identical too"
    );

    println!("== kill-recovery on the journal path: shard 0 dies after 2 jobs ==");
    let wounded = sharded(
        &jobs,
        &config,
        dir.join("wounded"),
        Some((0, 2)),
        FlushMode::default(),
    );
    let shard0 = &wounded.shards[0];
    assert_eq!(
        shard0.status,
        ShardStatus::Failed(Some(3)),
        "shard 0 must have died mid-sweep"
    );
    assert_eq!(
        shard0.reported, 2,
        "partial output: exactly the flushed prefix"
    );
    assert!(
        !wounded.recovered.is_empty(),
        "the killed worker's remaining jobs must be recovered in-process"
    );
    println!(
        "shard 0 reported {}/{} before dying; coordinator recovered {} job(s)",
        shard0.reported,
        shard0.planned,
        wounded.recovered.len()
    );
    assert_reports_match(&single, &wounded.report, "recovered 2-shard sweep");
    let recovered_bytes = read(&wounded.cache_file);
    assert_eq!(
        single_bytes, recovered_bytes,
        "recovery must still yield a byte-identical merged cache file"
    );

    println!("== cross-run profile: record -> derive -> profile-guided 2-shard sweep ==");
    // The single-process run's telemetry becomes the persisted profile; a
    // "second run" then derives its schedule from the journal alone — no
    // pilot slice, no fresh measurements.
    let profile_path = dir.join("profile.json");
    CrossRunProfile::from_batch(&jobs, &single.jobs)
        .append_to(&profile_path, FsyncPolicy::OnCompact)
        .expect("profile append");
    let loaded = CrossRunProfile::load(&profile_path).expect("profile reload");
    assert!(!loaded.is_empty(), "the recorded profile must have cells");
    let derived = StageSchedule::from_profile(&loaded);
    println!("derived schedule: {}", derived.spec());
    assert!(
        !derived.is_default(),
        "under these budgets the conditional kernels exhaust Alive2, so the \
         warm profile must reorder that category"
    );
    let scheduled_config = config.clone().with_schedule(derived);
    assert_ne!(
        scheduled_config.semantic_fingerprint(),
        config.semantic_fingerprint(),
        "the profile-guided schedule is a distinct cache configuration"
    );
    let guided = sharded_with(
        &jobs,
        &scheduled_config,
        dir.join("guided"),
        None,
        FlushMode::default(),
        1,
        Some(profile_path.clone()),
    );
    for outcome in &guided.shards {
        assert_eq!(outcome.status, ShardStatus::Completed);
        assert_eq!(outcome.reported, outcome.planned);
    }
    // Verdict byte-identity to the default-schedule single-process run: the
    // concluding stage (and therefore trace telemetry) may legitimately
    // differ — reordering decides *who* answers, never *what*.
    assert_eq!(single.jobs.len(), guided.report.jobs.len());
    for (s, g) in single.jobs.iter().zip(&guided.report.jobs) {
        assert_eq!(s.label, g.label, "profile-guided sweep: job order");
        assert_eq!(
            s.verdict, g.verdict,
            "profile-guided sweep: verdict drifted for {}",
            s.label
        );
        assert_eq!(
            s.checksum, g.checksum,
            "profile-guided sweep: checksum class drifted for {}",
            s.label
        );
    }
    // The workers really ran with --profile: each shard left its own
    // profile journal, and the coordinator appended the run's delta.
    for shard in 0..2 {
        let worker_profile = dir
            .join("guided")
            .join(format!("shard-{}.profile.json", shard));
        let text = read(&worker_profile);
        assert!(
            text.starts_with("{\"journal\":\"cross-run-profile\""),
            "shard {} must have written a profile journal",
            shard
        );
    }
    assert!(
        guided.profile_delta.is_some(),
        "the coordinator must commit the run's delta"
    );
    let accumulated = CrossRunProfile::load(&profile_path).expect("profile after sweep");
    assert!(
        accumulated.len() >= loaded.len(),
        "the profile accumulates across runs"
    );

    println!("== batched-flush kill-recovery: --flush-every 3, shard 0 dies after 2 jobs ==");
    let batched = sharded_with(
        &jobs,
        &config,
        dir.join("batched"),
        Some((0, 2)),
        FlushMode::default(),
        3,
        None,
    );
    let shard0 = &batched.shards[0];
    assert_eq!(
        shard0.status,
        ShardStatus::Failed(Some(3)),
        "shard 0 must have died mid-sweep"
    );
    assert!(
        shard0.reported <= 2,
        "a killed worker cannot report more than it finished"
    );
    // finished = 2, flush-every = 3: the buffered tail (up to 2 records)
    // dies with the process, so anywhere from 0 to 2 jobs survive on disk.
    println!(
        "shard 0 reported {}/2 finished jobs (<= {} buffered records lost); \
         coordinator recovered {} job(s)",
        shard0.reported,
        3 - 1,
        batched.recovered.len()
    );
    assert!(
        !batched.recovered.is_empty(),
        "the lost tail and unfinished jobs must be recovered in-process"
    );
    assert_reports_match(&single, &batched.report, "batched-flush recovered sweep");
    assert_eq!(
        single_bytes,
        read(&batched.cache_file),
        "batched-flush recovery must still yield a byte-identical merged cache file"
    );

    println!("== solver-reuse 2-shard sweep: verdicts pinned to the reuse-off run ==");
    // The reuse layers travel to the workers through the manifest; the
    // incremental layer is a distinct cache configuration (warm sessions can
    // conclude budget-capped queries a fresh solver cannot), so the merged
    // cache keys never mix with the reuse-off ones.
    let reuse_config = config.clone().with_reuse(EngineReuse::full());
    assert_ne!(
        reuse_config.semantic_fingerprint(),
        config.semantic_fingerprint(),
        "incremental reuse is a distinct cache configuration"
    );
    let reused = sharded(
        &jobs,
        &reuse_config,
        dir.join("reuse"),
        None,
        FlushMode::default(),
    );
    for outcome in &reused.shards {
        assert_eq!(outcome.status, ShardStatus::Completed);
        assert_eq!(outcome.reported, outcome.planned);
    }
    // Verdict identity to the reuse-off single-process run. The concluding
    // stage may only improve (learned clauses on a warm session can settle a
    // budget-capped query), so stages and traces are not compared.
    assert_eq!(single.jobs.len(), reused.report.jobs.len());
    for (s, r) in single.jobs.iter().zip(&reused.report.jobs) {
        assert_eq!(s.label, r.label, "reuse sweep: job order");
        assert_eq!(
            s.verdict, r.verdict,
            "reuse sweep: verdict drifted for {}",
            s.label
        );
        assert_eq!(
            s.checksum, r.checksum,
            "reuse sweep: checksum class drifted for {}",
            s.label
        );
    }
    // The counters round-tripped through the shard report exchange and show
    // the workers really ran warm: at least one incremental session was
    // revisited somewhere in the suite.
    let totals = reused.report.reuse_totals();
    println!(
        "reuse counters: {} blast hits / {} misses, {} assumption reuses, {} escalations",
        totals.blast_hits, totals.blast_misses, totals.assumption_reuses, totals.escalations
    );
    assert!(
        totals.assumption_reuses > 0,
        "the reuse-enabled workers must report warm-session activity"
    );

    println!(
        "shard sweep OK: {} jobs, merged cache {} bytes, recovery re-ran {} + {} job(s), \
         profile-guided schedule and solver-reuse sweep verified",
        jobs.len(),
        merged_bytes.len(),
        wounded.recovered.len(),
        batched.recovered.len()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
