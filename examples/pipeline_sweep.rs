//! The overlapped-pipeline acceptance check, run by CI.
//!
//! Builds a generation spec (representative TSVC kernels × k seeded
//! completions) and checks the generation→verification pipeline's contract
//! end to end, self-executing as its own shard worker processes:
//!
//! * a single-process **overlapped** run (`overlapped_pass_at_k`: generator
//!   threads streaming cells into the engine's bounded job channel) produces
//!   per-job verdicts identical to the unoverlapped
//!   `generate_then_verify_pass_at_k` reference with the same seed;
//! * a 2-shard multi-process sweep driven by a **generation manifest**
//!   (`run_generated_sweep`) — the manifest carries the spec, not candidates;
//!   each shard worker generates its own share and overlaps generation with
//!   verification — merges verdict-identically to the single-process
//!   overlapped run, and the manifest on disk is asserted to contain **no
//!   candidate functions**;
//! * killing one shard worker mid-sweep (fault injection: the worker exits
//!   after 2 jobs) is recovered by the coordinator re-generating and
//!   re-running the missing cells in-process — and the merged report is
//!   *still* verdict-identical.
//!
//! Exits non-zero (panics) on any violation.

use llm_vectorizer_repro::agents::LlmConfig;
use llm_vectorizer_repro::cir::ast::Function;
use llm_vectorizer_repro::core::shard::run_worker_from_args;
use llm_vectorizer_repro::core::{
    generate_then_verify_pass_at_k, overlapped_pass_at_k, run_generated_sweep, BatchReport,
    EngineConfig, GenerationSpec, PipelineConfig, ShardPolicy, ShardStatus, SweepConfig,
    VerificationEngine, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use lv_bench::REPRESENTATIVE_KERNELS;

const GEN_SEED: u64 = 0xC0FFEE;
const K: usize = 4;

/// Reduced solver budgets so the sweep stays CI-friendly; the identity
/// contract holds for any budget. Engines are pinned to one thread so the
/// `--fail-after 2` fault injection dies after *exactly* two jobs on any
/// host.
fn sweep_config() -> EngineConfig {
    let config = EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    });
    config.with_threads(1)
}

fn spec_kernels() -> Vec<(String, Function)> {
    REPRESENTATIVE_KERNELS
        .iter()
        .map(|name| {
            (
                name.to_string(),
                llm_vectorizer_repro::tsvc::kernel(name).unwrap().function(),
            )
        })
        .collect()
}

/// Verdict identity across pipeline arrangements: same labels in the same
/// job order, same verdict, stage, detail, and checksum class. Traces and
/// cache-hit flags are execution artifacts (per-shard caches dedupe
/// identical candidates differently than a cacheless single process) and
/// are deliberately not compared.
fn assert_verdicts_match(reference: &BatchReport, candidate: &BatchReport, what: &str) {
    assert_eq!(
        reference.jobs.len(),
        candidate.jobs.len(),
        "{}: job count",
        what
    );
    for (r, c) in reference.jobs.iter().zip(&candidate.jobs) {
        assert_eq!(r.label, c.label, "{}: job order", what);
        assert_eq!(r.verdict, c.verdict, "{}: verdict for {}", what, r.label);
        assert_eq!(r.stage, c.stage, "{}: stage for {}", what, r.label);
        assert_eq!(r.detail, c.detail, "{}: detail for {}", what, r.label);
        assert_eq!(r.checksum, c.checksum, "{}: checksum for {}", what, r.label);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(result) = run_worker_from_args(&args) {
        // This process is one of the coordinator's shard workers.
        result.expect("shard worker failed");
        return;
    }

    let dir = std::env::temp_dir().join(format!("lv-pipeline-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let config = sweep_config();
    let kernels = spec_kernels();
    let llm_config = LlmConfig {
        seed: GEN_SEED,
        ..LlmConfig::default()
    };
    let cells = kernels.len() * K;
    let points = [1, K];

    println!(
        "== single-process: overlapped vs generate-then-verify ({} cells) ==",
        cells
    );
    let engine = VerificationEngine::new(config.clone());
    let reference = generate_then_verify_pass_at_k(&engine, &kernels, &llm_config, K, &points, 1);
    let overlapped = overlapped_pass_at_k(&engine, &kernels, &llm_config, K, &points, 2, 8);
    assert_verdicts_match(
        &reference.report,
        &overlapped.report,
        "single-process overlapped run",
    );
    assert_eq!(
        reference.plausible_per_kernel, overlapped.plausible_per_kernel,
        "overlap must not change plausible counts"
    );
    let plausible: usize = reference.plausible_per_kernel.iter().sum();
    assert!(
        plausible > 0 && plausible < cells,
        "degenerate workload: {}/{} plausible",
        plausible,
        cells
    );

    println!("== 2-shard generated sweep (generation inside each shard) ==");
    let spec = GenerationSpec {
        kernels: kernels.clone(),
        k: K,
        seed: GEN_SEED,
    };
    let sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir: dir.join("healthy"),
        worker: WorkerSpec::current_exe().expect("own executable"),
        ..SweepConfig::default()
    };
    let healthy = run_generated_sweep(spec.clone(), &config, &sweep).expect("generated sweep");
    for outcome in &healthy.shards {
        println!(
            "shard {}: {:?}, {}/{} reported",
            outcome.shard, outcome.status, outcome.reported, outcome.planned
        );
        assert_eq!(outcome.status, ShardStatus::Completed);
        assert_eq!(outcome.reported, outcome.planned);
    }
    assert!(healthy.recovered.is_empty(), "nothing to recover");
    // The shards really generated their own share: the manifest must carry
    // the spec, not materialized candidates.
    let manifest_text =
        std::fs::read_to_string(dir.join("healthy").join("manifest.json")).expect("read manifest");
    assert!(
        manifest_text.contains("\"generation\""),
        "manifest must carry the generation spec"
    );
    assert!(
        !manifest_text.contains("\"candidate\""),
        "generation manifest must ship no candidate functions"
    );
    assert_verdicts_match(
        &overlapped.report,
        &healthy.report,
        "healthy 2-shard generated sweep",
    );

    println!("== 2-shard generated sweep, shard 0 killed after 2 jobs ==");
    let killed_sweep = SweepConfig {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir: dir.join("killed"),
        worker: WorkerSpec::current_exe().expect("own executable"),
        fail_shard_after: Some((0, 2)),
        ..SweepConfig::default()
    };
    let killed = run_generated_sweep(spec, &config, &killed_sweep).expect("killed sweep");
    assert!(
        killed
            .shards
            .iter()
            .any(|s| s.status != ShardStatus::Completed),
        "fault injection must actually kill a worker"
    );
    assert!(
        !killed.recovered.is_empty(),
        "the coordinator must re-run the killed shard's missing cells"
    );
    println!(
        "recovered {} of {} cells in-process",
        killed.recovered.len(),
        cells
    );
    assert_verdicts_match(
        &overlapped.report,
        &killed.report,
        "killed-worker generated sweep",
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "pipeline sweep: all identities hold ({} cells, k={})",
        cells, K
    );
}
