//! Reproduces Table 2: checksum-based testing outcomes at increasing numbers
//! of completions (counts scaled to the paper's 149-test population).

use llm_vectorizer_repro::core::{table2, ExperimentConfig};

fn main() {
    let table = table2(&ExperimentConfig::default(), &[1, 10, 25]);
    println!("=== Table 2 (scaled to 149 tests) ===");
    println!("{}", table.render());
}
