//! Quickstart: run the complete LLM-Vectorizer pipeline on one TSVC kernel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use llm_vectorizer_repro::agents::{run_fsm, FsmConfig};
use llm_vectorizer_repro::autovec::{speedup_over, Compiler, CompilerProfile, CostTable};
use llm_vectorizer_repro::cir::print_function;
use llm_vectorizer_repro::core::{check_equivalence, PipelineConfig};

fn main() {
    // 1. Pick a kernel the baseline compilers refuse to vectorize.
    let kernel = llm_vectorizer_repro::tsvc::kernel("s212").expect("s212 is in the suite");
    let scalar = kernel.function();
    println!("=== scalar kernel ===\n{}", print_function(&scalar));

    // 2. Drive the multi-agent FSM to obtain a plausible vectorization.
    let fsm = run_fsm(&scalar, &FsmConfig::default());
    let candidate = fsm.candidate.expect("the FSM finds a plausible candidate");
    println!(
        "=== candidate after {} attempt(s) ===\n{}",
        fsm.attempts,
        print_function(&candidate)
    );

    // 3. Formally verify it with the Alive2-style translation validator.
    let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
    println!(
        "verification: {:?} (stage {:?})",
        report.verdict, report.stage
    );

    // 4. Simulate the run-time speedup over the three baseline compilers.
    let costs = CostTable::default();
    for compiler in Compiler::all() {
        let s = speedup_over(
            &CompilerProfile::of(compiler),
            &scalar,
            &candidate,
            32_000,
            &costs,
        );
        println!("speedup vs {}: {:.2}x", compiler.name(), s);
    }
}
