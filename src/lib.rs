//! Workspace root crate for the LLM-Vectorizer reproduction.
//!
//! This crate only re-exports the member crates so that the top-level
//! `examples/` and `tests/` directories can exercise the full public API
//! from a single dependency. The actual implementation lives in the
//! `crates/` workspace members:
//!
//! * [`lv_cir`] — mini-C front end (lexer, parser, typed AST, printer)
//! * [`lv_simd`] — AVX2 value model and intrinsic semantics
//! * [`lv_interp`] — concrete interpreter and checksum testing
//! * [`lv_analysis`] — dependence analysis and compiler-style remarks
//! * [`lv_smt`] — bitvector SMT solver (bit-blasting + CDCL SAT)
//! * [`lv_tv`] — bounded translation validation (Alive2 substitute)
//! * [`lv_autovec`] — baseline compiler models and the CPU cost model
//! * [`lv_agents`] — synthetic LLM and the multi-agent FSM
//! * [`lv_tsvc`] — the TSVC benchmark suite
//! * [`lv_core`] — the end-to-end pipeline and experiment drivers

pub use lv_agents as agents;
pub use lv_analysis as analysis;
pub use lv_autovec as autovec;
pub use lv_cir as cir;
pub use lv_core as core;
pub use lv_interp as interp;
pub use lv_simd as simd;
pub use lv_smt as smt;
pub use lv_tsvc as tsvc;
pub use lv_tv as tv;
