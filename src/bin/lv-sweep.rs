//! `lv-sweep` — the sharded multi-process TSVC sweep CLI.
//!
//! Coordinator mode (the default) builds one verification job per TSVC
//! kernel the rule-based vectorizer supports, partitions them over `N`
//! worker *processes* (each re-invoking this very binary with `--shard
//! i/N`), and merges the per-shard verdict-cache files and reports into a
//! single table plus a merged cache file — bit-identical to what a
//! single-process run produces.
//!
//! ```text
//! lv-sweep [--shards N] [--policy hash|range] [--workdir DIR]
//!          [--kernels s000,s112,...] [--threads T] [--quick]
//!          [--max-cache-entries N] [--timeout-secs S]
//!          [--flush journal|rewrite] [--fsync compact|record]
//!          [--flush-every N] [--cache-format json|binary]
//!          [--profile PATH] [--schedule default|profile|SPEC]
//!          [--budget fixed|profile] [--reuse]
//! lv-sweep compact [--format json|binary] FILE...
//! lv-sweep cache stats FILE...
//! ```
//!
//! `--flush` selects how workers flush per-job output: `journal` (default)
//! appends one framed record per job to append-only cache/report journals —
//! O(record) flush I/O; `rewrite` is the legacy whole-file atomic rewrite.
//! `--fsync` applies to journal mode: `compact` (default) syncs only at
//! compaction, `record` syncs after every appended record. `--flush-every N`
//! buffers N record appends per syscall flush (default 1); a killed worker
//! then loses at most N−1 buffered tail records, all of which the
//! coordinator's recovery re-runs.
//!
//! `--profile` names a cross-run profile journal: the sweep's per-category
//! per-stage telemetry is appended to it after the merge, and
//! `--schedule profile` derives the per-category stage order (and, when the
//! profile has conclusive evidence, nothing else — budgets stay configured)
//! from what previous runs recorded there. `--schedule` also accepts an
//! explicit spec (`reduction=cunroll,alive2,splitting;...`) or `default`.
//! `--budget profile` additionally derives tightened per-stage solver
//! budgets from the same profile journal
//! (`AdaptiveBudgetPolicy::derive_from_profile`) — no pilot slice needed;
//! `fixed` (the default) keeps the configured budgets.
//!
//! `--reuse` turns on every solver-reuse layer (blasted-CNF memoization,
//! incremental per-scalar sessions with scalar-affinity scheduling, and
//! portfolio budget racing) in all shard workers. Verdicts are identical to
//! a reuse-off sweep; the incremental layer perturbs the configuration
//! fingerprint, so reuse-on and reuse-off sweeps keep separate cache
//! entries.
//!
//! `--cache-format binary` makes shard workers write their per-shard cache
//! journals as compact binary records (`LVBJ` framing) instead of JSON
//! lines. The merged cache the coordinator persists stays a JSON snapshot
//! either way, so sweep outputs are bit-identical across formats.
//!
//! `compact` rewrites journal files into their canonical compact form:
//! verdict-cache files (any of the four persisted forms, sniffed by
//! content) become the sorted snapshot of `--format` — `json` (default,
//! `VerdictCache::compact_journal`) or `binary` (the `LVCS` tier file with
//! its bloom block); shard-report journals become the snapshot report
//! document, and cross-run profile journals one summed record per cell
//! (both JSON-only — `--format` applies to verdict caches).
//!
//! `cache stats` prints, for each verdict-cache file: the sniffed form,
//! size, entry count, bytes per entry, the per-verdict-class histogram, and
//! the bloom block's shape and estimated false-positive rate when present.
//!
//! Worker mode is selected by the presence of `--shard i/N` (plus
//! `--manifest` and `--out`, which the coordinator passes automatically)
//! and is not meant to be invoked by hand.

use llm_vectorizer_repro::core::shard::{run_worker_from_args, ShardReportFile};
use llm_vectorizer_repro::core::{
    cache_file_stats, AdaptiveBudgetPolicy, CacheBounds, CacheFormat, CrossRunProfile,
    EngineConfig, EngineReuse, Equivalence, FlushMode, FsyncPolicy, Job, PipelineConfig,
    ShardPolicy, StageSchedule, SweepConfig, VerdictCache, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn fail(message: String) -> ExitCode {
    eprintln!("lv-sweep: {}", message);
    ExitCode::FAILURE
}

/// `lv-sweep compact [--format json|binary] FILE...`: rewrites each file
/// into its canonical compact form, dispatching on content (magic bytes for
/// the binary cache forms, the journal kind header for the text forms).
/// `--format` picks the target snapshot form for verdict-cache files; the
/// other journal kinds are JSON-only.
fn compact_files(args: &[String]) -> ExitCode {
    let mut format = CacheFormat::Json;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--format" {
            let Some(tag) = iter.next() else {
                return fail("--format needs a value".to_string());
            };
            format = match CacheFormat::from_tag(tag) {
                Ok(format) => format,
                Err(e) => return fail(e),
            };
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        return fail("compact needs at least one journal file".to_string());
    }
    for path in paths {
        let path = Path::new(path);
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => return fail(format!("cannot read {}: {}", path.display(), e)),
        };
        let before = bytes.len();
        let is_cache = bytes.starts_with(b"LVCS")
            || bytes.starts_with(b"LVBJ")
            || bytes.starts_with(b"{\"journal\":\"verdict-cache\"")
            || (format == CacheFormat::Binary && bytes.starts_with(b"{\"version\":"));
        let result: Result<&str, String> = if is_cache {
            VerdictCache::open(path)
                .and_then(|cache| cache.compact_to(format))
                .map(|()| match format {
                    CacheFormat::Json => "verdict cache -> JSON snapshot",
                    CacheFormat::Binary => "verdict cache -> binary snapshot",
                })
                .map_err(|e| e.to_string())
        } else if bytes.starts_with(b"{\"journal\":\"shard-report\"") {
            ShardReportFile::load(path)
                .map_err(|e| e.to_string())
                .and_then(|report| {
                    report
                        .write(path)
                        .map(|_| "shard report -> snapshot")
                        .map_err(|e| e.to_string())
                })
        } else if bytes.starts_with(b"{\"journal\":\"cross-run-profile\"") {
            CrossRunProfile::load(path)
                .and_then(|profile| profile.rewrite(path, FsyncPolicy::OnCompact))
                .map(|()| "profile -> one record per cell")
                .map_err(|e| e.to_string())
        } else if bytes.starts_with(b"{\"version\":") {
            // Already the target JSON snapshot: compaction is a no-op, not
            // an error, so `compact` is idempotent over a workdir.
            Ok("already a snapshot (unchanged)")
        } else {
            Err("not a recognized journal or snapshot file".to_string())
        };
        match result {
            Ok(what) => {
                let after = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!(
                    "compacted {}: {} ({} -> {} bytes)",
                    path.display(),
                    what,
                    before,
                    after
                );
            }
            Err(e) => return fail(format!("cannot compact {}: {}", path.display(), e)),
        }
    }
    ExitCode::SUCCESS
}

/// `lv-sweep cache stats FILE...`: per-file cache statistics.
fn cache_stats(paths: &[String]) -> ExitCode {
    if paths.is_empty() {
        return fail("cache stats needs at least one cache file".to_string());
    }
    for path in paths {
        let path = Path::new(path);
        let stats = match cache_file_stats(path) {
            Ok(stats) => stats,
            Err(e) => return fail(format!("cannot read {}: {}", path.display(), e)),
        };
        println!("{}:", path.display());
        println!("  format:          {}", stats.format);
        println!("  file bytes:      {}", stats.file_bytes);
        println!("  entries:         {}", stats.entries);
        println!("  bytes/entry:     {:.1}", stats.bytes_per_entry());
        println!(
            "  verdicts:        {} equivalent, {} not-equivalent, {} inconclusive",
            stats.equivalent, stats.not_equivalent, stats.inconclusive
        );
        match stats.bloom {
            Some(bloom) => println!(
                "  bloom:           {} bits, {} hashes, ~{:.3}% false positives",
                bloom.bits,
                bloom.hashes,
                bloom.fp_estimate * 100.0
            ),
            None => println!("  bloom:           none"),
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Compact mode: rewrite journals into their canonical snapshots.
    if args.first().map(String::as_str) == Some("compact") {
        return compact_files(&args[1..]);
    }

    // Cache statistics mode.
    if args.first().map(String::as_str) == Some("cache") {
        return match args.get(1).map(String::as_str) {
            Some("stats") => cache_stats(&args[2..]),
            _ => fail("usage: lv-sweep cache stats FILE...".to_string()),
        };
    }

    // Worker mode: the coordinator spawned us with `--shard i/N`.
    if let Some(result) = run_worker_from_args(&args) {
        return match result {
            Ok(output) => {
                println!(
                    "shard {} finished {} job(s); cache {}, report {}",
                    output.shard,
                    output.finished,
                    output.cache_file.display(),
                    output.report_file.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e.to_string()),
        };
    }

    // Coordinator mode.
    let mut shards = 2usize;
    let mut policy = ShardPolicy::HashMod;
    let mut workdir = std::env::temp_dir().join(format!("lv-sweep-{}", std::process::id()));
    let mut kernels: Option<Vec<String>> = None;
    let mut threads = 0usize;
    let mut quick = false;
    let mut max_entries: Option<usize> = None;
    let mut timeout = Duration::from_secs(600);
    let mut flush_tag = "journal".to_string();
    let mut fsync = FsyncPolicy::default();
    let mut flush_every = 1usize;
    let mut cache_format = CacheFormat::default();
    let mut profile: Option<PathBuf> = None;
    let mut schedule_arg = "default".to_string();
    let mut budget_arg = "fixed".to_string();
    let mut reuse = false;

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{} needs a value", what))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--shards" => {
                    shards = value("--shards")?
                        .parse()
                        .map_err(|_| "--shards expects an integer".to_string())?
                }
                "--policy" => {
                    policy = match value("--policy")?.as_str() {
                        "hash" | "hash-mod" => ShardPolicy::HashMod,
                        "range" | "contiguous" => ShardPolicy::Contiguous,
                        other => return Err(format!("unknown policy `{}`", other)),
                    }
                }
                "--workdir" => workdir = value("--workdir")?.into(),
                "--kernels" => {
                    kernels = Some(
                        value("--kernels")?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects an integer".to_string())?
                }
                "--quick" => quick = true,
                "--max-cache-entries" => {
                    max_entries = Some(
                        value("--max-cache-entries")?
                            .parse()
                            .map_err(|_| "--max-cache-entries expects an integer".to_string())?,
                    )
                }
                "--timeout-secs" => {
                    timeout = Duration::from_secs(
                        value("--timeout-secs")?
                            .parse()
                            .map_err(|_| "--timeout-secs expects an integer".to_string())?,
                    )
                }
                "--flush" => flush_tag = value("--flush")?,
                "--fsync" => fsync = FsyncPolicy::from_tag(&value("--fsync")?)?,
                "--flush-every" => {
                    flush_every = value("--flush-every")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| "--flush-every expects a positive integer".to_string())?
                }
                "--cache-format" => {
                    cache_format = CacheFormat::from_tag(&value("--cache-format")?)?
                }
                "--profile" => profile = Some(value("--profile")?.into()),
                "--schedule" => schedule_arg = value("--schedule")?,
                "--budget" => budget_arg = value("--budget")?,
                "--reuse" => reuse = true,
                other => {
                    return Err(format!(
                        "unknown argument `{}` (see the module docs)",
                        other
                    ))
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            return fail(e);
        }
    }

    let jobs: Vec<Job> = llm_vectorizer_repro::tsvc::KERNELS
        .iter()
        .filter(|kernel| {
            kernels
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == kernel.name))
        })
        .filter_map(|kernel| {
            let scalar = kernel.function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).ok()?;
            Some(Job::new(kernel.name, scalar, candidate))
        })
        .collect();
    if jobs.is_empty() {
        return fail("no verification jobs (unknown --kernels selection?)".to_string());
    }

    let pipeline = if quick {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            tv: TvConfig {
                alive2_budget: SolverBudget {
                    max_conflicts: 5_000,
                    max_clauses: 200_000,
                },
                cunroll_budget: SolverBudget {
                    max_conflicts: 50_000,
                    max_clauses: 1_000_000,
                },
                spatial_budget: SolverBudget {
                    max_conflicts: 20_000,
                    max_clauses: 500_000,
                },
                alive2_chunks: 1,
                ..TvConfig::default()
            },
        }
    } else {
        PipelineConfig::default()
    };

    // Resolve the stage schedule: `default`, `profile` (derived from the
    // cross-run profile journal), or an explicit spec string.
    let schedule = match schedule_arg.as_str() {
        "profile" => {
            let Some(path) = &profile else {
                return fail("--schedule profile needs --profile <path>".to_string());
            };
            match CrossRunProfile::load(path) {
                Ok(loaded) if loaded.is_empty() => {
                    println!(
                        "profile {} is empty; running the default schedule",
                        path.display()
                    );
                    StageSchedule::algorithm1()
                }
                Ok(loaded) => {
                    let derived = StageSchedule::from_profile(&loaded);
                    println!(
                        "schedule derived from {}: {}",
                        path.display(),
                        derived.spec()
                    );
                    derived
                }
                Err(e) => return fail(format!("cannot load profile {}: {}", path.display(), e)),
            }
        }
        spec => match StageSchedule::parse_spec(spec) {
            Ok(schedule) => schedule,
            Err(e) => return fail(format!("bad --schedule: {}", e)),
        },
    };

    // Resolve the solver budgets: `fixed` keeps the configured ones,
    // `profile` derives tightened budgets from the cross-run profile's
    // conclusive-effort evidence (stages without evidence keep their
    // configured budget).
    let pipeline = match budget_arg.as_str() {
        "fixed" => pipeline,
        "profile" => {
            let Some(path) = &profile else {
                return fail("--budget profile needs --profile <path>".to_string());
            };
            match CrossRunProfile::load(path) {
                Ok(loaded) if loaded.is_empty() => {
                    println!(
                        "profile {} is empty; keeping configured budgets",
                        path.display()
                    );
                    pipeline
                }
                Ok(loaded) => {
                    let tuned =
                        AdaptiveBudgetPolicy::default().derive_from_profile(&loaded, &pipeline.tv);
                    println!(
                        "budgets derived from {}: alive2 {} conflicts, cunroll {}, spatial {}",
                        path.display(),
                        tuned.alive2_budget.max_conflicts,
                        tuned.cunroll_budget.max_conflicts,
                        tuned.spatial_budget.max_conflicts
                    );
                    PipelineConfig {
                        tv: tuned,
                        ..pipeline
                    }
                }
                Err(e) => return fail(format!("cannot load profile {}: {}", path.display(), e)),
            }
        }
        other => {
            return fail(format!(
                "bad --budget `{}` (expected `fixed` or `profile`)",
                other
            ))
        }
    };

    let config = EngineConfig::full(pipeline)
        .with_threads(threads)
        .with_schedule(schedule)
        .with_reuse(if reuse {
            EngineReuse::full()
        } else {
            EngineReuse::default()
        });

    let worker = match WorkerSpec::current_exe() {
        Ok(worker) => worker,
        Err(e) => return fail(format!("cannot locate own executable: {}", e)),
    };
    let flush = match FlushMode::from_tag(&flush_tag, fsync) {
        Ok(flush) => flush,
        Err(e) => return fail(e),
    };
    let sweep = SweepConfig {
        shards,
        policy,
        workdir: workdir.clone(),
        timeout,
        worker,
        bounds: CacheBounds {
            max_entries,
            max_bytes: None,
        },
        flush,
        flush_every,
        cache_format,
        profile: profile.clone(),
        fail_shard_after: None,
    };

    println!(
        "sweeping {} jobs over {} shard process(es) ({}, {} flush, schedule {}, reuse {}), workdir {}",
        jobs.len(),
        shards,
        policy.tag(),
        flush.tag(),
        config.schedule.spec(),
        if reuse { "on" } else { "off" },
        workdir.display()
    );
    let swept = match llm_vectorizer_repro::core::run_sharded_sweep(&jobs, &config, &sweep) {
        Ok(swept) => swept,
        Err(e) => return fail(e.to_string()),
    };

    for outcome in &swept.shards {
        println!(
            "shard {}: {:?}, {}/{} job(s) reported",
            outcome.shard, outcome.status, outcome.reported, outcome.planned
        );
    }
    if !swept.recovered.is_empty() {
        println!("recovered {} job(s) in-process", swept.recovered.len());
    }
    for job in &swept.report.jobs {
        println!(
            "{}: {:?} @ {}{}",
            job.label,
            job.verdict,
            job.stage.label(),
            if job.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", job.detail)
            }
        );
    }
    println!(
        "merged: {} equivalent, {} not equivalent, {} inconclusive; cache {} ({} entries, {} evicted); wall {:?}",
        swept.report.count(Equivalence::Equivalent),
        swept.report.count(Equivalence::NotEquivalent),
        swept.report.count(Equivalence::Inconclusive),
        swept.cache_file.display(),
        swept.cache.len(),
        swept.evicted,
        swept.report.wall
    );
    let totals = swept.report.reuse_totals();
    if !totals.is_zero() {
        println!(
            "reuse: {} blast-cache hits / {} misses, {} assumption reuses, {} portfolio escalations",
            totals.blast_hits, totals.blast_misses, totals.assumption_reuses, totals.escalations
        );
    }
    if let (Some(path), Some(delta)) = (&profile, &swept.profile_delta) {
        println!(
            "profile: appended {} cell delta(s) to {}",
            delta.len(),
            path.display()
        );
    }
    ExitCode::SUCCESS
}
