//! `lv-sweep` — the sharded multi-process TSVC sweep CLI.
//!
//! Coordinator mode (the default) builds one verification job per TSVC
//! kernel the rule-based vectorizer supports, partitions them over `N`
//! worker *processes* (each re-invoking this very binary with `--shard
//! i/N`), and merges the per-shard verdict-cache files and reports into a
//! single table plus a merged cache file — bit-identical to what a
//! single-process run produces.
//!
//! ```text
//! lv-sweep [--shards N] [--policy hash|range] [--workdir DIR]
//!          [--kernels s000,s112,...] [--threads T] [--quick]
//!          [--max-cache-entries N] [--timeout-secs S]
//!          [--flush journal|rewrite] [--fsync compact|record]
//! ```
//!
//! `--flush` selects how workers flush per-job output: `journal` (default)
//! appends one framed record per job to append-only cache/report journals —
//! O(record) flush I/O; `rewrite` is the legacy whole-file atomic rewrite.
//! `--fsync` applies to journal mode: `compact` (default) syncs only at
//! compaction, `record` syncs after every appended record.
//!
//! Worker mode is selected by the presence of `--shard i/N` (plus
//! `--manifest` and `--out`, which the coordinator passes automatically)
//! and is not meant to be invoked by hand.

use llm_vectorizer_repro::core::shard::run_worker_from_args;
use llm_vectorizer_repro::core::{
    CacheBounds, EngineConfig, Equivalence, FlushMode, FsyncPolicy, Job, PipelineConfig,
    ShardPolicy, SweepConfig, WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tv::{SolverBudget, TvConfig};
use std::process::ExitCode;
use std::time::Duration;

fn fail(message: String) -> ExitCode {
    eprintln!("lv-sweep: {}", message);
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker mode: the coordinator spawned us with `--shard i/N`.
    if let Some(result) = run_worker_from_args(&args) {
        return match result {
            Ok(output) => {
                println!(
                    "shard {} finished {} job(s); cache {}, report {}",
                    output.shard,
                    output.finished,
                    output.cache_file.display(),
                    output.report_file.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e.to_string()),
        };
    }

    // Coordinator mode.
    let mut shards = 2usize;
    let mut policy = ShardPolicy::HashMod;
    let mut workdir = std::env::temp_dir().join(format!("lv-sweep-{}", std::process::id()));
    let mut kernels: Option<Vec<String>> = None;
    let mut threads = 0usize;
    let mut quick = false;
    let mut max_entries: Option<usize> = None;
    let mut timeout = Duration::from_secs(600);
    let mut flush_tag = "journal".to_string();
    let mut fsync = FsyncPolicy::default();

    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{} needs a value", what))
        };
        let result: Result<(), String> = (|| {
            match arg.as_str() {
                "--shards" => {
                    shards = value("--shards")?
                        .parse()
                        .map_err(|_| "--shards expects an integer".to_string())?
                }
                "--policy" => {
                    policy = match value("--policy")?.as_str() {
                        "hash" | "hash-mod" => ShardPolicy::HashMod,
                        "range" | "contiguous" => ShardPolicy::Contiguous,
                        other => return Err(format!("unknown policy `{}`", other)),
                    }
                }
                "--workdir" => workdir = value("--workdir")?.into(),
                "--kernels" => {
                    kernels = Some(
                        value("--kernels")?
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .filter(|s| !s.is_empty())
                            .collect(),
                    )
                }
                "--threads" => {
                    threads = value("--threads")?
                        .parse()
                        .map_err(|_| "--threads expects an integer".to_string())?
                }
                "--quick" => quick = true,
                "--max-cache-entries" => {
                    max_entries = Some(
                        value("--max-cache-entries")?
                            .parse()
                            .map_err(|_| "--max-cache-entries expects an integer".to_string())?,
                    )
                }
                "--timeout-secs" => {
                    timeout = Duration::from_secs(
                        value("--timeout-secs")?
                            .parse()
                            .map_err(|_| "--timeout-secs expects an integer".to_string())?,
                    )
                }
                "--flush" => flush_tag = value("--flush")?,
                "--fsync" => fsync = FsyncPolicy::from_tag(&value("--fsync")?)?,
                other => {
                    return Err(format!(
                        "unknown argument `{}` (see the module docs)",
                        other
                    ))
                }
            }
            Ok(())
        })();
        if let Err(e) = result {
            return fail(e);
        }
    }

    let jobs: Vec<Job> = llm_vectorizer_repro::tsvc::KERNELS
        .iter()
        .filter(|kernel| {
            kernels
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == kernel.name))
        })
        .filter_map(|kernel| {
            let scalar = kernel.function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).ok()?;
            Some(Job::new(kernel.name, scalar, candidate))
        })
        .collect();
    if jobs.is_empty() {
        return fail("no verification jobs (unknown --kernels selection?)".to_string());
    }

    let pipeline = if quick {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            tv: TvConfig {
                alive2_budget: SolverBudget {
                    max_conflicts: 5_000,
                    max_clauses: 200_000,
                },
                cunroll_budget: SolverBudget {
                    max_conflicts: 50_000,
                    max_clauses: 1_000_000,
                },
                spatial_budget: SolverBudget {
                    max_conflicts: 20_000,
                    max_clauses: 500_000,
                },
                alive2_chunks: 1,
                ..TvConfig::default()
            },
        }
    } else {
        PipelineConfig::default()
    };
    let config = EngineConfig::full(pipeline).with_threads(threads);

    let worker = match WorkerSpec::current_exe() {
        Ok(worker) => worker,
        Err(e) => return fail(format!("cannot locate own executable: {}", e)),
    };
    let flush = match FlushMode::from_tag(&flush_tag, fsync) {
        Ok(flush) => flush,
        Err(e) => return fail(e),
    };
    let sweep = SweepConfig {
        shards,
        policy,
        workdir: workdir.clone(),
        timeout,
        worker,
        bounds: CacheBounds {
            max_entries,
            max_bytes: None,
        },
        flush,
        fail_shard_after: None,
    };

    println!(
        "sweeping {} jobs over {} shard process(es) ({}, {} flush), workdir {}",
        jobs.len(),
        shards,
        policy.tag(),
        flush.tag(),
        workdir.display()
    );
    let swept = match llm_vectorizer_repro::core::run_sharded_sweep(&jobs, &config, &sweep) {
        Ok(swept) => swept,
        Err(e) => return fail(e.to_string()),
    };

    for outcome in &swept.shards {
        println!(
            "shard {}: {:?}, {}/{} job(s) reported",
            outcome.shard, outcome.status, outcome.reported, outcome.planned
        );
    }
    if !swept.recovered.is_empty() {
        println!("recovered {} job(s) in-process", swept.recovered.len());
    }
    for job in &swept.report.jobs {
        println!(
            "{}: {:?} @ {}{}",
            job.label,
            job.verdict,
            job.stage.label(),
            if job.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", job.detail)
            }
        );
    }
    println!(
        "merged: {} equivalent, {} not equivalent, {} inconclusive; cache {} ({} entries, {} evicted); wall {:?}",
        swept.report.count(Equivalence::Equivalent),
        swept.report.count(Equivalence::NotEquivalent),
        swept.report.count(Equivalence::Inconclusive),
        swept.cache_file.display(),
        swept.cache.len(),
        swept.evicted,
        swept.report.wall
    );
    ExitCode::SUCCESS
}
