//! `lv-sweep` — the sharded multi-process TSVC sweep CLI.
//!
//! Coordinator mode (the default) builds one verification job per TSVC
//! kernel the rule-based vectorizer supports, partitions them over `N`
//! worker *processes* (each re-invoking this very binary with `--shard
//! i/N`), and merges the per-shard verdict-cache files and reports into a
//! single table plus a merged cache file — bit-identical to what a
//! single-process run produces.
//!
//! ```text
//! lv-sweep [--shards N] [--policy hash|range] [--workdir DIR]
//!          [--kernels s000,s112,...] [--threads T] [--quick]
//!          [--max-cache-entries N] [--timeout-secs S]
//!          [--flush journal|rewrite] [--fsync compact|record]
//!          [--flush-every N] [--cache-format json|binary]
//!          [--profile PATH] [--schedule default|profile|SPEC]
//!          [--budget fixed|profile] [--reuse|--no-reuse] [--simplify]
//!          [--steal] [--heartbeat-ms MS] [--stall-timeout-secs S]
//! lv-sweep run --generate K [--gen-seed S] [--gen-threads T]
//!          [--kernels s000,...] [--threads N] [--quick] [--no-overlap]
//!          [--reuse|--no-reuse] [--simplify]
//! lv-sweep serve [--addr HOST:PORT] [--cache FILE] [--threads T] [--quick]
//!          [--reuse|--no-reuse] [--simplify]
//! lv-sweep submit [--addr HOST:PORT] [--kernels s000,...]
//!          [--generate K] [--gen-seed S] [--shutdown]
//! lv-sweep status [--addr HOST:PORT]
//! lv-sweep compact [--format json|binary] FILE...
//! lv-sweep cache stats FILE...
//! ```
//!
//! `run` is the overlapped generation→verification pipeline in one
//! process: `--gen-threads` producer threads sample `K` candidates per
//! kernel (per-cell seeds derived from `--gen-seed`, so any thread count
//! yields the same candidate set) and stream them through the engine's
//! bounded job intake while verification is already running. Verdicts are
//! bit-identical to the unoverlapped same-seed run (`--no-overlap`
//! generates the full batch first, then verifies — the comparison arm).
//! The pass@k curve of Section 4.1.2 is printed for k = 1, 2, 4, … K.
//!
//! The coordinator accepts the same `--generate K` / `--gen-seed S` pair:
//! the sweep manifest then carries the *generation spec* instead of
//! printed candidates, and every shard process generates its own share
//! (overlapped with verification) — bit-identical to the single-process
//! run over the same spec. `submit --generate K` asks a daemon to do the
//! generation server-side: each selected kernel occupies `K` verdict slots
//! labeled `name#j`, and generation overlaps verification on the daemon.
//!
//! Exit status: `0` on success, `1` on a runtime failure (I/O, solver,
//! protocol), `2` on a malformed command line. Every failure is a typed
//! error printed to stderr — never a panic.
//!
//! `--flush` selects how workers flush per-job output: `journal` (default)
//! appends one framed record per job to append-only cache/report journals —
//! O(record) flush I/O; `rewrite` is the legacy whole-file atomic rewrite.
//! `--fsync` applies to journal mode: `compact` (default) syncs only at
//! compaction, `record` syncs after every appended record. `--flush-every N`
//! buffers N record appends per syscall flush (default 1); a killed worker
//! then loses at most N−1 buffered tail records, all of which the
//! coordinator's recovery re-runs.
//!
//! `--profile` names a cross-run profile journal: the sweep's per-category
//! per-stage telemetry is appended to it after the merge, and
//! `--schedule profile` derives the per-category stage order (and, when the
//! profile has conclusive evidence, nothing else — budgets stay configured)
//! from what previous runs recorded there. `--schedule` also accepts an
//! explicit spec (`reduction=cunroll,alive2,splitting;...`) or `default`.
//! `--budget profile` additionally derives tightened per-stage solver
//! budgets from the same profile journal
//! (`AdaptiveBudgetPolicy::derive_from_profile`) — no pilot slice needed;
//! `fixed` (the default) keeps the configured budgets.
//!
//! `--reuse` turns on every solver-reuse layer (blasted-CNF memoization,
//! incremental per-scalar sessions with scalar-affinity scheduling, and
//! portfolio budget racing) in all shard workers. Verdicts are identical to
//! a reuse-off sweep; the incremental layer perturbs the configuration
//! fingerprint, so reuse-on and reuse-off sweeps keep separate cache
//! entries. By default the blast-memo layer *alone* is on — its replays
//! are clause-identical, so it changes no verdict, fingerprint, or cache
//! byte; `--no-reuse` switches every layer off.
//!
//! `--simplify` (also accepted by `run` and `serve`) enables clause-database
//! simplification in every worker's solver: SatELite-style preprocessing
//! (unit propagation, pure literals, subsumption, self-subsuming
//! resolution, bounded variable elimination) before each search, plus
//! inprocessing hooks (LBD-driven learned-clause DB reduction, on-the-fly
//! clause minimization) inside the CDCL loop. Simplified queries may
//! conclude where the raw budget ran out, so `--simplify` perturbs the
//! configuration fingerprint; sweep summaries and `status` print the
//! simplify counters (vars eliminated, clauses subsumed/strengthened).
//!
//! `--steal` turns on live-shard work stealing (journal flush mode only):
//! workers that finish their share claim pending jobs from slow siblings
//! through per-shard claim journals, so one stalled shard no longer bounds
//! the sweep. `--heartbeat-ms` sets the liveness heartbeat period workers
//! append to their report journals (implied at 250ms by `--steal` or
//! `--stall-timeout-secs`); `--stall-timeout-secs` makes the coordinator
//! kill — and recover — a worker whose report journal shows neither a new
//! heartbeat nor a new report for that long.
//!
//! `--cache-format binary` makes shard workers write their per-shard cache
//! journals as compact binary records (`LVBJ` framing) instead of JSON
//! lines. The merged cache the coordinator persists stays a JSON snapshot
//! either way, so sweep outputs are bit-identical across formats.
//!
//! `serve` runs the long-lived verification daemon
//! ([`VerificationService`]): a loopback-first TCP listener speaking the
//! CRC-framed `LVSV` wire protocol, deduping every submitted job through
//! the shared verdict cache (`--cache` persists it across restarts) before
//! anything runs. `submit` builds the TSVC job list client-side, streams it
//! to a daemon, and prints the verdict table (`--shutdown` stops the daemon
//! afterwards); `status` prints a daemon's live counters. See
//! `lv_core::service` for the protocol.
//!
//! `compact` rewrites journal files into their canonical compact form:
//! verdict-cache files (any of the four persisted forms, sniffed by
//! content) become the sorted snapshot of `--format` — `json` (default,
//! `VerdictCache::compact_journal`) or `binary` (the `LVCS` tier file with
//! its bloom block); shard-report journals become the snapshot report
//! document, and cross-run profile journals one summed record per cell
//! (both JSON-only — `--format` applies to verdict caches).
//!
//! `cache stats` prints, for each verdict-cache file: the sniffed form,
//! size, entry count, bytes per entry, the per-verdict-class histogram, and
//! the bloom block's shape and estimated false-positive rate when present.
//!
//! Worker mode is selected by the presence of `--shard i/N` (plus
//! `--manifest` and `--out`, which the coordinator passes automatically)
//! and is not meant to be invoked by hand.

use llm_vectorizer_repro::agents::LlmConfig;
use llm_vectorizer_repro::cir::ast::Function;
use llm_vectorizer_repro::core::shard::{run_worker_from_args, ShardError, ShardReportFile};
use llm_vectorizer_repro::core::{
    cache_file_stats, generate_then_verify_pass_at_k, overlapped_pass_at_k, AdaptiveBudgetPolicy,
    BatchReport, CacheBounds, CacheFormat, CrossRunProfile, EngineConfig, EngineReuse, Equivalence,
    FlushMode, FsyncPolicy, GenerationRequest, GenerationSpec, Job, PipelineConfig, ServiceClient,
    ShardPolicy, StageSchedule, SweepConfig, VerdictCache, VerificationEngine, VerificationService,
    WorkerSpec,
};
use llm_vectorizer_repro::interp::ChecksumConfig;
use llm_vectorizer_repro::tv::{SimplifyConfig, SolverBudget, TvConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Every way an `lv-sweep` invocation can fail, split by whose fault it
/// is: a malformed command line exits `2`, a runtime failure exits `1`.
/// Both print a typed message to stderr; nothing in this binary panics on
/// bad input.
#[derive(Debug, PartialEq, Eq)]
enum CliError {
    /// The command line is malformed (unknown flag, missing value,
    /// unparsable number, empty selection).
    Usage(String),
    /// The command line was fine but the work failed (I/O, protocol,
    /// unreadable file, sweep error).
    Runtime(String),
}

impl CliError {
    fn report(self) -> ExitCode {
        match self {
            CliError::Usage(message) => {
                eprintln!("lv-sweep: {}", message);
                ExitCode::from(2)
            }
            CliError::Runtime(message) => {
                eprintln!("lv-sweep: {}", message);
                ExitCode::FAILURE
            }
        }
    }
}

fn usage(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn runtime(message: impl Into<String>) -> CliError {
    CliError::Runtime(message.into())
}

const DEFAULT_SERVICE_ADDR: &str = "127.0.0.1:7411";

/// Resolves the engine reuse layers from the tri-state `--reuse` /
/// `--no-reuse` pair plus `--simplify`. With neither reuse flag given, the
/// blast-memo layer alone is on: its replays are clause-identical, so it
/// changes no verdict, no fingerprint, and no cache entry — a free default.
/// `--reuse` turns on every layer, `--no-reuse` turns them all off.
fn resolve_reuse(reuse: Option<bool>, simplify: bool) -> EngineReuse {
    let mut resolved = match reuse {
        Some(true) => EngineReuse::full(),
        Some(false) => EngineReuse::default(),
        None => EngineReuse {
            memo: true,
            ..EngineReuse::default()
        },
    };
    if simplify {
        resolved.simplify = SimplifyConfig::full();
    }
    resolved
}

/// One-word description of a resolved reuse configuration, for sweep
/// banners.
fn reuse_tag(reuse: EngineReuse) -> &'static str {
    if reuse.incremental {
        "full"
    } else if reuse.memo {
        "memo"
    } else {
        "off"
    }
}

/// Prints the batch's clause-database simplification totals, when any
/// (silent on a `--simplify`-less sweep, whose counters are exactly zero).
fn print_simplify_totals(report: &BatchReport) {
    let totals = report.simplify_totals();
    if !totals.is_zero() {
        println!(
            "simplify: {} vars eliminated, {} clauses subsumed, {} strengthened, \
             {} arena bytes peak, {}us preprocessing",
            totals.vars_eliminated,
            totals.clauses_subsumed,
            totals.clauses_strengthened,
            totals.arena_bytes,
            totals.preprocess_micros
        );
    }
}

/// `lv-sweep compact [--format json|binary] FILE...`: rewrites each file
/// into its canonical compact form, dispatching on content (magic bytes for
/// the binary cache forms, the journal kind header for the text forms).
/// `--format` picks the target snapshot form for verdict-cache files; the
/// other journal kinds are JSON-only.
fn compact_files(args: &[String]) -> Result<(), CliError> {
    let mut format = CacheFormat::Json;
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--format" {
            let Some(tag) = iter.next() else {
                return Err(usage("--format needs a value"));
            };
            format = CacheFormat::from_tag(tag).map_err(usage)?;
        } else {
            paths.push(arg);
        }
    }
    if paths.is_empty() {
        return Err(usage("compact needs at least one journal file"));
    }
    for path in paths {
        let path = Path::new(path);
        let bytes = std::fs::read(path)
            .map_err(|e| runtime(format!("cannot read {}: {}", path.display(), e)))?;
        let before = bytes.len();
        let is_cache = bytes.starts_with(b"LVCS")
            || bytes.starts_with(b"LVBJ")
            || bytes.starts_with(b"{\"journal\":\"verdict-cache\"")
            || (format == CacheFormat::Binary && bytes.starts_with(b"{\"version\":"));
        let result: Result<&str, String> = if is_cache {
            VerdictCache::open(path)
                .and_then(|cache| cache.compact_to(format))
                .map(|()| match format {
                    CacheFormat::Json => "verdict cache -> JSON snapshot",
                    CacheFormat::Binary => "verdict cache -> binary snapshot",
                })
                .map_err(|e| e.to_string())
        } else if bytes.starts_with(b"{\"journal\":\"shard-report\"") {
            ShardReportFile::load(path)
                .map_err(|e| e.to_string())
                .and_then(|report| {
                    report
                        .write(path)
                        .map(|_| "shard report -> snapshot")
                        .map_err(|e| e.to_string())
                })
        } else if bytes.starts_with(b"{\"journal\":\"cross-run-profile\"") {
            CrossRunProfile::load(path)
                .and_then(|profile| profile.rewrite(path, FsyncPolicy::OnCompact))
                .map(|()| "profile -> one record per cell")
                .map_err(|e| e.to_string())
        } else if bytes.starts_with(b"{\"version\":") {
            // Already the target JSON snapshot: compaction is a no-op, not
            // an error, so `compact` is idempotent over a workdir.
            Ok("already a snapshot (unchanged)")
        } else {
            Err("not a recognized journal or snapshot file".to_string())
        };
        match result {
            Ok(what) => {
                let after = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!(
                    "compacted {}: {} ({} -> {} bytes)",
                    path.display(),
                    what,
                    before,
                    after
                );
            }
            Err(e) => {
                return Err(runtime(format!("cannot compact {}: {}", path.display(), e)));
            }
        }
    }
    Ok(())
}

/// `lv-sweep cache stats FILE...`: per-file cache statistics.
fn cache_stats(paths: &[String]) -> Result<(), CliError> {
    if paths.is_empty() {
        return Err(usage("cache stats needs at least one cache file"));
    }
    for path in paths {
        let path = Path::new(path);
        let stats = cache_file_stats(path)
            .map_err(|e| runtime(format!("cannot read {}: {}", path.display(), e)))?;
        println!("{}:", path.display());
        println!("  format:          {}", stats.format);
        println!("  file bytes:      {}", stats.file_bytes);
        println!("  entries:         {}", stats.entries);
        println!("  bytes/entry:     {:.1}", stats.bytes_per_entry());
        println!(
            "  verdicts:        {} equivalent, {} not-equivalent, {} inconclusive",
            stats.equivalent, stats.not_equivalent, stats.inconclusive
        );
        match stats.bloom {
            Some(bloom) => println!(
                "  bloom:           {} bits, {} hashes, ~{:.3}% false positives",
                bloom.bits,
                bloom.hashes,
                bloom.fp_estimate * 100.0
            ),
            None => println!("  bloom:           none"),
        }
    }
    Ok(())
}

/// The TSVC Table 3 job list, optionally restricted to named kernels.
fn tsvc_jobs(kernels: &Option<Vec<String>>) -> Result<Vec<Job>, CliError> {
    let jobs: Vec<Job> = llm_vectorizer_repro::tsvc::KERNELS
        .iter()
        .filter(|kernel| {
            kernels
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == kernel.name))
        })
        .filter_map(|kernel| {
            let scalar = kernel.function();
            let candidate = llm_vectorizer_repro::agents::vectorize_correct(&scalar).ok()?;
            Some(Job::new(kernel.name, scalar, candidate))
        })
        .collect();
    if jobs.is_empty() {
        return Err(usage("no verification jobs (unknown --kernels selection?)"));
    }
    Ok(jobs)
}

/// The TSVC scalar kernel list (label + function) for candidate
/// generation, optionally restricted to named kernels. Unlike
/// [`tsvc_jobs`] this places no demand on the rule-based vectorizer — the
/// candidates come from the generator.
fn tsvc_scalars(kernels: &Option<Vec<String>>) -> Result<Vec<(String, Function)>, CliError> {
    let scalars: Vec<(String, Function)> = llm_vectorizer_repro::tsvc::KERNELS
        .iter()
        .filter(|kernel| {
            kernels
                .as_ref()
                .is_none_or(|names| names.iter().any(|n| n == kernel.name))
        })
        .map(|kernel| (kernel.name.to_string(), kernel.function()))
        .collect();
    if scalars.is_empty() {
        return Err(usage("no kernels selected (unknown --kernels selection?)"));
    }
    Ok(scalars)
}

/// The pass@k sample points for a budget of `k`: 1, 2, 4, … and `k`.
fn passk_points(k: usize) -> Vec<usize> {
    let mut ks: Vec<usize> = std::iter::successors(Some(1usize), |&p| p.checked_mul(2))
        .take_while(|&p| p < k)
        .collect();
    ks.push(k);
    ks
}

/// The `--quick` pipeline: tiny checksum trials and tight solver budgets,
/// for smoke runs and CI.
fn build_pipeline(quick: bool) -> PipelineConfig {
    if quick {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            tv: TvConfig {
                alive2_budget: SolverBudget {
                    max_conflicts: 5_000,
                    max_clauses: 200_000,
                },
                cunroll_budget: SolverBudget {
                    max_conflicts: 50_000,
                    max_clauses: 1_000_000,
                },
                spatial_budget: SolverBudget {
                    max_conflicts: 20_000,
                    max_clauses: 500_000,
                },
                alive2_chunks: 1,
                ..TvConfig::default()
            },
        }
    } else {
        PipelineConfig::default()
    }
}

/// `lv-sweep run` arguments: the one-process overlapped pipeline.
#[derive(Debug, PartialEq, Eq)]
struct RunArgs {
    generate: usize,
    gen_seed: u64,
    gen_threads: usize,
    kernels: Option<Vec<String>>,
    threads: usize,
    quick: bool,
    overlap: bool,
    reuse: Option<bool>,
    simplify: bool,
}

fn parse_run(args: &[String]) -> Result<RunArgs, CliError> {
    let mut opts = RunArgs {
        generate: 0,
        gen_seed: 0xC0FFEE,
        gen_threads: 0,
        kernels: None,
        threads: 0,
        quick: false,
        overlap: true,
        reuse: None,
        simplify: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{} needs a value", what)))
        };
        match arg.as_str() {
            "--generate" => {
                opts.generate = value("--generate")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| usage("--generate expects a positive integer"))?
            }
            "--gen-seed" => {
                opts.gen_seed = value("--gen-seed")?
                    .parse()
                    .map_err(|_| usage("--gen-seed expects an integer"))?
            }
            "--gen-threads" => {
                opts.gen_threads = value("--gen-threads")?
                    .parse()
                    .map_err(|_| usage("--gen-threads expects an integer"))?
            }
            "--kernels" => {
                opts.kernels = Some(
                    value("--kernels")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| usage("--threads expects an integer"))?
            }
            "--quick" => opts.quick = true,
            "--no-overlap" => opts.overlap = false,
            "--reuse" => opts.reuse = Some(true),
            "--no-reuse" => opts.reuse = Some(false),
            "--simplify" => opts.simplify = true,
            other => return Err(usage(format!("run: unknown argument `{}`", other))),
        }
    }
    if opts.generate == 0 {
        return Err(usage("run needs --generate K (completions per kernel)"));
    }
    Ok(opts)
}

/// Bound on the CLI pipeline's generate→verify queue: enough to keep the
/// workers fed, small enough for backpressure to hold generation close to
/// verification.
const RUN_QUEUE_CAPACITY: usize = 32;

/// `lv-sweep run`: generate K candidates per kernel and verify them,
/// overlapped (or, with `--no-overlap`, generate-then-verify — same seeds,
/// bit-identical verdicts).
fn cmd_run(args: &[String]) -> Result<(), CliError> {
    let opts = parse_run(args)?;
    let kernels = tsvc_scalars(&opts.kernels)?;
    let engine = VerificationEngine::new(
        EngineConfig::full(build_pipeline(opts.quick))
            .with_threads(opts.threads)
            .with_reuse(resolve_reuse(opts.reuse, opts.simplify)),
    );
    let llm_config = LlmConfig {
        seed: opts.gen_seed,
        ..LlmConfig::default()
    };
    let ks = passk_points(opts.generate);
    println!(
        "generating {} candidate(s) x {} kernel(s) (seed {:#x}, {} generator thread(s)), {}",
        opts.generate,
        kernels.len(),
        opts.gen_seed,
        opts.gen_threads,
        if opts.overlap {
            "overlapped with verification"
        } else {
            "then verifying"
        }
    );
    let run = if opts.overlap {
        overlapped_pass_at_k(
            &engine,
            &kernels,
            &llm_config,
            opts.generate,
            &ks,
            opts.gen_threads,
            RUN_QUEUE_CAPACITY,
        )
    } else {
        generate_then_verify_pass_at_k(
            &engine,
            &kernels,
            &llm_config,
            opts.generate,
            &ks,
            opts.gen_threads,
        )
    };
    for ((name, _), plausible) in kernels.iter().zip(&run.plausible_per_kernel) {
        println!("{}: {}/{} plausible", name, plausible, opts.generate);
    }
    for (k, pass) in &run.curve {
        println!("pass@{}: {:.3}", k, pass);
    }
    println!(
        "{} job(s) verified on {} worker thread(s); wall {:?}",
        run.report.jobs.len(),
        run.report.threads,
        run.report.wall
    );
    print_simplify_totals(&run.report);
    Ok(())
}

/// `lv-sweep serve` arguments.
#[derive(Debug, PartialEq, Eq)]
struct ServeArgs {
    addr: String,
    cache: Option<PathBuf>,
    threads: usize,
    quick: bool,
    reuse: Option<bool>,
    simplify: bool,
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, CliError> {
    let mut opts = ServeArgs {
        addr: DEFAULT_SERVICE_ADDR.to_string(),
        cache: None,
        threads: 0,
        quick: false,
        reuse: None,
        simplify: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{} needs a value", what)))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--cache" => opts.cache = Some(value("--cache")?.into()),
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| usage("--threads expects an integer"))?
            }
            "--quick" => opts.quick = true,
            "--reuse" => opts.reuse = Some(true),
            "--no-reuse" => opts.reuse = Some(false),
            "--simplify" => opts.simplify = true,
            other => return Err(usage(format!("serve: unknown argument `{}`", other))),
        }
    }
    Ok(opts)
}

/// `lv-sweep serve`: run the verification daemon until a client asks it to
/// shut down.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let opts = parse_serve(args)?;
    let cache = match &opts.cache {
        Some(path) => Arc::new(
            VerdictCache::open(path)
                .map_err(|e| runtime(format!("cannot open cache {}: {}", path.display(), e)))?,
        ),
        None => Arc::new(VerdictCache::in_memory()),
    };
    let config = EngineConfig::full(build_pipeline(opts.quick))
        .with_threads(opts.threads)
        .with_reuse(resolve_reuse(opts.reuse, opts.simplify));
    let service = VerificationService::bind(opts.addr.as_str(), config, cache.clone())
        .map_err(|e| runtime(format!("cannot serve on {}: {}", opts.addr, e)))?;
    println!(
        "serving on {} (configuration fingerprint {:016x})",
        service.local_addr(),
        service.fingerprint()
    );
    service
        .serve_forever()
        .map_err(|e| runtime(format!("serve failed: {}", e)))?;
    if let Some(path) = &opts.cache {
        cache
            .persist()
            .map_err(|e| runtime(format!("cannot persist cache {}: {}", path.display(), e)))?;
    }
    let status = service.status();
    println!(
        "shutdown: {} connection(s), {} job(s) received, {} completed, {} dedupe hit(s), \
         {} stage run(s), {} generated",
        status.connections,
        status.received,
        status.completed,
        status.dedupe_hits,
        status.stages,
        status.generated
    );
    if status.vars_eliminated | status.clauses_subsumed | status.clauses_strengthened != 0 {
        println!(
            "simplify: {} vars eliminated, {} clauses subsumed, {} strengthened",
            status.vars_eliminated, status.clauses_subsumed, status.clauses_strengthened
        );
    }
    Ok(())
}

/// `lv-sweep submit` arguments.
#[derive(Debug, PartialEq, Eq)]
struct SubmitArgs {
    addr: String,
    kernels: Option<Vec<String>>,
    generate: Option<usize>,
    gen_seed: u64,
    shutdown: bool,
}

fn parse_submit(args: &[String]) -> Result<SubmitArgs, CliError> {
    let mut opts = SubmitArgs {
        addr: DEFAULT_SERVICE_ADDR.to_string(),
        kernels: None,
        generate: None,
        gen_seed: 0xC0FFEE,
        shutdown: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{} needs a value", what)))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--kernels" => {
                opts.kernels = Some(
                    value("--kernels")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--generate" => {
                opts.generate = Some(
                    value("--generate")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| usage("--generate expects a positive integer"))?,
                )
            }
            "--gen-seed" => {
                opts.gen_seed = value("--gen-seed")?
                    .parse()
                    .map_err(|_| usage("--gen-seed expects an integer"))?
            }
            "--shutdown" => opts.shutdown = true,
            other => return Err(usage(format!("submit: unknown argument `{}`", other))),
        }
    }
    Ok(opts)
}

/// `lv-sweep submit`: send the TSVC job list — or, with `--generate K`,
/// server-side generation requests — to a daemon and print the streamed
/// verdicts.
fn cmd_submit(args: &[String]) -> Result<(), CliError> {
    let opts = parse_submit(args)?;
    let mut client = ServiceClient::connect(opts.addr.as_str())
        .map_err(|e| runtime(format!("cannot connect to {}: {}", opts.addr, e)))?;
    println!(
        "connected to {} (configuration fingerprint {:016x})",
        opts.addr,
        client.fingerprint()
    );
    let verdicts = match opts.generate {
        // Server-side generation: K slots per kernel, generated and
        // verified overlapped on the daemon.
        Some(k) => {
            let requests: Vec<GenerationRequest> = tsvc_scalars(&opts.kernels)?
                .into_iter()
                .map(|(label, scalar)| GenerationRequest {
                    label,
                    scalar,
                    k: k as u32,
                    seed: opts.gen_seed,
                })
                .collect();
            client
                .submit_generation(&requests)
                .map_err(|e| runtime(format!("submit failed: {}", e)))?
        }
        None => {
            let jobs = tsvc_jobs(&opts.kernels)?;
            client
                .submit(&jobs)
                .map_err(|e| runtime(format!("submit failed: {}", e)))?
        }
    };
    let mut counts = [0usize; 3];
    let mut dedupe = 0usize;
    for frame in &verdicts {
        counts[match frame.verdict.verdict {
            Equivalence::Equivalent => 0,
            Equivalence::NotEquivalent => 1,
            Equivalence::Inconclusive => 2,
        }] += 1;
        dedupe += usize::from(frame.cache_hit);
        println!(
            "{}: {:?} @ {}{}{}",
            frame.label,
            frame.verdict.verdict,
            frame.verdict.stage.label(),
            if frame.cache_hit { " [dedupe]" } else { "" },
            if frame.verdict.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", frame.verdict.detail)
            }
        );
    }
    println!(
        "{} equivalent, {} not equivalent, {} inconclusive; {} answered from dedupe",
        counts[0], counts[1], counts[2], dedupe
    );
    if opts.shutdown {
        client
            .shutdown()
            .map_err(|e| runtime(format!("shutdown failed: {}", e)))?;
        println!("daemon shut down");
    }
    Ok(())
}

fn parse_status(args: &[String]) -> Result<String, CliError> {
    let mut addr = DEFAULT_SERVICE_ADDR.to_string();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = iter
                    .next()
                    .cloned()
                    .ok_or_else(|| usage("--addr needs a value"))?
            }
            other => return Err(usage(format!("status: unknown argument `{}`", other))),
        }
    }
    Ok(addr)
}

/// `lv-sweep status`: print a daemon's live counters.
fn cmd_status(args: &[String]) -> Result<(), CliError> {
    let addr = parse_status(args)?;
    let mut client = ServiceClient::connect(addr.as_str())
        .map_err(|e| runtime(format!("cannot connect to {}: {}", addr, e)))?;
    let status = client
        .status()
        .map_err(|e| runtime(format!("status failed: {}", e)))?;
    println!(
        "daemon {} (fingerprint {:016x}):",
        addr,
        client.fingerprint()
    );
    println!("  connections:  {}", status.connections);
    println!("  received:     {}", status.received);
    println!("  completed:    {}", status.completed);
    println!("  dedupe hits:  {}", status.dedupe_hits);
    println!("  stage runs:   {}", status.stages);
    println!("  gen queued:   {}", status.generation_queued);
    println!("  generated:    {}", status.generated);
    if status.vars_eliminated | status.clauses_subsumed | status.clauses_strengthened != 0 {
        println!(
            "  simplify:     {} vars eliminated, {} clauses subsumed, {} strengthened",
            status.vars_eliminated, status.clauses_subsumed, status.clauses_strengthened
        );
    }
    Ok(())
}

/// Coordinator-mode arguments (the default subcommand).
#[derive(Debug, PartialEq, Eq)]
struct CoordinatorArgs {
    shards: usize,
    policy: ShardPolicy,
    workdir: PathBuf,
    kernels: Option<Vec<String>>,
    threads: usize,
    quick: bool,
    max_entries: Option<usize>,
    timeout: Duration,
    flush_tag: String,
    fsync: FsyncPolicy,
    flush_every: usize,
    cache_format: CacheFormat,
    profile: Option<PathBuf>,
    schedule_arg: String,
    budget_arg: String,
    reuse: Option<bool>,
    simplify: bool,
    steal: bool,
    heartbeat_ms: Option<u64>,
    stall_timeout_secs: Option<u64>,
    generate: Option<usize>,
    gen_seed: u64,
}

fn parse_coordinator(args: &[String]) -> Result<CoordinatorArgs, CliError> {
    let mut opts = CoordinatorArgs {
        shards: 2,
        policy: ShardPolicy::HashMod,
        workdir: std::env::temp_dir().join(format!("lv-sweep-{}", std::process::id())),
        kernels: None,
        threads: 0,
        quick: false,
        max_entries: None,
        timeout: Duration::from_secs(600),
        flush_tag: "journal".to_string(),
        fsync: FsyncPolicy::default(),
        flush_every: 1,
        cache_format: CacheFormat::default(),
        profile: None,
        schedule_arg: "default".to_string(),
        budget_arg: "fixed".to_string(),
        reuse: None,
        simplify: false,
        steal: false,
        heartbeat_ms: None,
        stall_timeout_secs: None,
        generate: None,
        gen_seed: 0xC0FFEE,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |what: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| usage(format!("{} needs a value", what)))
        };
        match arg.as_str() {
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|_| usage("--shards expects an integer"))?
            }
            "--policy" => {
                opts.policy = match value("--policy")?.as_str() {
                    "hash" | "hash-mod" => ShardPolicy::HashMod,
                    "range" | "contiguous" => ShardPolicy::Contiguous,
                    other => return Err(usage(format!("unknown policy `{}`", other))),
                }
            }
            "--workdir" => opts.workdir = value("--workdir")?.into(),
            "--kernels" => {
                opts.kernels = Some(
                    value("--kernels")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| usage("--threads expects an integer"))?
            }
            "--quick" => opts.quick = true,
            "--max-cache-entries" => {
                opts.max_entries = Some(
                    value("--max-cache-entries")?
                        .parse()
                        .map_err(|_| usage("--max-cache-entries expects an integer"))?,
                )
            }
            "--timeout-secs" => {
                opts.timeout = Duration::from_secs(
                    value("--timeout-secs")?
                        .parse()
                        .map_err(|_| usage("--timeout-secs expects an integer"))?,
                )
            }
            "--flush" => opts.flush_tag = value("--flush")?,
            "--fsync" => opts.fsync = FsyncPolicy::from_tag(&value("--fsync")?).map_err(usage)?,
            "--flush-every" => {
                opts.flush_every = value("--flush-every")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| usage("--flush-every expects a positive integer"))?
            }
            "--cache-format" => {
                opts.cache_format =
                    CacheFormat::from_tag(&value("--cache-format")?).map_err(usage)?
            }
            "--profile" => opts.profile = Some(value("--profile")?.into()),
            "--schedule" => opts.schedule_arg = value("--schedule")?,
            "--budget" => opts.budget_arg = value("--budget")?,
            "--reuse" => opts.reuse = Some(true),
            "--no-reuse" => opts.reuse = Some(false),
            "--simplify" => opts.simplify = true,
            "--steal" => opts.steal = true,
            "--heartbeat-ms" => {
                opts.heartbeat_ms = Some(
                    value("--heartbeat-ms")?
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| usage("--heartbeat-ms expects a positive integer"))?,
                )
            }
            "--stall-timeout-secs" => {
                opts.stall_timeout_secs = Some(
                    value("--stall-timeout-secs")?
                        .parse()
                        .map_err(|_| usage("--stall-timeout-secs expects an integer"))?,
                )
            }
            "--generate" => {
                opts.generate = Some(
                    value("--generate")?
                        .parse::<usize>()
                        .ok()
                        .filter(|&k| k >= 1)
                        .ok_or_else(|| usage("--generate expects a positive integer"))?,
                )
            }
            "--gen-seed" => {
                opts.gen_seed = value("--gen-seed")?
                    .parse()
                    .map_err(|_| usage("--gen-seed expects an integer"))?
            }
            other => {
                return Err(usage(format!(
                    "unknown argument `{}` (see the module docs)",
                    other
                )))
            }
        }
    }
    Ok(opts)
}

/// Coordinator mode: run the sharded sweep and print the merged table.
fn cmd_coordinator(args: &[String]) -> Result<(), CliError> {
    let opts = parse_coordinator(args)?;
    let pipeline = build_pipeline(opts.quick);

    // Resolve the stage schedule: `default`, `profile` (derived from the
    // cross-run profile journal), or an explicit spec string.
    let schedule = match opts.schedule_arg.as_str() {
        "profile" => {
            let Some(path) = &opts.profile else {
                return Err(usage("--schedule profile needs --profile <path>"));
            };
            match CrossRunProfile::load(path) {
                Ok(loaded) if loaded.is_empty() => {
                    println!(
                        "profile {} is empty; running the default schedule",
                        path.display()
                    );
                    StageSchedule::algorithm1()
                }
                Ok(loaded) => {
                    let derived = StageSchedule::from_profile(&loaded);
                    println!(
                        "schedule derived from {}: {}",
                        path.display(),
                        derived.spec()
                    );
                    derived
                }
                Err(e) => {
                    return Err(runtime(format!(
                        "cannot load profile {}: {}",
                        path.display(),
                        e
                    )))
                }
            }
        }
        spec => {
            StageSchedule::parse_spec(spec).map_err(|e| usage(format!("bad --schedule: {}", e)))?
        }
    };

    // Resolve the solver budgets: `fixed` keeps the configured ones,
    // `profile` derives tightened budgets from the cross-run profile's
    // conclusive-effort evidence (stages without evidence keep their
    // configured budget).
    let pipeline = match opts.budget_arg.as_str() {
        "fixed" => pipeline,
        "profile" => {
            let Some(path) = &opts.profile else {
                return Err(usage("--budget profile needs --profile <path>"));
            };
            match CrossRunProfile::load(path) {
                Ok(loaded) if loaded.is_empty() => {
                    println!(
                        "profile {} is empty; keeping configured budgets",
                        path.display()
                    );
                    pipeline
                }
                Ok(loaded) => {
                    let tuned =
                        AdaptiveBudgetPolicy::default().derive_from_profile(&loaded, &pipeline.tv);
                    println!(
                        "budgets derived from {}: alive2 {} conflicts, cunroll {}, spatial {}",
                        path.display(),
                        tuned.alive2_budget.max_conflicts,
                        tuned.cunroll_budget.max_conflicts,
                        tuned.spatial_budget.max_conflicts
                    );
                    PipelineConfig {
                        tv: tuned,
                        ..pipeline
                    }
                }
                Err(e) => {
                    return Err(runtime(format!(
                        "cannot load profile {}: {}",
                        path.display(),
                        e
                    )))
                }
            }
        }
        other => {
            return Err(usage(format!(
                "bad --budget `{}` (expected `fixed` or `profile`)",
                other
            )))
        }
    };

    let reuse = resolve_reuse(opts.reuse, opts.simplify);
    let config = EngineConfig::full(pipeline)
        .with_threads(opts.threads)
        .with_schedule(schedule)
        .with_reuse(reuse);

    let worker = WorkerSpec::current_exe()
        .map_err(|e| runtime(format!("cannot locate own executable: {}", e)))?;
    let flush = FlushMode::from_tag(&opts.flush_tag, opts.fsync).map_err(usage)?;
    let sweep = SweepConfig {
        shards: opts.shards,
        policy: opts.policy,
        workdir: opts.workdir.clone(),
        timeout: opts.timeout,
        worker,
        bounds: CacheBounds {
            max_entries: opts.max_entries,
            max_bytes: None,
        },
        flush,
        flush_every: opts.flush_every,
        cache_format: opts.cache_format,
        profile: opts.profile.clone(),
        fail_shard_after: None,
        steal: opts.steal,
        stall_timeout: opts.stall_timeout_secs.map(Duration::from_secs),
        heartbeat: opts.heartbeat_ms.map(Duration::from_millis),
        delay_shard: None,
    };

    let describe = |count: usize, what: &str| {
        println!(
            "sweeping {} {} over {} shard process(es) ({}, {} flush, schedule {}, reuse {}{}{}), workdir {}",
            count,
            what,
            opts.shards,
            opts.policy.tag(),
            flush.tag(),
            config.schedule.spec(),
            reuse_tag(reuse),
            if reuse.simplify.any() { ", simplify" } else { "" },
            if opts.steal { ", stealing" } else { "" },
            opts.workdir.display()
        );
    };
    let swept = match opts.generate {
        // Generation sweep: the manifest ships the spec, every shard
        // generates (and verifies, overlapped) its own share.
        Some(k) => {
            let spec = GenerationSpec {
                kernels: tsvc_scalars(&opts.kernels)?,
                k,
                seed: opts.gen_seed,
            };
            describe(spec.job_count(), "generated job(s)");
            llm_vectorizer_repro::core::run_generated_sweep(spec, &config, &sweep)
        }
        None => {
            let jobs = tsvc_jobs(&opts.kernels)?;
            describe(jobs.len(), "jobs");
            llm_vectorizer_repro::core::run_sharded_sweep(&jobs, &config, &sweep)
        }
    }
    .map_err(|e| runtime(e.to_string()))?;

    for outcome in &swept.shards {
        println!(
            "shard {}: {:?}, {}/{} job(s) reported{}{}",
            outcome.shard,
            outcome.status,
            outcome.reported,
            outcome.planned,
            if outcome.stolen > 0 {
                format!(", {} stolen", outcome.stolen)
            } else {
                String::new()
            },
            if outcome.heartbeats > 0 {
                format!(", {} heartbeat(s)", outcome.heartbeats)
            } else {
                String::new()
            }
        );
    }
    if !swept.recovered.is_empty() {
        println!("recovered {} job(s) in-process", swept.recovered.len());
    }
    for job in &swept.report.jobs {
        println!(
            "{}: {:?} @ {}{}",
            job.label,
            job.verdict,
            job.stage.label(),
            if job.detail.is_empty() {
                String::new()
            } else {
                format!(" ({})", job.detail)
            }
        );
    }
    println!(
        "merged: {} equivalent, {} not equivalent, {} inconclusive; cache {} ({} entries, {} evicted); wall {:?}",
        swept.report.count(Equivalence::Equivalent),
        swept.report.count(Equivalence::NotEquivalent),
        swept.report.count(Equivalence::Inconclusive),
        swept.cache_file.display(),
        swept.cache.len(),
        swept.evicted,
        swept.report.wall
    );
    let totals = swept.report.reuse_totals();
    if !totals.is_zero() {
        println!(
            "reuse: {} blast-cache hits / {} misses, {} assumption reuses, {} portfolio escalations",
            totals.blast_hits, totals.blast_misses, totals.assumption_reuses, totals.escalations
        );
    }
    print_simplify_totals(&swept.report);
    if let (Some(path), Some(delta)) = (&opts.profile, &swept.profile_delta) {
        println!(
            "profile: appended {} cell delta(s) to {}",
            delta.len(),
            path.display()
        );
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("compact") => return compact_files(&args[1..]),
        Some("cache") => {
            return match args.get(1).map(String::as_str) {
                Some("stats") => cache_stats(&args[2..]),
                _ => Err(usage("usage: lv-sweep cache stats FILE...")),
            }
        }
        Some("run") => return cmd_run(&args[1..]),
        Some("serve") => return cmd_serve(&args[1..]),
        Some("submit") => return cmd_submit(&args[1..]),
        Some("status") => return cmd_status(&args[1..]),
        _ => {}
    }

    // Worker mode: the coordinator spawned us with `--shard i/N`.
    if let Some(result) = run_worker_from_args(args) {
        return match result {
            Ok(output) => {
                println!(
                    "shard {} finished {} job(s){}; cache {}, report {}",
                    output.shard,
                    output.finished,
                    if output.stolen > 0 {
                        format!(" ({} stolen)", output.stolen)
                    } else {
                        String::new()
                    },
                    output.cache_file.display(),
                    output.report_file.display()
                );
                Ok(())
            }
            Err(ShardError::BadInvocation(e)) => {
                Err(usage(format!("bad worker invocation: {}", e)))
            }
            Err(e) => Err(runtime(e.to_string())),
        };
    }

    cmd_coordinator(args)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => e.report(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn serve_args_parse_and_reject() {
        let parsed = parse_serve(&strings(&[
            "--addr",
            "127.0.0.1:9000",
            "--cache",
            "/tmp/c.json",
            "--threads",
            "4",
            "--quick",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:9000");
        assert_eq!(parsed.cache.as_deref(), Some(Path::new("/tmp/c.json")));
        assert_eq!(parsed.threads, 4);
        assert!(parsed.quick);
        assert_eq!(parse_serve(&[]).unwrap().addr, DEFAULT_SERVICE_ADDR);

        for bad in [
            strings(&["--addr"]),
            strings(&["--threads", "many"]),
            strings(&["--port", "80"]),
        ] {
            assert!(
                matches!(parse_serve(&bad), Err(CliError::Usage(_))),
                "serve should reject {:?}",
                bad
            );
        }
    }

    #[test]
    fn submit_args_parse_and_reject() {
        let parsed = parse_submit(&strings(&[
            "--addr",
            "127.0.0.1:9000",
            "--kernels",
            "s000, s112",
            "--shutdown",
        ]))
        .unwrap();
        assert_eq!(parsed.addr, "127.0.0.1:9000");
        assert_eq!(parsed.kernels, Some(vec!["s000".into(), "s112".into()]));
        assert_eq!(parsed.generate, None);
        assert_eq!(parsed.gen_seed, 0xC0FFEE, "the synthetic LLM's seed");
        assert!(parsed.shutdown);

        let generated = parse_submit(&strings(&["--generate", "8", "--gen-seed", "42"])).unwrap();
        assert_eq!(generated.generate, Some(8));
        assert_eq!(generated.gen_seed, 42);

        for bad in [
            strings(&["--kernels"]),
            strings(&["--jobs", "x"]),
            strings(&["--generate", "0"]),
            strings(&["--generate", "many"]),
            strings(&["--gen-seed", "coffee"]),
        ] {
            assert!(
                matches!(parse_submit(&bad), Err(CliError::Usage(_))),
                "submit should reject {:?}",
                bad
            );
        }
    }

    #[test]
    fn run_args_parse_and_reject() {
        let parsed = parse_run(&strings(&[
            "--generate",
            "8",
            "--gen-seed",
            "7",
            "--gen-threads",
            "2",
            "--kernels",
            "s000",
            "--threads",
            "4",
            "--quick",
        ]))
        .unwrap();
        assert_eq!(parsed.generate, 8);
        assert_eq!(parsed.gen_seed, 7);
        assert_eq!(parsed.gen_threads, 2);
        assert_eq!(parsed.kernels, Some(vec!["s000".into()]));
        assert_eq!(parsed.threads, 4);
        assert!(parsed.quick);
        assert!(parsed.overlap, "overlap is the default");
        assert!(
            !parse_run(&strings(&["--generate", "1", "--no-overlap"]))
                .unwrap()
                .overlap
        );

        for bad in [
            strings(&[]),
            strings(&["--generate", "0"]),
            strings(&["--generate"]),
            strings(&["--generate", "some"]),
            strings(&["--gen-threads", "2"]),
            strings(&["--generate", "4", "--gen-seed", "latte"]),
            strings(&["--generate", "4", "--overlap"]),
        ] {
            assert!(
                matches!(parse_run(&bad), Err(CliError::Usage(_))),
                "run should reject {:?}",
                bad
            );
        }
    }

    #[test]
    fn reuse_flags_resolve_layers() {
        // No flag: blast memo alone — clause-identical, fingerprint-neutral.
        let default = resolve_reuse(None, false);
        assert!(default.memo);
        assert!(!default.incremental && !default.portfolio);
        assert!(!default.simplify.any());
        assert_eq!(reuse_tag(default), "memo");

        // `--reuse` / `--no-reuse` are the full-on / all-off overrides.
        assert_eq!(resolve_reuse(Some(true), false), EngineReuse::full());
        assert_eq!(reuse_tag(resolve_reuse(Some(true), false)), "full");
        assert_eq!(resolve_reuse(Some(false), false), EngineReuse::default());
        assert_eq!(reuse_tag(resolve_reuse(Some(false), false)), "off");

        // `--simplify` composes with any reuse spelling.
        let simplified = resolve_reuse(Some(false), true);
        assert_eq!(simplified.simplify, SimplifyConfig::full());
        assert!(!simplified.memo);

        // All three subcommands accept the flags.
        let coord = parse_coordinator(&strings(&["--reuse", "--simplify"])).unwrap();
        assert_eq!(coord.reuse, Some(true));
        assert!(coord.simplify);
        let coord = parse_coordinator(&strings(&["--no-reuse"])).unwrap();
        assert_eq!(coord.reuse, Some(false));
        let run = parse_run(&strings(&["--generate", "2", "--simplify", "--no-reuse"])).unwrap();
        assert_eq!(run.reuse, Some(false));
        assert!(run.simplify);
        let serve = parse_serve(&strings(&["--simplify", "--reuse"])).unwrap();
        assert_eq!(serve.reuse, Some(true));
        assert!(serve.simplify);
    }

    #[test]
    fn passk_points_are_powers_of_two_up_to_k() {
        assert_eq!(passk_points(1), vec![1]);
        assert_eq!(passk_points(8), vec![1, 2, 4, 8]);
        assert_eq!(passk_points(12), vec![1, 2, 4, 8, 12]);
        assert_eq!(passk_points(32), vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn status_args_parse_and_reject() {
        assert_eq!(
            parse_status(&strings(&["--addr", "host:1"])).unwrap(),
            "host:1"
        );
        assert_eq!(parse_status(&[]).unwrap(), DEFAULT_SERVICE_ADDR);
        assert!(matches!(
            parse_status(&strings(&["--addr"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            parse_status(&strings(&["extra"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn coordinator_args_parse_and_reject() {
        let parsed = parse_coordinator(&strings(&[
            "--shards",
            "3",
            "--steal",
            "--heartbeat-ms",
            "100",
            "--stall-timeout-secs",
            "30",
        ]))
        .unwrap();
        assert_eq!(parsed.shards, 3);
        assert!(parsed.steal);
        assert_eq!(parsed.heartbeat_ms, Some(100));
        assert_eq!(parsed.stall_timeout_secs, Some(30));
        assert_eq!(parsed.reuse, None, "memo-only default");
        assert!(!parsed.simplify);

        // Every malformed spelling is a typed usage error, never a panic.
        for bad in [
            strings(&["--shards", "few"]),
            strings(&["--shards"]),
            strings(&["--policy", "round-robin"]),
            strings(&["--flush-every", "0"]),
            strings(&["--heartbeat-ms", "0"]),
            strings(&["--heartbeat-ms", "soon"]),
            strings(&["--stall-timeout-secs", "-1"]),
            strings(&["--serve"]),
        ] {
            assert!(
                matches!(parse_coordinator(&bad), Err(CliError::Usage(_))),
                "coordinator should reject {:?}",
                bad
            );
        }
    }
}
