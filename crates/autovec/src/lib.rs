//! # lv-autovec — baseline compiler models and the CPU cost model
//!
//! The paper's performance evaluation (Figures 1(c) and 6) compares
//! LLM-vectorized code against GCC, Clang and ICC on real hardware. This
//! crate supplies the two substrates that substitution requires:
//!
//! * [`profiles`] — per-compiler auto-vectorization decision models and the
//!   exact flag sets from Table 1 ([`CompilerProfile`], [`Compiler`]);
//! * [`costmodel`] — a static cycle cost model used to simulate run times and
//!   compute speedups ([`estimate_cycles`], [`speedup_over`]).
//!
//! # Examples
//!
//! ```
//! use lv_autovec::{CompilerProfile, CostTable, speedup_over};
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let speedup = speedup_over(&CompilerProfile::gcc(), &scalar, &scalar, 32_000, &CostTable::default());
//! assert!(speedup < 1.0, "scalar code loses to auto-vectorized GCC output");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod costmodel;
pub mod profiles;

pub use costmodel::{
    compiler_cycles, estimate_cycles, llm_candidate_cycles, speedup_over, CostEstimate, CostTable,
};
pub use profiles::{Compiler, CompilerProfile};
