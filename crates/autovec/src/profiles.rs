//! Baseline compiler models: GCC-, Clang- and ICC-like auto-vectorizers.
//!
//! The paper compares LLM-vectorized code against three production compilers
//! (Table 1 lists the exact versions and flags). We cannot run those
//! compilers, but the evaluation only depends on two things per compiler and
//! kernel: *whether* it auto-vectorizes the loop, and how efficient the
//! resulting code is. Both are modelled here, driven by the dependence
//! analysis of `lv-analysis`, following the behaviour the paper reports:
//! ICC's precise dependence testing lets it vectorize more dependence-heavy
//! loops (and peel loops such as s291), while GCC and Clang disable
//! vectorization whenever a loop-carried dependence or an opaque subscript is
//! present; all three handle plain control flow by if-conversion and plain
//! reductions natively; none of them vectorizes goto-based control flow.

use lv_analysis::{DepKind, DependenceReport};
use serde::{Deserialize, Serialize};

/// Identifies one of the modelled baseline compilers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compiler {
    /// GCC 10.5.0 (`-O3 -mavx2`).
    Gcc,
    /// Clang 19.0.0 (`-O3 -mavx2 -fvectorize`).
    Clang,
    /// Intel ICC 2021.10.0 (`-O3 -xAVX2 -vec`).
    Icc,
}

impl Compiler {
    /// All modelled compilers, in the order used by the paper's figures.
    pub fn all() -> [Compiler; 3] {
        [Compiler::Gcc, Compiler::Clang, Compiler::Icc]
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Compiler::Gcc => "GCC",
            Compiler::Clang => "Clang",
            Compiler::Icc => "ICC",
        }
    }
}

/// A compiler's vectorization capabilities and efficiency knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilerProfile {
    /// Which compiler this profile models.
    pub compiler: Compiler,
    /// Version string (documentation only, from Table 1).
    pub version: &'static str,
    /// Flags used to build the *unvectorized* baseline (Table 1).
    pub flags_unvectorized: &'static str,
    /// Flags used to build the auto-vectorized version (Table 1).
    pub flags_vectorized: &'static str,
    /// Precise dependence testing (distance/direction based): lets the
    /// compiler vectorize loops whose only loop-carried dependences are
    /// forward-resolvable (e.g. s212's anti dependence).
    pub precise_dependence_analysis: bool,
    /// If-conversion of branches into masked/blended code.
    pub if_conversion: bool,
    /// Recognition of reduction idioms.
    pub reduction_support: bool,
    /// Loop peeling / alignment transformations (ICC's edge on s291/s292).
    pub loop_peeling: bool,
    /// Fraction of the ideal 8-lane speedup the generated code achieves.
    pub vector_efficiency: f64,
    /// Scalar-code quality factor (ICC's scalar code is slightly faster).
    pub scalar_efficiency: f64,
}

impl CompilerProfile {
    /// The GCC 10.5 model.
    pub fn gcc() -> CompilerProfile {
        CompilerProfile {
            compiler: Compiler::Gcc,
            version: "10.5.0",
            flags_unvectorized: "-O3 -mavx2 -lm -W",
            flags_vectorized:
                "-O3 -mavx2 -lm -ftree-vectorizer-verbose=3 -ftree-vectorize -fopt-info-vec-optimized",
            precise_dependence_analysis: false,
            if_conversion: true,
            reduction_support: true,
            loop_peeling: false,
            vector_efficiency: 0.80,
            scalar_efficiency: 0.95,
        }
    }

    /// The Clang 19 model.
    pub fn clang() -> CompilerProfile {
        CompilerProfile {
            compiler: Compiler::Clang,
            version: "19.0.0",
            flags_unvectorized: "-O3 -mavx2 -lm -fno-tree-vectorize",
            flags_vectorized:
                "-O3 -mavx2 -fstrict-aliasing -fvectorize -fslp-vectorize-aggressive -Rpass-analysis=loop-vectorize -lm",
            precise_dependence_analysis: false,
            if_conversion: true,
            reduction_support: true,
            loop_peeling: false,
            vector_efficiency: 0.85,
            scalar_efficiency: 1.0,
        }
    }

    /// The ICC 2021.10 model.
    pub fn icc() -> CompilerProfile {
        CompilerProfile {
            compiler: Compiler::Icc,
            version: "2021.10.0",
            flags_unvectorized: "-restrict -std=c99 -O3 -ip -no-vec",
            flags_vectorized: "-restrict -std=c99 -O3 -ip -vec -xAVX2",
            precise_dependence_analysis: true,
            if_conversion: true,
            reduction_support: true,
            loop_peeling: true,
            vector_efficiency: 0.95,
            scalar_efficiency: 1.05,
        }
    }

    /// Profile for a given compiler id.
    pub fn of(compiler: Compiler) -> CompilerProfile {
        match compiler {
            Compiler::Gcc => CompilerProfile::gcc(),
            Compiler::Clang => CompilerProfile::clang(),
            Compiler::Icc => CompilerProfile::icc(),
        }
    }

    /// Decides whether this compiler auto-vectorizes a loop with the given
    /// dependence report. This is the legality *and* profitability decision
    /// rolled into one, mirroring the behaviour described in Section 4.3.
    pub fn vectorizes(&self, report: &DependenceReport) -> bool {
        if !report.loop_found || report.conservative {
            return false;
        }
        // goto-based control flow defeats every baseline (test s278).
        if report.has_goto {
            return false;
        }
        // Plain control flow needs if-conversion.
        if report.has_control_flow && !self.if_conversion {
            return false;
        }
        // Opaque subscripts (a[j] with j data-dependent) defeat everyone.
        if !report.opaque_arrays.is_empty() {
            return false;
        }
        // Scalar recurrences other than recognized reductions stop
        // vectorization; reductions are fine when supported.
        if !report.recurrences.is_empty() {
            // ICC's peeling handles the `im1 = i` wrap-around idiom (s291).
            let only_wraparound = report.recurrences.len() == 1 && !report.has_control_flow;
            if !(self.loop_peeling && only_wraparound) {
                return false;
            }
        }
        if !report.reductions.is_empty() && !self.reduction_support {
            return false;
        }
        // Array dependences.
        for dep in report.loop_carried() {
            match dep.kind {
                DepKind::Unknown => return false,
                DepKind::Flow => {
                    // A genuine value recurrence across iterations: nobody
                    // vectorizes this at width 8 when the distance is small.
                    if dep.distance.map(|d| d.abs() < 8).unwrap_or(true) {
                        return false;
                    }
                }
                DepKind::Anti | DepKind::Output => {
                    // Resolvable by ordering loads before stores, but only a
                    // precise dependence analysis concludes that safely.
                    if !self.precise_dependence_analysis {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_analysis::analyze_function;
    use lv_cir::parse_function;

    fn report(src: &str) -> DependenceReport {
        analyze_function(&parse_function(src).unwrap())
    }

    #[test]
    fn everyone_vectorizes_simple_loops() {
        let r = report(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        );
        for c in Compiler::all() {
            assert!(CompilerProfile::of(c).vectorizes(&r), "{:?}", c);
        }
    }

    #[test]
    fn only_icc_vectorizes_s212() {
        let r = report(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
        assert!(!CompilerProfile::gcc().vectorizes(&r));
        assert!(!CompilerProfile::clang().vectorizes(&r));
        assert!(CompilerProfile::icc().vectorizes(&r));
    }

    #[test]
    fn nobody_vectorizes_goto_control_flow() {
        let r = report(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
        );
        for c in Compiler::all() {
            assert!(!CompilerProfile::of(c).vectorizes(&r), "{:?}", c);
        }
    }

    #[test]
    fn everyone_vectorizes_reductions_and_if_conversion() {
        let r = report(
            "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
        );
        for c in Compiler::all() {
            assert!(CompilerProfile::of(c).vectorizes(&r), "{:?}", c);
        }
        let r = report(
            "void s2711(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) { if (b[i] != 0) { a[i] += b[i] * c[i]; } } }",
        );
        for c in Compiler::all() {
            assert!(CompilerProfile::of(c).vectorizes(&r), "{:?}", c);
        }
    }

    #[test]
    fn only_icc_peels_the_s291_recurrence() {
        let r = report(
            "void s291(int n, int *a, int *b) { int im1; im1 = n - 1; for (int i = 0; i < n; i++) { a[i] = (b[i] + b[im1]) * 2; im1 = i; } }",
        );
        assert!(!CompilerProfile::gcc().vectorizes(&r));
        assert!(!CompilerProfile::clang().vectorizes(&r));
        assert!(CompilerProfile::icc().vectorizes(&r));
    }

    #[test]
    fn nobody_vectorizes_opaque_subscripts() {
        let r = report(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        );
        for c in Compiler::all() {
            assert!(!CompilerProfile::of(c).vectorizes(&r), "{:?}", c);
        }
    }

    #[test]
    fn flags_match_table_1() {
        assert!(CompilerProfile::icc().flags_vectorized.contains("-xAVX2"));
        assert!(CompilerProfile::gcc()
            .flags_vectorized
            .contains("-ftree-vectorize"));
        assert!(CompilerProfile::clang()
            .flags_unvectorized
            .contains("-fno-tree-vectorize"));
        assert_eq!(Compiler::Gcc.name(), "GCC");
    }
}
