//! A simple CPU cost model used to simulate run times.
//!
//! The paper measures wall-clock speedups on an Intel i7-8650U. This
//! reproduction replaces the silicon with a static cost model in the style of
//! LLVM's TTI: each operation in the loop body has a cycle cost, vector
//! intrinsics process eight lanes at once, branches carry a misprediction
//! penalty when they are data-dependent, and the loop overhead is charged per
//! iteration. Only *relative* numbers (speedup shapes) are meaningful.

use crate::profiles::CompilerProfile;
use lv_analysis::{analyze_function, loop_nest, DependenceReport};
use lv_cir::ast::{BinOp, Block, Expr, Function, Stmt};
use lv_cir::visit::{for_each_expr_in_block, for_each_stmt_in_block};
use serde::{Deserialize, Serialize};

/// Per-operation costs in cycles (throughput-oriented, Skylake-ish).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostTable {
    /// Scalar load.
    pub load: f64,
    /// Scalar store.
    pub store: f64,
    /// Scalar add/sub/logic.
    pub alu: f64,
    /// Scalar multiply.
    pub mul: f64,
    /// Scalar divide/remainder.
    pub div: f64,
    /// Data-dependent branch (misprediction amortized).
    pub branch: f64,
    /// goto/label overhead.
    pub goto_penalty: f64,
    /// 256-bit vector load/store.
    pub vec_mem: f64,
    /// 256-bit vector ALU op.
    pub vec_alu: f64,
    /// 256-bit vector multiply.
    pub vec_mul: f64,
    /// Vector blend/compare/shuffle.
    pub vec_blend: f64,
    /// Loop control overhead per iteration (increment + compare + branch).
    pub loop_overhead: f64,
    /// Fixed per-call overhead.
    pub call_overhead: f64,
}

impl Default for CostTable {
    fn default() -> Self {
        CostTable {
            load: 0.7,
            store: 1.0,
            alu: 0.5,
            mul: 1.0,
            div: 20.0,
            branch: 2.5,
            goto_penalty: 3.0,
            vec_mem: 1.2,
            vec_alu: 0.6,
            vec_mul: 1.2,
            vec_blend: 0.8,
            loop_overhead: 1.5,
            call_overhead: 5.0,
        }
    }
}

/// The estimated cost of executing a kernel once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Total simulated cycles.
    pub cycles: f64,
    /// Number of loop iterations accounted for.
    pub iterations: u64,
}

/// Estimates the simulated cycle count of running `func` with the loop bound
/// set to `n`. Works uniformly for scalar kernels and AVX2-intrinsic kernels:
/// intrinsic calls are priced as vector operations covering eight elements.
pub fn estimate_cycles(func: &Function, n: u64, costs: &CostTable) -> CostEstimate {
    let nest = loop_nest(func);
    let mut total = costs.call_overhead;
    let mut total_iterations = 0u64;

    if nest.loops.is_empty() {
        total += block_cost(&func.body, costs);
        return CostEstimate {
            cycles: total,
            iterations: 0,
        };
    }

    for (idx, l) in nest.loops.iter().enumerate() {
        let trip = trip_count(l, n);
        // Nested: inner loops multiply.
        let inner_trips: u64 = nest.inner[idx]
            .iter()
            .map(|inner| trip_count(inner, n).max(1))
            .product::<u64>()
            .max(1);
        let per_iter = block_cost(&l.body, costs) + costs.loop_overhead;
        total += per_iter * (trip * inner_trips) as f64;
        total_iterations += trip * inner_trips;
    }
    // Statements outside loops.
    let outside: f64 = func
        .body
        .stmts
        .iter()
        .filter(|s| !s.is_loop())
        .map(|s| stmt_cost(s, costs))
        .sum();
    total += outside;
    CostEstimate {
        cycles: total,
        iterations: total_iterations,
    }
}

fn trip_count(l: &lv_analysis::CanonicalLoop, n: u64) -> u64 {
    let step = l.step_or_one().unsigned_abs().max(1);
    // An epilogue loop (`for (; i < n; i++)`) resumes from wherever the main
    // loop left the induction variable; on average it covers less than one
    // vector chunk, which is negligible at the problem sizes the paper uses.
    if matches!(l.start, Expr::Var(_)) {
        return 0;
    }
    // Evaluate the bound with every symbolic variable set to n.
    let bound = eval_with_n(&l.bound, n as i64).unwrap_or(n as i64);
    let start = eval_with_n(&l.start, 0).unwrap_or(0);
    let span = (bound - start).max(0) as u64;
    match l.cond_op {
        BinOp::Le | BinOp::Ge => span / step + 1,
        _ => span.div_ceil(step),
    }
}

fn eval_with_n(expr: &Expr, n: i64) -> Option<i64> {
    match expr {
        Expr::IntLit(v) => Some(*v),
        Expr::Var(_) => Some(n),
        Expr::Unary {
            op: lv_cir::UnOp::Neg,
            expr,
        } => Some(-eval_with_n(expr, n)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_with_n(lhs, n)?;
            let r = eval_with_n(rhs, n)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div => (r != 0).then(|| l / r),
                BinOp::Rem => (r != 0).then(|| l % r),
                _ => None,
            }
        }
        _ => None,
    }
}

fn block_cost(block: &Block, costs: &CostTable) -> f64 {
    let mut cost = 0.0;
    // Branch/goto structure.
    for_each_stmt_in_block(block, &mut |stmt| match stmt {
        Stmt::If { .. } => cost += costs.branch,
        Stmt::Goto(_) => cost += costs.goto_penalty,
        Stmt::For { .. } | Stmt::While { .. } => {} // handled by the caller via trip counts
        _ => {}
    });
    // Expression operations.
    for_each_expr_in_block(block, &mut |expr| cost += expr_cost(expr, costs));
    cost
}

fn stmt_cost(stmt: &Stmt, costs: &CostTable) -> f64 {
    let block = Block::from_stmts(vec![stmt.clone()]);
    block_cost(&block, costs)
}

fn expr_cost(expr: &Expr, costs: &CostTable) -> f64 {
    match expr {
        Expr::Index { .. } => costs.load,
        Expr::Assign { target, .. } => match target.as_ref() {
            // The Index node below will also be visited and counted as a
            // load; compensate so a store is priced as a store.
            Expr::Index { .. } => costs.store - costs.load,
            _ => costs.alu,
        },
        Expr::Binary { op, .. } => match op {
            BinOp::Mul => costs.mul,
            BinOp::Div | BinOp::Rem => costs.div,
            _ => costs.alu,
        },
        Expr::Unary { .. } => costs.alu,
        Expr::Ternary { .. } => costs.branch,
        Expr::Call { callee, .. } => intrinsic_cost(callee, costs),
        _ => 0.0,
    }
}

fn intrinsic_cost(callee: &str, costs: &CostTable) -> f64 {
    match callee {
        // The `&a[i]` address operand is visited separately and priced as a
        // scalar load; subtract it here so one vector memory access costs
        // exactly `vec_mem` overall.
        "_mm256_loadu_si256"
        | "_mm256_storeu_si256"
        | "_mm256_maskload_epi32"
        | "_mm256_maskstore_epi32" => (costs.vec_mem - costs.load).max(0.0),
        "_mm256_mullo_epi32" => costs.vec_mul,
        "_mm256_blendv_epi8"
        | "_mm256_cmpgt_epi32"
        | "_mm256_cmpeq_epi32"
        | "_mm256_shuffle_epi32"
        | "_mm256_permute2x128_si256"
        | "_mm256_permutevar8x32_epi32"
        | "_mm256_hadd_epi32" => costs.vec_blend,
        "_mm256_set1_epi32" | "_mm256_setr_epi32" | "_mm256_set_epi32" | "_mm256_setzero_si256" => {
            costs.vec_alu
        }
        name if name.starts_with("_mm256_") => costs.vec_alu,
        _ => costs.call_overhead,
    }
}

/// Simulated run time of the *baseline compiler's* best code for a scalar
/// kernel: scalar code when the profile declines to vectorize, an 8-lane
/// vectorized estimate otherwise.
pub fn compiler_cycles(
    profile: &CompilerProfile,
    scalar: &Function,
    report: &DependenceReport,
    n: u64,
    costs: &CostTable,
) -> f64 {
    let scalar_estimate = estimate_cycles(scalar, n, costs);
    if profile.vectorizes(report) {
        // The compiler strip-mines by 8: data-parallel work shrinks 8x scaled
        // by the profile's efficiency; loop overhead shrinks 8x too; a small
        // constant models prologue/epilogue and alignment checks.
        let ideal = scalar_estimate.cycles / 8.0;
        ideal / profile.vector_efficiency + 40.0
    } else {
        scalar_estimate.cycles / profile.scalar_efficiency
    }
}

/// Simulated run time of the LLM-generated vectorized candidate, which the
/// paper compiles with plain Clang (`-O3`, no auto-vectorization).
pub fn llm_candidate_cycles(candidate: &Function, n: u64, costs: &CostTable) -> f64 {
    estimate_cycles(candidate, n, costs).cycles
}

/// The speedup of the LLM candidate over one baseline compiler, as plotted in
/// Figures 1(c) and 6.
pub fn speedup_over(
    profile: &CompilerProfile,
    scalar: &Function,
    candidate: &Function,
    n: u64,
    costs: &CostTable,
) -> f64 {
    let report = analyze_function(scalar);
    let baseline = compiler_cycles(profile, scalar, &report, n, costs);
    let llm = llm_candidate_cycles(candidate, n, costs);
    baseline / llm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{Compiler, CompilerProfile};
    use lv_cir::parse_function;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S000_VEC: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";
    const S212: &str = "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";
    const S212_VEC: &str = "void s212(int n, int *a, int *b, int *c, int *d) { int i; for (i = 0; i + 8 <= n - 1; i += 8) { __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]); __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]); __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]); __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]); __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]); __m256i prod = _mm256_mullo_epi32(a_vec, c_vec); _mm256_storeu_si256((__m256i *)&a[i], prod); __m256i prod2 = _mm256_mullo_epi32(a_next, d_vec); _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod2)); } for (; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";

    fn f(src: &str) -> Function {
        parse_function(src).unwrap()
    }

    #[test]
    fn scalar_cost_scales_with_n() {
        let costs = CostTable::default();
        let small = estimate_cycles(&f(S000), 1_000, &costs);
        let large = estimate_cycles(&f(S000), 10_000, &costs);
        assert!(large.cycles > 9.0 * small.cycles);
        assert_eq!(small.iterations, 1_000);
    }

    #[test]
    fn vector_code_is_faster_than_scalar() {
        let costs = CostTable::default();
        let scalar = estimate_cycles(&f(S000), 32_000, &costs);
        let vector = estimate_cycles(&f(S000_VEC), 32_000, &costs);
        let ratio = scalar.cycles / vector.cycles;
        assert!(
            (3.0..12.0).contains(&ratio),
            "expected a plausible vector speedup, got {:.2}",
            ratio
        );
    }

    #[test]
    fn s212_speedups_match_figure_1_shape() {
        // Figure 1(c): the LLM candidate beats GCC and Clang by large factors
        // (7-8x) because they do not vectorize at all, and beats ICC by a
        // smaller factor (~2x).
        let costs = CostTable::default();
        let scalar = f(S212);
        let candidate = f(S212_VEC);
        let gcc = speedup_over(&CompilerProfile::gcc(), &scalar, &candidate, 32_000, &costs);
        let clang = speedup_over(
            &CompilerProfile::clang(),
            &scalar,
            &candidate,
            32_000,
            &costs,
        );
        let icc = speedup_over(&CompilerProfile::icc(), &scalar, &candidate, 32_000, &costs);
        assert!(gcc > 3.0, "GCC speedup {:.2}", gcc);
        assert!(clang > 3.0, "Clang speedup {:.2}", clang);
        assert!(
            icc < gcc && icc < clang,
            "ICC {:.2} vs {:.2}/{:.2}",
            icc,
            gcc,
            clang
        );
        assert!(icc > 0.5 && icc < 3.5, "ICC speedup {:.2}", icc);
    }

    #[test]
    fn naive_kernels_show_no_big_win() {
        // Where every compiler vectorizes, the LLM candidate is roughly on
        // par (speedup near 1).
        let costs = CostTable::default();
        for c in Compiler::all() {
            let s = speedup_over(
                &CompilerProfile::of(c),
                &f(S000),
                &f(S000_VEC),
                32_000,
                &costs,
            );
            assert!((0.4..2.5).contains(&s), "{:?} speedup {:.2}", c, s);
        }
    }

    #[test]
    fn division_dominates_when_present() {
        let costs = CostTable::default();
        let with_div = estimate_cycles(
            &f("void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] / 3; } }"),
            1_000,
            &costs,
        );
        let without = estimate_cycles(&f(S000), 1_000, &costs);
        assert!(with_div.cycles > 2.0 * without.cycles);
    }

    #[test]
    fn nested_loops_multiply_iterations() {
        let costs = CostTable::default();
        let nested = estimate_cycles(
            &f("void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i < n; i++) { a[i] = a[i] + 1; } } }"),
            100,
            &costs,
        );
        assert!(nested.iterations >= 100 * 100);
    }

    #[test]
    fn straight_line_code_has_fixed_cost() {
        let costs = CostTable::default();
        let est = estimate_cycles(&f("void f(int n, int *a) { a[0] = n; }"), 1_000_000, &costs);
        assert!(est.cycles < 50.0);
        assert_eq!(est.iterations, 0);
    }
}
