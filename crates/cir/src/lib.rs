//! # lv-cir — mini-C front end for the LLM-Vectorizer reproduction
//!
//! This crate implements the small C subset that the LLM-Vectorizer pipeline
//! operates on: the scalar TSVC kernels that go *into* the vectorizer and the
//! AVX2-intrinsic candidates that come *out* of it.
//!
//! The crate provides:
//!
//! * an [`ast`] module with a span-free, structurally comparable AST;
//! * a [`lexer`] and recursive-descent [`parser`] ([`parse_program`],
//!   [`parse_function`], [`parse_expr`]);
//! * a [`printer`] that renders the AST back to C source
//!   ([`print_function`], [`print_program`]);
//! * a [`typecheck`] pass that plays the role of "does the candidate
//!   compile" in the pipeline ([`type_check`], [`compiles`]);
//! * an [`intrinsics`] signature table for the supported AVX2 intrinsics;
//! * [`visit`] traversal/rewriting helpers and [`builder`] construction
//!   helpers used by the other crates;
//! * a [`hash`] module computing the alpha-renaming-insensitive
//!   [`structural_hash`] that keys the engine's persistent verdict cache.
//!
//! # Examples
//!
//! ```
//! use lv_cir::{parse_function, print_function, type_check};
//!
//! let func = parse_function(
//!     "void s000(int n, int *a, int *b) {
//!          for (int i = 0; i < n; i++) { a[i] = b[i] + 1; }
//!      }",
//! )?;
//! let info = type_check(&func)?;
//! assert_eq!(info.var_type("a"), Some(&lv_cir::Type::int_ptr()));
//! assert!(print_function(&func).contains("b[i] + 1"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod builder;
pub mod error;
pub mod hash;
pub mod intrinsics;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod typecheck;
pub mod visit;

pub use ast::{AssignOp, BinOp, Block, Expr, Function, Param, Program, Stmt, Type, UnOp};
pub use error::{ParseError, Pos, TypeError};
pub use hash::{structural_hash, Fnv64};
pub use intrinsics::{intrinsic_sig, is_intrinsic, IntrinsicSig, IntrinsicType, VECTOR_WIDTH};
pub use parser::{parse_expr, parse_function, parse_program};
pub use printer::{print_expr, print_function, print_program, print_stmt};
pub use typecheck::{compiles, type_check, TypeInfo};
