//! Abstract syntax tree for the mini-C subset used throughout the
//! LLM-Vectorizer reproduction.
//!
//! The subset is exactly what the TSVC kernels and their AVX2-vectorized
//! counterparts need: `void` functions over `int` scalars and `int *` arrays,
//! `for` loops, `if`/`else`, `goto`/labels, compound assignment, array
//! indexing, `__m256i` locals and calls to AVX2 intrinsics.
//!
//! The AST is deliberately free of source spans so that structural equality
//! (`PartialEq`) can be used directly for the "outer loops are syntactically
//! identical" check from Section 3.1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A type in the mini-C language.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// The `void` type (only valid as a return type).
    Void,
    /// A 32-bit signed integer, C `int`.
    Int,
    /// A 256-bit AVX2 vector of eight 32-bit integers, C `__m256i`.
    M256i,
    /// A pointer to another type, e.g. `int *` or `__m256i *`.
    Ptr(Box<Type>),
}

impl Type {
    /// Pointer to `int`, the type of every array parameter in TSVC.
    pub fn int_ptr() -> Type {
        Type::Ptr(Box::new(Type::Int))
    }

    /// Pointer to `__m256i`, used in intrinsic load/store casts.
    pub fn m256i_ptr() -> Type {
        Type::Ptr(Box::new(Type::M256i))
    }

    /// Returns `true` if this is any pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// Returns the pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Returns `true` for types that can appear in arithmetic expressions.
    pub fn is_scalar_arith(&self) -> bool {
        matches!(self, Type::Int)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::M256i => write!(f, "__m256i"),
            Type::Ptr(inner) => write!(f, "{} *", inner),
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
    /// Bitwise complement `~e`.
    BitNot,
}

impl UnOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// A binary operator.
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Logical and `&&` (short-circuit).
    And,
    /// Logical or `||` (short-circuit).
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        }
    }

    /// Returns `true` if the operator is a comparison producing a boolean int.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Returns `true` if the operator short-circuits (`&&` / `||`).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An assignment operator (`=`, `+=`, ...).
#[allow(missing_docs)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
    RemAssign,
    AndAssign,
    OrAssign,
    XorAssign,
    ShlAssign,
    ShrAssign,
}

impl AssignOp {
    /// The C spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
            AssignOp::RemAssign => "%=",
            AssignOp::AndAssign => "&=",
            AssignOp::OrAssign => "|=",
            AssignOp::XorAssign => "^=",
            AssignOp::ShlAssign => "<<=",
            AssignOp::ShrAssign => ">>=",
        }
    }

    /// The underlying binary operator for a compound assignment, or `None`
    /// for a plain `=` assignment.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
            AssignOp::RemAssign => Some(BinOp::Rem),
            AssignOp::AndAssign => Some(BinOp::BitAnd),
            AssignOp::OrAssign => Some(BinOp::BitOr),
            AssignOp::XorAssign => Some(BinOp::BitXor),
            AssignOp::ShlAssign => Some(BinOp::Shl),
            AssignOp::ShrAssign => Some(BinOp::Shr),
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An integer literal, e.g. `42` or `-1` after constant folding.
    IntLit(i64),
    /// A variable reference.
    Var(String),
    /// Array indexing `base[index]`.
    Index {
        /// The array expression (usually a variable of pointer type).
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// An assignment used as an expression (the value is the stored value).
    Assign {
        /// `=`, `+=`, ...
        op: AssignOp,
        /// The assignment target (variable or array element).
        target: Box<Expr>,
        /// The value being assigned.
        value: Box<Expr>,
    },
    /// A function / intrinsic call, e.g. `_mm256_add_epi32(a, b)`.
    Call {
        /// The callee name.
        callee: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A C cast `(ty) expr`, used for `(__m256i *) &a[i]`.
    Cast {
        /// The destination type.
        ty: Type,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Address-of `&expr` where `expr` is a variable or array element.
    AddrOf(Box<Expr>),
    /// The conditional operator `cond ? then_expr : else_expr`.
    Ternary {
        /// The condition.
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_expr: Box<Expr>,
        /// Value when the condition is zero.
        else_expr: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for an integer literal.
    pub fn lit(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Convenience constructor for `base[index]`.
    pub fn index(base: Expr, index: Expr) -> Expr {
        Expr::Index {
            base: Box::new(base),
            index: Box::new(index),
        }
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Convenience constructor for a unary operation.
    pub fn un(op: UnOp, expr: Expr) -> Expr {
        Expr::Unary {
            op,
            expr: Box::new(expr),
        }
    }

    /// Convenience constructor for an assignment expression.
    pub fn assign(op: AssignOp, target: Expr, value: Expr) -> Expr {
        Expr::Assign {
            op,
            target: Box::new(target),
            value: Box::new(value),
        }
    }

    /// Convenience constructor for a call expression.
    pub fn call(callee: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: callee.into(),
            args,
        }
    }

    /// Returns the variable name if this expression is a plain variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Expr::Var(name) => Some(name),
            _ => None,
        }
    }

    /// Returns `Some(value)` if this expression is an integer literal.
    pub fn as_int_lit(&self) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns `(array name, index expression)` if this is `name[index]`.
    pub fn as_array_access(&self) -> Option<(&str, &Expr)> {
        match self {
            Expr::Index { base, index } => base.as_var().map(|name| (name, index.as_ref())),
            _ => None,
        }
    }

    /// Returns `true` if the expression contains no calls and no assignments.
    pub fn is_pure(&self) -> bool {
        match self {
            Expr::IntLit(_) | Expr::Var(_) => true,
            Expr::Index { base, index } => base.is_pure() && index.is_pure(),
            Expr::Unary { expr, .. } => expr.is_pure(),
            Expr::Binary { lhs, rhs, .. } => lhs.is_pure() && rhs.is_pure(),
            Expr::Assign { .. } | Expr::Call { .. } => false,
            Expr::Cast { expr, .. } => expr.is_pure(),
            Expr::AddrOf(expr) => expr.is_pure(),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => cond.is_pure() && then_expr.is_pure() && else_expr.is_pure(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Stmt {
    /// A local declaration `ty name = init;`. Multiple declarators in a single
    /// C declaration are split into consecutive `Decl` statements by the
    /// parser.
    Decl {
        /// The declared type.
        ty: Type,
        /// The declared name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// An expression statement (assignments, calls).
    Expr(Expr),
    /// An `if` statement with optional `else`.
    If {
        /// The branch condition.
        cond: Expr,
        /// The `then` block.
        then_branch: Block,
        /// The optional `else` block.
        else_branch: Option<Block>,
    },
    /// A C `for` loop. All three header slots are optional, as in C.
    For {
        /// Loop initialization (a declaration or an expression statement).
        init: Option<Box<Stmt>>,
        /// Loop condition; `None` means an infinite loop.
        cond: Option<Expr>,
        /// Loop step expression.
        step: Option<Expr>,
        /// The loop body.
        body: Block,
    },
    /// A `while` loop.
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Block,
    },
    /// `return expr;` or bare `return;`.
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `goto label;`
    Goto(String),
    /// A statement label `label:`. Stored as a standalone statement that
    /// marks the position the corresponding `goto` jumps to.
    Label(String),
    /// A nested block `{ ... }`.
    Block(Block),
    /// The empty statement `;`.
    Empty,
}

impl Stmt {
    /// Returns `true` if the statement is (or contains at the top level) a loop.
    pub fn is_loop(&self) -> bool {
        matches!(self, Stmt::For { .. } | Stmt::While { .. })
    }
}

/// A brace-delimited sequence of statements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates an empty block.
    pub fn new() -> Block {
        Block { stmts: Vec::new() }
    }

    /// Creates a block from statements.
    pub fn from_stmts(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }

    /// Returns `true` if the block has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Number of statements in the block (non-recursive).
    pub fn len(&self) -> usize {
        self.stmts.len()
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Param {
    /// The parameter type.
    pub ty: Type,
    /// The parameter name.
    pub name: String,
}

impl Param {
    /// Creates a new parameter.
    pub fn new(name: impl Into<String>, ty: Type) -> Param {
        Param {
            name: name.into(),
            ty,
        }
    }

    /// Shorthand for an `int` parameter.
    pub fn int(name: impl Into<String>) -> Param {
        Param::new(name, Type::Int)
    }

    /// Shorthand for an `int *` parameter.
    pub fn int_ptr(name: impl Into<String>) -> Param {
        Param::new(name, Type::int_ptr())
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Function {
    /// The function name.
    pub name: String,
    /// The return type (always `void` for TSVC kernels).
    pub ret: Type,
    /// The parameters in order.
    pub params: Vec<Param>,
    /// The function body.
    pub body: Block,
}

impl Function {
    /// Creates a new function definition.
    pub fn new(name: impl Into<String>, ret: Type, params: Vec<Param>, body: Block) -> Function {
        Function {
            name: name.into(),
            ret,
            params,
            body,
        }
    }

    /// Returns the parameter with the given name, if any.
    pub fn param(&self, name: &str) -> Option<&Param> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Names of all pointer-typed (array) parameters.
    pub fn array_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| p.ty.is_ptr())
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Names of all scalar `int` parameters.
    pub fn scalar_params(&self) -> Vec<&str> {
        self.params
            .iter()
            .filter(|p| p.ty == Type::Int)
            .map(|p| p.name.as_str())
            .collect()
    }

    /// Returns the top-level `for` loops of the body, in order.
    pub fn top_level_loops(&self) -> Vec<&Stmt> {
        self.body.stmts.iter().filter(|s| s.is_loop()).collect()
    }
}

/// A translation unit: a list of function definitions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// The functions in definition order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Program {
        Program {
            functions: Vec::new(),
        }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Returns the sole function of a single-function translation unit.
    pub fn single(&self) -> Option<&Function> {
        if self.functions.len() == 1 {
            self.functions.first()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_roundtrip() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::int_ptr().to_string(), "int *");
        assert_eq!(Type::M256i.to_string(), "__m256i");
        assert_eq!(Type::m256i_ptr().to_string(), "__m256i *");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn type_predicates() {
        assert!(Type::int_ptr().is_ptr());
        assert!(!Type::Int.is_ptr());
        assert_eq!(Type::int_ptr().pointee(), Some(&Type::Int));
        assert!(Type::Int.is_scalar_arith());
        assert!(!Type::M256i.is_scalar_arith());
    }

    #[test]
    fn assign_op_binop_mapping() {
        assert_eq!(AssignOp::Assign.binop(), None);
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::MulAssign.binop(), Some(BinOp::Mul));
        assert_eq!(AssignOp::ShrAssign.binop(), Some(BinOp::Shr));
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::BitAnd.is_logical());
    }

    #[test]
    fn expr_helpers() {
        let e = Expr::index(Expr::var("a"), Expr::var("i"));
        assert_eq!(e.as_array_access().map(|(n, _)| n), Some("a"));
        assert!(e.is_pure());
        let call = Expr::call("_mm256_set1_epi32", vec![Expr::lit(1)]);
        assert!(!call.is_pure());
        assert_eq!(Expr::lit(7).as_int_lit(), Some(7));
        assert_eq!(Expr::var("x").as_var(), Some("x"));
    }

    #[test]
    fn function_param_queries() {
        let f = Function::new(
            "s000",
            Type::Void,
            vec![Param::int("n"), Param::int_ptr("a"), Param::int_ptr("b")],
            Block::new(),
        );
        assert_eq!(f.array_params(), vec!["a", "b"]);
        assert_eq!(f.scalar_params(), vec!["n"]);
        assert!(f.param("a").is_some());
        assert!(f.param("zz").is_none());
    }

    #[test]
    fn block_from_iterator() {
        let b: Block = vec![Stmt::Empty, Stmt::Break].into_iter().collect();
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn structural_equality_ignores_nothing() {
        let a = Expr::bin(BinOp::Add, Expr::var("x"), Expr::lit(1));
        let b = Expr::bin(BinOp::Add, Expr::var("x"), Expr::lit(1));
        assert_eq!(a, b);
        let c = Expr::bin(BinOp::Add, Expr::var("x"), Expr::lit(2));
        assert_ne!(a, c);
    }
}
