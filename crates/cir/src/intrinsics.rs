//! Signature table for the AVX2 intrinsics supported by the pipeline.
//!
//! The *semantics* of each intrinsic live in the `lv-simd` crate; this module
//! only records type signatures so that the type checker, the dependence
//! analysis and the translation validator can reason about intrinsic calls
//! without depending on the executable model.

use crate::ast::Type;
use serde::{Deserialize, Serialize};

/// The argument / result types an intrinsic can mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntrinsicType {
    /// A scalar `int`.
    I32,
    /// A 256-bit vector of eight `i32` lanes (`__m256i`).
    Vec,
    /// A pointer used as a vector memory operand (`__m256i *` or `int *`).
    VecPtr,
    /// A pointer to `int` used by masked loads/stores.
    IntPtr,
    /// No value (`void`), only for stores.
    Void,
}

impl IntrinsicType {
    /// Whether an argument of mini-C type `ty` is acceptable for this slot.
    pub fn accepts(self, ty: &Type) -> bool {
        match self {
            IntrinsicType::I32 => *ty == Type::Int,
            IntrinsicType::Vec => *ty == Type::M256i,
            // Vector memory operands are written either as `(__m256i *)&a[i]`
            // or directly as `(__m256i *)(a + i)`, and some code passes the
            // `int *` through unchanged; accept any pointer.
            IntrinsicType::VecPtr | IntrinsicType::IntPtr => ty.is_ptr(),
            IntrinsicType::Void => false,
        }
    }

    /// The mini-C result type for this intrinsic type.
    pub fn result_type(self) -> Type {
        match self {
            IntrinsicType::I32 => Type::Int,
            IntrinsicType::Vec => Type::M256i,
            IntrinsicType::VecPtr => Type::m256i_ptr(),
            IntrinsicType::IntPtr => Type::int_ptr(),
            IntrinsicType::Void => Type::Void,
        }
    }
}

/// The signature of a supported intrinsic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntrinsicSig {
    /// The C name, e.g. `_mm256_add_epi32`.
    pub name: &'static str,
    /// Parameter types in order.
    pub params: &'static [IntrinsicType],
    /// Result type.
    pub ret: IntrinsicType,
    /// Whether the intrinsic reads memory.
    pub reads_memory: bool,
    /// Whether the intrinsic writes memory.
    pub writes_memory: bool,
}

use IntrinsicType::{IntPtr, Vec as V, VecPtr, Void, I32};

/// All supported intrinsics. The set covers every intrinsic appearing in the
/// paper's listings (Figures 1 and 4, the s453 walk-through) plus the ones the
/// synthetic vectorizer emits for reductions and shuffles.
pub const INTRINSICS: &[IntrinsicSig] = &[
    IntrinsicSig {
        name: "_mm256_loadu_si256",
        params: &[VecPtr],
        ret: V,
        reads_memory: true,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_storeu_si256",
        params: &[VecPtr, V],
        ret: Void,
        reads_memory: false,
        writes_memory: true,
    },
    IntrinsicSig {
        name: "_mm256_maskload_epi32",
        params: &[IntPtr, V],
        ret: V,
        reads_memory: true,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_maskstore_epi32",
        params: &[IntPtr, V, V],
        ret: Void,
        reads_memory: false,
        writes_memory: true,
    },
    IntrinsicSig {
        name: "_mm256_add_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_sub_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_mullo_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_set1_epi32",
        params: &[I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_setr_epi32",
        params: &[I32, I32, I32, I32, I32, I32, I32, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_set_epi32",
        params: &[I32, I32, I32, I32, I32, I32, I32, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_setzero_si256",
        params: &[],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_cmpgt_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_cmpeq_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_blendv_epi8",
        params: &[V, V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_and_si256",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_or_si256",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_xor_si256",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_andnot_si256",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_max_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_min_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_abs_epi32",
        params: &[V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_slli_epi32",
        params: &[V, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_srli_epi32",
        params: &[V, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_srai_epi32",
        params: &[V, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_hadd_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_shuffle_epi32",
        params: &[V, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_permute2x128_si256",
        params: &[V, V, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_permutevar8x32_epi32",
        params: &[V, V],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_extract_epi32",
        params: &[V, I32],
        ret: I32,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_insert_epi32",
        params: &[V, I32, I32],
        ret: V,
        reads_memory: false,
        writes_memory: false,
    },
    IntrinsicSig {
        name: "_mm256_movemask_epi8",
        params: &[V],
        ret: I32,
        reads_memory: false,
        writes_memory: false,
    },
];

/// Looks up the signature of an intrinsic by name.
pub fn intrinsic_sig(name: &str) -> Option<&'static IntrinsicSig> {
    INTRINSICS.iter().find(|sig| sig.name == name)
}

/// Returns `true` if `name` is one of the supported AVX2 intrinsics.
pub fn is_intrinsic(name: &str) -> bool {
    intrinsic_sig(name).is_some()
}

/// Returns `true` if `name` looks like an AVX2 intrinsic (by prefix) even if
/// it is not in the supported table. The agents use this to detect candidates
/// that call *unmodeled* intrinsics, which the paper reports as one source of
/// `Inconclusive` verification results.
pub fn looks_like_intrinsic(name: &str) -> bool {
    name.starts_with("_mm256_") || name.starts_with("_mm_") || name.starts_with("_mm512_")
}

/// The number of 32-bit lanes in a 256-bit vector; the paper's vectorization
/// width for integer TSVC kernels.
pub const VECTOR_WIDTH: usize = 8;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_known_intrinsics() {
        let sig = intrinsic_sig("_mm256_add_epi32").unwrap();
        assert_eq!(sig.params.len(), 2);
        assert_eq!(sig.ret, IntrinsicType::Vec);
        assert!(!sig.reads_memory);

        let load = intrinsic_sig("_mm256_loadu_si256").unwrap();
        assert!(load.reads_memory);
        assert!(!load.writes_memory);

        let store = intrinsic_sig("_mm256_storeu_si256").unwrap();
        assert!(store.writes_memory);
        assert_eq!(store.ret, IntrinsicType::Void);
    }

    #[test]
    fn unknown_intrinsics_are_detected() {
        assert!(intrinsic_sig("_mm256_dpbusd_epi32").is_none());
        assert!(looks_like_intrinsic("_mm256_dpbusd_epi32"));
        assert!(!looks_like_intrinsic("memcpy"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = INTRINSICS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn type_acceptance() {
        assert!(IntrinsicType::I32.accepts(&Type::Int));
        assert!(!IntrinsicType::I32.accepts(&Type::M256i));
        assert!(IntrinsicType::Vec.accepts(&Type::M256i));
        assert!(IntrinsicType::VecPtr.accepts(&Type::m256i_ptr()));
        assert!(IntrinsicType::VecPtr.accepts(&Type::int_ptr()));
        assert_eq!(IntrinsicType::Vec.result_type(), Type::M256i);
    }

    #[test]
    fn setr_takes_eight_lanes() {
        assert_eq!(intrinsic_sig("_mm256_setr_epi32").unwrap().params.len(), 8);
        assert_eq!(VECTOR_WIDTH, 8);
    }
}
