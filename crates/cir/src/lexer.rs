//! Lexer for the mini-C subset.
//!
//! The lexer understands exactly the tokens that appear in TSVC kernels and
//! AVX2-vectorized code: identifiers, integer literals, C punctuation,
//! line/block comments, and preprocessor lines (`#include <immintrin.h>`),
//! which are skipped entirely.

use crate::error::{ParseError, Pos};

/// A lexical token kind together with its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// An integer literal.
    IntLit(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `%=`
    PercentEq,
    /// `&=`
    AmpEq,
    /// `|=`
    PipeEq,
    /// `^=`
    CaretEq,
    /// `<<=`
    ShlEq,
    /// `>>=`
    ShrEq,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{}`", name),
            TokenKind::IntLit(v) => format!("integer `{}`", v),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.symbol()),
        }
    }

    fn symbol(&self) -> &'static str {
        match self {
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Comma => ",",
            TokenKind::Colon => ":",
            TokenKind::Question => "?",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Amp => "&",
            TokenKind::Pipe => "|",
            TokenKind::Caret => "^",
            TokenKind::Tilde => "~",
            TokenKind::Bang => "!",
            TokenKind::Eq => "=",
            TokenKind::Lt => "<",
            TokenKind::Gt => ">",
            TokenKind::Le => "<=",
            TokenKind::Ge => ">=",
            TokenKind::EqEq => "==",
            TokenKind::Ne => "!=",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Shl => "<<",
            TokenKind::Shr => ">>",
            TokenKind::PlusEq => "+=",
            TokenKind::MinusEq => "-=",
            TokenKind::StarEq => "*=",
            TokenKind::SlashEq => "/=",
            TokenKind::PercentEq => "%=",
            TokenKind::AmpEq => "&=",
            TokenKind::PipeEq => "|=",
            TokenKind::CaretEq => "^=",
            TokenKind::ShlEq => "<<=",
            TokenKind::ShrEq => ">>=",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::Ident(_) | TokenKind::IntLit(_) | TokenKind::Eof => "",
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// The position of the first character of the token.
    pub pos: Pos,
}

/// Tokenizes mini-C source text.
///
/// Preprocessor lines (starting with `#`), `//` comments and `/* */` comments
/// are skipped. Float literals are rejected because the TSVC subset used in
/// the paper is integer-only.
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters, malformed literals or
/// unterminated block comments.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    idx: usize,
    line: u32,
    col: u32,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Lexer<'a> {
        Lexer {
            chars: source.chars().collect(),
            idx: 0,
            line: 1,
            col: 1,
            source,
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.idx).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.idx + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.idx += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.pos())
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::with_capacity(self.source.len() / 3 + 8);
        loop {
            self.skip_trivia()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_digit() {
                self.lex_number()?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.lex_ident()
            } else {
                self.lex_punct()?
            };
            tokens.push(Token { kind, pos });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') if self.col == 1 || self.at_line_start() => {
                    // Preprocessor directive: skip to end of line.
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error("unterminated block comment"));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_line_start(&self) -> bool {
        // `#` may be preceded only by whitespace on its line.
        let mut i = self.idx;
        while i > 0 {
            let c = self.chars[i - 1];
            if c == '\n' {
                return true;
            }
            if !c.is_whitespace() {
                return false;
            }
            i -= 1;
        }
        true
    }

    fn lex_number(&mut self) -> Result<TokenKind, ParseError> {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                text.push(c);
                self.bump();
            } else if c == '.' || c == 'e' || c == 'E' || c == 'f' || c == 'F' {
                return Err(self.error("floating point literals are not supported"));
            } else {
                break;
            }
        }
        let value: i64 = text
            .parse()
            .map_err(|_| self.error(format!("integer literal `{}` out of range", text)))?;
        Ok(TokenKind::IntLit(value))
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut name = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(name)
    }

    fn lex_punct(&mut self) -> Result<TokenKind, ParseError> {
        let c = self.bump().expect("caller checked non-empty");
        let next = self.peek();
        let kind = match (c, next, self.peek2()) {
            ('<', Some('<'), Some('=')) => {
                self.bump();
                self.bump();
                TokenKind::ShlEq
            }
            ('>', Some('>'), Some('=')) => {
                self.bump();
                self.bump();
                TokenKind::ShrEq
            }
            ('<', Some('<'), _) => {
                self.bump();
                TokenKind::Shl
            }
            ('>', Some('>'), _) => {
                self.bump();
                TokenKind::Shr
            }
            ('<', Some('='), _) => {
                self.bump();
                TokenKind::Le
            }
            ('>', Some('='), _) => {
                self.bump();
                TokenKind::Ge
            }
            ('=', Some('='), _) => {
                self.bump();
                TokenKind::EqEq
            }
            ('!', Some('='), _) => {
                self.bump();
                TokenKind::Ne
            }
            ('&', Some('&'), _) => {
                self.bump();
                TokenKind::AmpAmp
            }
            ('|', Some('|'), _) => {
                self.bump();
                TokenKind::PipePipe
            }
            ('+', Some('+'), _) => {
                self.bump();
                TokenKind::PlusPlus
            }
            ('-', Some('-'), _) => {
                self.bump();
                TokenKind::MinusMinus
            }
            ('+', Some('='), _) => {
                self.bump();
                TokenKind::PlusEq
            }
            ('-', Some('='), _) => {
                self.bump();
                TokenKind::MinusEq
            }
            ('*', Some('='), _) => {
                self.bump();
                TokenKind::StarEq
            }
            ('/', Some('='), _) => {
                self.bump();
                TokenKind::SlashEq
            }
            ('%', Some('='), _) => {
                self.bump();
                TokenKind::PercentEq
            }
            ('&', Some('='), _) => {
                self.bump();
                TokenKind::AmpEq
            }
            ('|', Some('='), _) => {
                self.bump();
                TokenKind::PipeEq
            }
            ('^', Some('='), _) => {
                self.bump();
                TokenKind::CaretEq
            }
            ('(', _, _) => TokenKind::LParen,
            (')', _, _) => TokenKind::RParen,
            ('{', _, _) => TokenKind::LBrace,
            ('}', _, _) => TokenKind::RBrace,
            ('[', _, _) => TokenKind::LBracket,
            (']', _, _) => TokenKind::RBracket,
            (';', _, _) => TokenKind::Semi,
            (',', _, _) => TokenKind::Comma,
            (':', _, _) => TokenKind::Colon,
            ('?', _, _) => TokenKind::Question,
            ('+', _, _) => TokenKind::Plus,
            ('-', _, _) => TokenKind::Minus,
            ('*', _, _) => TokenKind::Star,
            ('/', _, _) => TokenKind::Slash,
            ('%', _, _) => TokenKind::Percent,
            ('&', _, _) => TokenKind::Amp,
            ('|', _, _) => TokenKind::Pipe,
            ('^', _, _) => TokenKind::Caret,
            ('~', _, _) => TokenKind::Tilde,
            ('!', _, _) => TokenKind::Bang,
            ('=', _, _) => TokenKind::Eq,
            ('<', _, _) => TokenKind::Lt,
            ('>', _, _) => TokenKind::Gt,
            (other, _, _) => {
                return Err(self.error(format!("unexpected character `{}`", other)));
            }
        };
        Ok(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src)
            .expect("tokenize")
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn simple_tokens() {
        let ts = kinds("a = b + 1;");
        assert_eq!(
            ts,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Ident("b".into()),
                TokenKind::Plus,
                TokenKind::IntLit(1),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn compound_operators() {
        let ts = kinds("i += 1; j <<= 2; k >>= 3; x++ ; y--;");
        assert!(ts.contains(&TokenKind::PlusEq));
        assert!(ts.contains(&TokenKind::ShlEq));
        assert!(ts.contains(&TokenKind::ShrEq));
        assert!(ts.contains(&TokenKind::PlusPlus));
        assert!(ts.contains(&TokenKind::MinusMinus));
    }

    #[test]
    fn comparison_vs_shift() {
        assert_eq!(
            kinds("a < b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Lt,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("a << b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Shl,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_preprocessor_and_comments() {
        let src = "#include <immintrin.h>\n// comment\n/* block\ncomment */ int x;";
        let ts = kinds(src);
        assert_eq!(
            ts,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn intrinsic_identifiers() {
        let ts = kinds("_mm256_loadu_si256((__m256i *)&a[i])");
        assert_eq!(ts[0], TokenKind::Ident("_mm256_loadu_si256".into()));
        assert!(ts.contains(&TokenKind::Ident("__m256i".into())));
        assert!(ts.contains(&TokenKind::Amp));
    }

    #[test]
    fn rejects_floats() {
        assert!(tokenize("x = 1.5;").is_err());
    }

    #[test]
    fn rejects_unknown_chars() {
        assert!(tokenize("x = $;").is_err());
    }

    #[test]
    fn unterminated_block_comment() {
        assert!(tokenize("/* oops").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }
}
