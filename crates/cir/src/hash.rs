//! Structural hashing of mini-C functions.
//!
//! The batch verification engine keys its persistent verdict cache by the
//! *structure* of the scalar kernel and the candidate, not by their source
//! text: two functions that differ only in the spelling of variables, labels,
//! or the function name are the same verification problem and must share a
//! hash, while any change to a constant, an operator, a type, an intrinsic
//! call, or the statement shape must produce a different hash.
//!
//! [`structural_hash`] therefore walks the AST in pre-order, feeding a
//! 64-bit FNV-1a accumulator ([`Fnv64`]) with:
//!
//! * one tag byte per AST node kind (so `a - b` and `-b` cannot collide by
//!   concatenation ambiguity, every composite node also hashes its arity);
//! * canonical indices instead of names: each distinct variable name is
//!   numbered in order of first occurrence (parameters first, then body
//!   occurrences), and `goto` labels are numbered independently the same
//!   way — this is what makes the hash alpha-renaming-insensitive;
//! * everything semantic verbatim: integer literals, operator and type tags,
//!   parameter order, and intrinsic callee names (an intrinsic is an
//!   operation, not a binder, so its spelling matters).
//!
//! The function *name* is deliberately excluded: a renamed kernel is the
//! same verification problem. The hash is a pure function of the AST — no
//! per-process randomness — so values are stable across runs and can be
//! persisted in the cache file (the cache format version guards against
//! changes to this scheme).

use crate::ast::{AssignOp, BinOp, Block, Expr, Function, Param, Stmt, Type, UnOp};
use std::collections::HashMap;

/// A 64-bit FNV-1a accumulator with a stable byte-level protocol.
///
/// Unlike [`std::collections::hash_map::DefaultHasher`], the output is
/// guaranteed stable across processes and toolchain versions, which the
/// persistent verdict cache relies on.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv64 {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Absorbs one byte (used for node/operator tags).
    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    /// Absorbs a `u32` in little-endian byte order.
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs an `i64` in little-endian byte order.
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a length-prefixed string (so `"ab", "c"` and `"a", "bc"`
    /// cannot collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The canonicalizing visitor behind [`structural_hash`].
struct StructuralHasher {
    fnv: Fnv64,
    /// Variable name -> canonical index, in order of first occurrence.
    vars: HashMap<String, u32>,
    /// `goto` label name -> canonical index, numbered independently of
    /// variables so a variable and a label sharing a spelling stay unrelated.
    labels: HashMap<String, u32>,
}

impl StructuralHasher {
    fn new() -> StructuralHasher {
        StructuralHasher {
            fnv: Fnv64::new(),
            vars: HashMap::new(),
            labels: HashMap::new(),
        }
    }

    fn var_index(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.vars.get(name) {
            return i;
        }
        let i = self.vars.len() as u32;
        self.vars.insert(name.to_string(), i);
        i
    }

    fn label_index(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.labels.get(name) {
            return i;
        }
        let i = self.labels.len() as u32;
        self.labels.insert(name.to_string(), i);
        i
    }

    fn hash_type(&mut self, ty: &Type) {
        match ty {
            Type::Void => self.fnv.write_u8(0x01),
            Type::Int => self.fnv.write_u8(0x02),
            Type::M256i => self.fnv.write_u8(0x03),
            Type::Ptr(inner) => {
                self.fnv.write_u8(0x04);
                self.hash_type(inner);
            }
        }
    }

    fn hash_param(&mut self, param: &Param) {
        self.fnv.write_u8(0x05);
        self.hash_type(&param.ty);
        let idx = self.var_index(&param.name);
        self.fnv.write_u32(idx);
    }

    fn hash_block(&mut self, block: &Block) {
        self.fnv.write_u8(0x06);
        self.fnv.write_u64(block.stmts.len() as u64);
        for stmt in &block.stmts {
            self.hash_stmt(stmt);
        }
    }

    fn hash_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                self.fnv.write_u8(0x10);
                self.hash_type(ty);
                let idx = self.var_index(name);
                self.fnv.write_u32(idx);
                match init {
                    None => self.fnv.write_u8(0x00),
                    Some(e) => {
                        self.fnv.write_u8(0x01);
                        self.hash_expr(e);
                    }
                }
            }
            Stmt::Expr(e) => {
                self.fnv.write_u8(0x11);
                self.hash_expr(e);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.fnv.write_u8(0x12);
                self.hash_expr(cond);
                self.hash_block(then_branch);
                match else_branch {
                    None => self.fnv.write_u8(0x00),
                    Some(b) => {
                        self.fnv.write_u8(0x01);
                        self.hash_block(b);
                    }
                }
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.fnv.write_u8(0x13);
                match init {
                    None => self.fnv.write_u8(0x00),
                    Some(s) => {
                        self.fnv.write_u8(0x01);
                        self.hash_stmt(s);
                    }
                }
                match cond {
                    None => self.fnv.write_u8(0x00),
                    Some(e) => {
                        self.fnv.write_u8(0x01);
                        self.hash_expr(e);
                    }
                }
                match step {
                    None => self.fnv.write_u8(0x00),
                    Some(e) => {
                        self.fnv.write_u8(0x01);
                        self.hash_expr(e);
                    }
                }
                self.hash_block(body);
            }
            Stmt::While { cond, body } => {
                self.fnv.write_u8(0x14);
                self.hash_expr(cond);
                self.hash_block(body);
            }
            Stmt::Return(e) => {
                self.fnv.write_u8(0x15);
                match e {
                    None => self.fnv.write_u8(0x00),
                    Some(e) => {
                        self.fnv.write_u8(0x01);
                        self.hash_expr(e);
                    }
                }
            }
            Stmt::Break => self.fnv.write_u8(0x16),
            Stmt::Continue => self.fnv.write_u8(0x17),
            Stmt::Goto(label) => {
                self.fnv.write_u8(0x18);
                let idx = self.label_index(label);
                self.fnv.write_u32(idx);
            }
            Stmt::Label(label) => {
                self.fnv.write_u8(0x19);
                let idx = self.label_index(label);
                self.fnv.write_u32(idx);
            }
            Stmt::Block(b) => {
                self.fnv.write_u8(0x1a);
                self.hash_block(b);
            }
            Stmt::Empty => self.fnv.write_u8(0x1b),
        }
    }

    fn hash_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::IntLit(v) => {
                self.fnv.write_u8(0x20);
                self.fnv.write_i64(*v);
            }
            Expr::Var(name) => {
                self.fnv.write_u8(0x21);
                let idx = self.var_index(name);
                self.fnv.write_u32(idx);
            }
            Expr::Index { base, index } => {
                self.fnv.write_u8(0x22);
                self.hash_expr(base);
                self.hash_expr(index);
            }
            Expr::Unary { op, expr } => {
                self.fnv.write_u8(0x23);
                self.fnv.write_u8(unop_tag(*op));
                self.hash_expr(expr);
            }
            Expr::Binary { op, lhs, rhs } => {
                self.fnv.write_u8(0x24);
                self.fnv.write_u8(binop_tag(*op));
                self.hash_expr(lhs);
                self.hash_expr(rhs);
            }
            Expr::Assign { op, target, value } => {
                self.fnv.write_u8(0x25);
                self.fnv.write_u8(assignop_tag(*op));
                self.hash_expr(target);
                self.hash_expr(value);
            }
            Expr::Call { callee, args } => {
                self.fnv.write_u8(0x26);
                // Intrinsic names are operations, not binders: hash verbatim.
                self.fnv.write_str(callee);
                self.fnv.write_u64(args.len() as u64);
                for arg in args {
                    self.hash_expr(arg);
                }
            }
            Expr::Cast { ty, expr } => {
                self.fnv.write_u8(0x27);
                self.hash_type(ty);
                self.hash_expr(expr);
            }
            Expr::AddrOf(expr) => {
                self.fnv.write_u8(0x28);
                self.hash_expr(expr);
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.fnv.write_u8(0x29);
                self.hash_expr(cond);
                self.hash_expr(then_expr);
                self.hash_expr(else_expr);
            }
        }
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0x40,
        UnOp::Not => 0x41,
        UnOp::BitNot => 0x42,
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0x50,
        BinOp::Sub => 0x51,
        BinOp::Mul => 0x52,
        BinOp::Div => 0x53,
        BinOp::Rem => 0x54,
        BinOp::Lt => 0x55,
        BinOp::Le => 0x56,
        BinOp::Gt => 0x57,
        BinOp::Ge => 0x58,
        BinOp::Eq => 0x59,
        BinOp::Ne => 0x5a,
        BinOp::And => 0x5b,
        BinOp::Or => 0x5c,
        BinOp::BitAnd => 0x5d,
        BinOp::BitOr => 0x5e,
        BinOp::BitXor => 0x5f,
        BinOp::Shl => 0x60,
        BinOp::Shr => 0x61,
    }
}

fn assignop_tag(op: AssignOp) -> u8 {
    match op {
        AssignOp::Assign => 0x70,
        AssignOp::AddAssign => 0x71,
        AssignOp::SubAssign => 0x72,
        AssignOp::MulAssign => 0x73,
        AssignOp::DivAssign => 0x74,
        AssignOp::RemAssign => 0x75,
        AssignOp::AndAssign => 0x76,
        AssignOp::OrAssign => 0x77,
        AssignOp::XorAssign => 0x78,
        AssignOp::ShlAssign => 0x79,
        AssignOp::ShrAssign => 0x7a,
    }
}

/// The canonical structural hash of a function.
///
/// Insensitive to the spelling of the function name, variables, and `goto`
/// labels; sensitive to everything else — statement shape, operators,
/// integer constants, types, parameter order, and intrinsic callee names.
/// Stable across processes (see the module docs), so it can key persistent
/// caches.
pub fn structural_hash(func: &Function) -> u64 {
    hash_with(func, StructuralHasher::new())
}

/// [`structural_hash`] with the variable canonicalization seeded by an
/// environment of names at fixed indices `0..env.len()`.
///
/// This is how a *pair* of functions is hashed consistently when name
/// correspondence between them is semantic. In this workspace the checksum
/// harness and the refinement check both bind a candidate's arrays to the
/// scalar kernel's by **parameter name**, so renaming a candidate's
/// parameters away from the scalar's changes the verification problem (and
/// possibly the verdict) even though the candidate alone is
/// alpha-equivalent. Hashing the candidate in the scalar's parameter-name
/// environment makes the hash track exactly that correspondence:
///
/// * renaming the candidate's *locals* (or `goto` labels) never changes the
///   hash;
/// * renaming scalar and candidate parameters *jointly and consistently*
///   never changes the pair of hashes;
/// * renaming only the candidate's parameters (breaking the name pairing)
///   does.
///
/// A candidate local that happens to share an `env` name also binds to the
/// env index; that makes the hash over-sensitive to renaming such locals —
/// a spurious cache miss at worst, never a wrong hit.
pub fn structural_hash_in_env<'a>(func: &Function, env: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut hasher = StructuralHasher::new();
    for name in env {
        let next = hasher.vars.len() as u32;
        hasher.vars.entry(name.to_string()).or_insert(next);
    }
    hash_with(func, hasher)
}

fn hash_with(func: &Function, mut hasher: StructuralHasher) -> u64 {
    hasher.fnv.write_u8(0x00); // scheme tag, bump on protocol changes
    hasher.hash_type(&func.ret);
    hasher.fnv.write_u64(func.params.len() as u64);
    for param in &func.params {
        hasher.hash_param(param);
    }
    hasher.hash_block(&func.body);
    hasher.fnv.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";

    fn f(src: &str) -> Function {
        parse_function(src).unwrap()
    }

    #[test]
    fn renamed_variables_share_a_hash() {
        let renamed = "void other(int m, int *x, int *y) { for (int j = 0; j < m; j++) { x[j] = y[j] + 1; } }";
        assert_eq!(structural_hash(&f(S000)), structural_hash(&f(renamed)));
    }

    #[test]
    fn constant_mutation_changes_the_hash() {
        let plus_two =
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }";
        assert_ne!(structural_hash(&f(S000)), structural_hash(&f(plus_two)));
    }

    #[test]
    fn operator_mutation_changes_the_hash() {
        let minus =
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] - 1; } }";
        assert_ne!(structural_hash(&f(S000)), structural_hash(&f(minus)));
    }

    #[test]
    fn swapping_distinct_variables_changes_the_hash() {
        // `a[i] = b[i]` vs `b[i] = a[i]`: same names, different structure of
        // first occurrences relative to use sites.
        let store_a = "void k(int n, int *a, int *b) { a[n] = b[n]; }";
        let store_b = "void k(int n, int *a, int *b) { b[n] = a[n]; }";
        assert_ne!(structural_hash(&f(store_a)), structural_hash(&f(store_b)));
    }

    #[test]
    fn renamed_labels_share_a_hash() {
        let with_goto =
            "void k(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i]) { goto done; } } done: ; }";
        let renamed =
            "void k(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i]) { goto out; } } out: ; }";
        assert_eq!(structural_hash(&f(with_goto)), structural_hash(&f(renamed)));
    }

    #[test]
    fn intrinsic_name_is_semantic() {
        let add = "void k(int *a) { _mm256_storeu_si256((__m256i *)&a[0], _mm256_add_epi32(_mm256_setzero_si256(), _mm256_set1_epi32(1))); }";
        let sub = "void k(int *a) { _mm256_storeu_si256((__m256i *)&a[0], _mm256_sub_epi32(_mm256_setzero_si256(), _mm256_set1_epi32(1))); }";
        assert_ne!(structural_hash(&f(add)), structural_hash(&f(sub)));
    }

    #[test]
    fn hash_is_stable_across_calls() {
        let a = structural_hash(&f(S000));
        let b = structural_hash(&f(S000));
        assert_eq!(a, b);
    }

    #[test]
    fn env_hash_tracks_parameter_name_correspondence() {
        let named = "void k(int n, int *a, int *b) { a[n] = b[n]; }";
        // Same function with its parameters renamed: alpha-equivalent alone,
        // but a *different* pairing against a scalar whose params are n/a/b.
        let renamed = "void k(int m, int *x, int *y) { x[m] = y[m]; }";
        let env = ["n", "a", "b"];
        assert_eq!(structural_hash(&f(named)), structural_hash(&f(renamed)));
        assert_ne!(
            structural_hash_in_env(&f(named), env),
            structural_hash_in_env(&f(renamed), env),
            "breaking the name pairing must change the env hash"
        );
        // Jointly renaming the environment with the function preserves it.
        assert_eq!(
            structural_hash_in_env(&f(named), env),
            structural_hash_in_env(&f(renamed), ["m", "x", "y"]),
        );
        // Renaming a local (not in the env) never matters.
        let local = "void k(int n, int *a) { int t = a[n]; a[0] = t; }";
        let local_renamed = "void k(int n, int *a) { int u = a[n]; a[0] = u; }";
        assert_eq!(
            structural_hash_in_env(&f(local), ["n", "a"]),
            structural_hash_in_env(&f(local_renamed), ["n", "a"]),
        );
    }

    #[test]
    fn fnv_write_str_is_length_prefixed() {
        let mut one = Fnv64::new();
        one.write_str("ab");
        one.write_str("c");
        let mut two = Fnv64::new();
        two.write_str("a");
        two.write_str("bc");
        assert_ne!(one.finish(), two.finish());
    }
}
