//! Recursive-descent parser for the mini-C subset.
//!
//! The grammar covers TSVC scalar kernels and AVX2-vectorized candidates:
//! function definitions, declarations, `for`/`while` loops, `if`/`else`,
//! `goto`/labels, `break`/`continue`/`return`, the full C operator set used
//! by the benchmark, casts such as `(__m256i *) &a[i]`, and intrinsic calls.
//!
//! Prefix and postfix `++`/`--` are desugared into compound assignments
//! (`i += 1`); the TSVC subset never relies on the *value* of a postfix
//! increment, so this desugaring is semantics-preserving for the dataset.

use crate::ast::{AssignOp, BinOp, Block, Expr, Function, Param, Program, Stmt, Type, UnOp};
use crate::error::{ParseError, Pos};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a full translation unit (one or more function definitions).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let program = lv_cir::parse_program(
///     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) a[i] = b[i] + 1; }",
/// ).unwrap();
/// assert_eq!(program.functions.len(), 1);
/// assert_eq!(program.functions[0].name, "s000");
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let mut functions = Vec::new();
    while !parser.at_eof() {
        functions.push(parser.parse_function()?);
    }
    Ok(Program { functions })
}

/// Parses a single function definition.
///
/// This is a convenience wrapper over [`parse_program`] for the common case
/// of one kernel per source snippet.
///
/// # Errors
///
/// Returns a [`ParseError`] if the source does not contain exactly one
/// well-formed function definition.
pub fn parse_function(source: &str) -> Result<Function, ParseError> {
    let program = parse_program(source)?;
    match program.functions.len() {
        1 => Ok(program
            .functions
            .into_iter()
            .next()
            .expect("checked length")),
        n => Err(ParseError::new(
            format!("expected exactly one function definition, found {}", n),
            Pos::new(1, 1),
        )),
    }
}

/// Parses a single expression (useful in tests and in the agents crate).
///
/// # Errors
///
/// Returns a [`ParseError`] if the source is not a single well-formed
/// expression.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_expression()?;
    if !parser.at_eof() {
        return Err(parser.unexpected("end of expression"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, idx: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.idx.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek_ahead(&self, n: usize) -> &TokenKind {
        let i = (self.idx + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn bump(&mut self) -> Token {
        let tok = self.tokens[self.idx.min(self.tokens.len() - 1)].clone();
        if self.idx < self.tokens.len() - 1 {
            self.idx += 1;
        }
        tok
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek_kind() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, ParseError> {
        if self.peek_kind() == &kind {
            Ok(self.bump())
        } else {
            Err(ParseError::new(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.peek().pos,
            ))
        }
    }

    fn unexpected(&self, what: &str) -> ParseError {
        ParseError::new(
            format!("expected {}, found {}", what, self.peek_kind().describe()),
            self.peek().pos,
        )
    }

    fn is_ident(&self, text: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(name) if name == text)
    }

    fn eat_ident(&mut self, text: &str) -> bool {
        if self.is_ident(text) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(ParseError::new(
                format!("expected identifier, found {}", other.describe()),
                self.peek().pos,
            )),
        }
    }

    // ---- types ------------------------------------------------------------

    fn peek_is_type_start(&self) -> bool {
        self.kind_is_type_start(self.peek_kind())
    }

    fn kind_is_type_start(&self, kind: &TokenKind) -> bool {
        matches!(
            kind,
            TokenKind::Ident(name)
                if name == "int"
                    || name == "void"
                    || name == "__m256i"
                    || name == "unsigned"
                    || name == "const"
        )
    }

    fn parse_base_type(&mut self) -> Result<Type, ParseError> {
        // Skip `const` / `unsigned` qualifiers: TSVC arithmetic is handled as
        // wrapping i32 everywhere, so the distinction does not change results.
        while self.eat_ident("const") || self.eat_ident("unsigned") {}
        let pos = self.peek().pos;
        let name = self.expect_ident()?;
        let ty = match name.as_str() {
            "void" => Type::Void,
            "int" => Type::Int,
            "__m256i" => Type::M256i,
            other => {
                return Err(ParseError::new(
                    format!("unknown type name `{}`", other),
                    pos,
                ))
            }
        };
        Ok(ty)
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let mut ty = self.parse_base_type()?;
        loop {
            if self.eat(&TokenKind::Star) {
                ty = Type::Ptr(Box::new(ty));
                // `int * restrict a` (ICC-style) — ignore the qualifier.
                while self.eat_ident("restrict") || self.eat_ident("const") {}
            } else {
                break;
            }
        }
        Ok(ty)
    }

    // ---- functions ---------------------------------------------------------

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let ret = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push(Param::new(pname, ty));
                if self.eat(&TokenKind::Comma) {
                    continue;
                }
                self.expect(TokenKind::RParen)?;
                break;
            }
        }
        let body = self.parse_block()?;
        Ok(Function::new(name, ret, params, body))
    }

    // ---- statements ---------------------------------------------------------

    fn parse_block(&mut self) -> Result<Block, ParseError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            self.parse_stmt_into(&mut stmts)?;
        }
        Ok(Block::from_stmts(stmts))
    }

    /// Parses one statement; declarations with multiple declarators push
    /// several `Stmt::Decl` entries, hence the out-vector.
    fn parse_stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Label: `ident :` (but not the ternary `? :` which never starts a statement).
        if let TokenKind::Ident(name) = self.peek_kind() {
            if matches!(self.peek_ahead(1), TokenKind::Colon) && !self.peek_is_type_start() {
                let label = name.clone();
                self.bump();
                self.bump();
                out.push(Stmt::Label(label));
                return Ok(());
            }
        }

        if self.peek_is_type_start() {
            self.parse_declaration_into(out)?;
            return Ok(());
        }

        if self.is_ident("if") {
            out.push(self.parse_if()?);
            return Ok(());
        }
        if self.is_ident("for") {
            out.push(self.parse_for()?);
            return Ok(());
        }
        if self.is_ident("while") {
            out.push(self.parse_while()?);
            return Ok(());
        }
        if self.eat_ident("return") {
            if self.eat(&TokenKind::Semi) {
                out.push(Stmt::Return(None));
            } else {
                let value = self.parse_expression()?;
                self.expect(TokenKind::Semi)?;
                out.push(Stmt::Return(Some(value)));
            }
            return Ok(());
        }
        if self.eat_ident("break") {
            self.expect(TokenKind::Semi)?;
            out.push(Stmt::Break);
            return Ok(());
        }
        if self.eat_ident("continue") {
            self.expect(TokenKind::Semi)?;
            out.push(Stmt::Continue);
            return Ok(());
        }
        if self.eat_ident("goto") {
            let label = self.expect_ident()?;
            self.expect(TokenKind::Semi)?;
            out.push(Stmt::Goto(label));
            return Ok(());
        }
        if matches!(self.peek_kind(), TokenKind::LBrace) {
            let block = self.parse_block()?;
            out.push(Stmt::Block(block));
            return Ok(());
        }
        if self.eat(&TokenKind::Semi) {
            out.push(Stmt::Empty);
            return Ok(());
        }

        let expr = self.parse_expression()?;
        self.expect(TokenKind::Semi)?;
        out.push(Stmt::Expr(expr));
        Ok(())
    }

    fn parse_declaration_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        let base = self.parse_base_type()?;
        loop {
            let mut ty = base.clone();
            while self.eat(&TokenKind::Star) {
                ty = Type::Ptr(Box::new(ty));
                while self.eat_ident("restrict") || self.eat_ident("const") {}
            }
            let name = self.expect_ident()?;
            let init = if self.eat(&TokenKind::Eq) {
                Some(self.parse_assignment()?)
            } else {
                None
            };
            out.push(Stmt::Decl { ty, name, init });
            if self.eat(&TokenKind::Comma) {
                continue;
            }
            self.expect(TokenKind::Semi)?;
            return Ok(());
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::Ident("if".into()))?;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expression()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.parse_stmt_as_block()?;
        let else_branch = if self.eat_ident("else") {
            Some(self.parse_stmt_as_block()?)
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    /// Parses either a braced block or a single statement wrapped in a block,
    /// so that `if (c) x = 1;` and `if (c) { x = 1; }` produce the same AST.
    fn parse_stmt_as_block(&mut self) -> Result<Block, ParseError> {
        if matches!(self.peek_kind(), TokenKind::LBrace) {
            self.parse_block()
        } else {
            let mut stmts = Vec::new();
            self.parse_stmt_into(&mut stmts)?;
            Ok(Block::from_stmts(stmts))
        }
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::Ident("for".into()))?;
        self.expect(TokenKind::LParen)?;

        let init = if self.eat(&TokenKind::Semi) {
            None
        } else if self.peek_is_type_start() {
            let mut decls = Vec::new();
            self.parse_declaration_into(&mut decls)?;
            if decls.len() != 1 {
                return Err(ParseError::new(
                    "for-loop initializer must declare exactly one variable",
                    self.peek().pos,
                ));
            }
            Some(Box::new(decls.into_iter().next().expect("checked length")))
        } else {
            let expr = self.parse_expression()?;
            self.expect(TokenKind::Semi)?;
            Some(Box::new(Stmt::Expr(expr)))
        };

        let cond = if self.eat(&TokenKind::Semi) {
            None
        } else {
            let c = self.parse_expression()?;
            self.expect(TokenKind::Semi)?;
            Some(c)
        };

        let step = if matches!(self.peek_kind(), TokenKind::RParen) {
            None
        } else {
            Some(self.parse_expression()?)
        };
        self.expect(TokenKind::RParen)?;

        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        self.expect(TokenKind::Ident("while".into()))?;
        self.expect(TokenKind::LParen)?;
        let cond = self.parse_expression()?;
        self.expect(TokenKind::RParen)?;
        let body = self.parse_stmt_as_block()?;
        Ok(Stmt::While { cond, body })
    }

    // ---- expressions ---------------------------------------------------------

    fn parse_expression(&mut self) -> Result<Expr, ParseError> {
        self.parse_assignment()
    }

    fn parse_assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.parse_ternary()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(AssignOp::Assign),
            TokenKind::PlusEq => Some(AssignOp::AddAssign),
            TokenKind::MinusEq => Some(AssignOp::SubAssign),
            TokenKind::StarEq => Some(AssignOp::MulAssign),
            TokenKind::SlashEq => Some(AssignOp::DivAssign),
            TokenKind::PercentEq => Some(AssignOp::RemAssign),
            TokenKind::AmpEq => Some(AssignOp::AndAssign),
            TokenKind::PipeEq => Some(AssignOp::OrAssign),
            TokenKind::CaretEq => Some(AssignOp::XorAssign),
            TokenKind::ShlEq => Some(AssignOp::ShlAssign),
            TokenKind::ShrEq => Some(AssignOp::ShrAssign),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let value = self.parse_assignment()?;
            return Ok(Expr::assign(op, lhs, value));
        }
        Ok(lhs)
    }

    fn parse_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.parse_binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then_expr = self.parse_expression()?;
            self.expect(TokenKind::Colon)?;
            let else_expr = self.parse_ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            });
        }
        Ok(cond)
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek_kind() {
            TokenKind::PipePipe => (BinOp::Or, 1),
            TokenKind::AmpAmp => (BinOp::And, 2),
            TokenKind::Pipe => (BinOp::BitOr, 3),
            TokenKind::Caret => (BinOp::BitXor, 4),
            TokenKind::Amp => (BinOp::BitAnd, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::Ne => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        };
        if prec >= min_prec {
            Some((op, prec))
        } else {
            None
        }
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.binop_at(min_prec.max(1)) {
            self.bump();
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::Minus => {
                self.bump();
                let expr = self.parse_unary()?;
                // Fold `-literal` so that TSVC initializers like `j = -1` stay literals.
                if let Expr::IntLit(v) = expr {
                    return Ok(Expr::IntLit(-v));
                }
                Ok(Expr::un(UnOp::Neg, expr))
            }
            TokenKind::Bang => {
                self.bump();
                Ok(Expr::un(UnOp::Not, self.parse_unary()?))
            }
            TokenKind::Tilde => {
                self.bump();
                Ok(Expr::un(UnOp::BitNot, self.parse_unary()?))
            }
            TokenKind::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.parse_unary()?)))
            }
            TokenKind::PlusPlus => {
                self.bump();
                let target = self.parse_unary()?;
                Ok(Expr::assign(AssignOp::AddAssign, target, Expr::lit(1)))
            }
            TokenKind::MinusMinus => {
                self.bump();
                let target = self.parse_unary()?;
                Ok(Expr::assign(AssignOp::SubAssign, target, Expr::lit(1)))
            }
            TokenKind::LParen if self.kind_is_type_start(self.peek_ahead(1)) => {
                // A cast: `(int)` / `(__m256i *)`.
                self.bump();
                let ty = self.parse_type()?;
                self.expect(TokenKind::RParen)?;
                let expr = self.parse_unary()?;
                Ok(Expr::Cast {
                    ty,
                    expr: Box::new(expr),
                })
            }
            _ => self.parse_postfix(),
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            match self.peek_kind() {
                TokenKind::LBracket => {
                    self.bump();
                    let index = self.parse_expression()?;
                    self.expect(TokenKind::RBracket)?;
                    expr = Expr::index(expr, index);
                }
                TokenKind::LParen => {
                    let callee = match &expr {
                        Expr::Var(name) => name.clone(),
                        _ => {
                            return Err(self.unexpected("a named callee before `(`"));
                        }
                    };
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.parse_expression()?);
                            if self.eat(&TokenKind::Comma) {
                                continue;
                            }
                            self.expect(TokenKind::RParen)?;
                            break;
                        }
                    }
                    expr = Expr::Call { callee, args };
                }
                TokenKind::PlusPlus => {
                    self.bump();
                    expr = Expr::assign(AssignOp::AddAssign, expr, Expr::lit(1));
                }
                TokenKind::MinusMinus => {
                    self.bump();
                    expr = Expr::assign(AssignOp::SubAssign, expr, Expr::lit(1));
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek_kind().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v))
            }
            TokenKind::Ident(name) => {
                self.bump();
                Ok(Expr::Var(name))
            }
            TokenKind::LParen => {
                self.bump();
                let expr = self.parse_expression()?;
                self.expect(TokenKind::RParen)?;
                Ok(expr)
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_s000_like_kernel() {
        let f = parse_function(
            "void s000(int n, int *a, int *b) {\n  for (int i = 0; i < n; i++) {\n    a[i] = b[i] + 1;\n  }\n}",
        )
        .unwrap();
        assert_eq!(f.name, "s000");
        assert_eq!(f.params.len(), 3);
        assert_eq!(f.body.len(), 1);
        match &f.body.stmts[0] {
            Stmt::For { cond, step, .. } => {
                assert!(cond.is_some());
                assert!(step.is_some());
            }
            other => panic!("expected for loop, got {:?}", other),
        }
    }

    #[test]
    fn parses_vectorized_intrinsics() {
        let src = r#"
#include <immintrin.h>
void s000_vec(int n, int *a, int *b) {
  int i;
  for (i = 0; i < n - n % 8; i += 8) {
    __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
    __m256i one = _mm256_set1_epi32(1);
    __m256i r = _mm256_add_epi32(b_vec, one);
    _mm256_storeu_si256((__m256i *)&a[i], r);
  }
  for (; i < n; i++) {
    a[i] = b[i] + 1;
  }
}"#;
        let f = parse_function(src).unwrap();
        assert_eq!(f.name, "s000_vec");
        assert_eq!(f.body.len(), 3);
        let loops = f.top_level_loops();
        assert_eq!(loops.len(), 2);
    }

    #[test]
    fn parses_pointer_arith_argument() {
        let e = parse_expr("_mm256_loadu_si256((__m256i *)(b + i))").unwrap();
        match e {
            Expr::Call { callee, args } => {
                assert_eq!(callee, "_mm256_loadu_si256");
                assert!(matches!(args[0], Expr::Cast { .. }));
            }
            other => panic!("expected call, got {:?}", other),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("a + b * c").unwrap();
        match e {
            Expr::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn precedence_comparison_below_shift() {
        let e = parse_expr("a << 2 > b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Gt, .. }));
    }

    #[test]
    fn ternary_parses() {
        let e = parse_expr("a > b ? a : b").unwrap();
        assert!(matches!(e, Expr::Ternary { .. }));
    }

    #[test]
    fn increments_desugar() {
        let e = parse_expr("i++").unwrap();
        assert_eq!(
            e,
            Expr::assign(AssignOp::AddAssign, Expr::var("i"), Expr::lit(1))
        );
        let e = parse_expr("--j").unwrap();
        assert_eq!(
            e,
            Expr::assign(AssignOp::SubAssign, Expr::var("j"), Expr::lit(1))
        );
    }

    #[test]
    fn negative_literals_fold() {
        let e = parse_expr("-1").unwrap();
        assert_eq!(e, Expr::IntLit(-1));
    }

    #[test]
    fn goto_and_labels() {
        let f = parse_function(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) {\n  for (int i = 0; i < n; i++) {\n    if (a[i] > 0) {\n      goto L20;\n    }\n    b[i] = -b[i] + d[i] * e[i];\n    goto L30;\nL20:\n    c[i] = -c[i] + d[i] * e[i];\nL30:\n    a[i] = b[i] + c[i] * d[i];\n  }\n}",
        )
        .unwrap();
        let body = match &f.body.stmts[0] {
            Stmt::For { body, .. } => body,
            other => panic!("expected loop, got {:?}", other),
        };
        assert!(body
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Label(l) if l == "L20")));
        assert!(body
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::Goto(l) if l == "L30")));
    }

    #[test]
    fn multi_declarator_declarations_split() {
        let f = parse_function("void f(int n) { int i, j = 2, k; i = j + k; }").unwrap();
        let decls = f
            .body
            .stmts
            .iter()
            .filter(|s| matches!(s, Stmt::Decl { .. }))
            .count();
        assert_eq!(decls, 3);
    }

    #[test]
    fn restrict_qualifier_is_ignored() {
        let f = parse_function("void f(int n, int * restrict a) { a[0] = n; }").unwrap();
        assert_eq!(f.params[1].ty, Type::int_ptr());
    }

    #[test]
    fn while_and_compound_assign() {
        let f = parse_function(
            "void f(int n, int *a) { int i = 0; while (i < n) { a[i] *= 3; i += 1; } }",
        )
        .unwrap();
        assert!(matches!(f.body.stmts[1], Stmt::While { .. }));
    }

    #[test]
    fn error_on_missing_semicolon() {
        assert!(parse_function("void f(int n) { n = 1 }").is_err());
    }

    #[test]
    fn error_on_unknown_type() {
        assert!(parse_function("void f(float x) { }").is_err());
    }

    #[test]
    fn error_on_two_functions_in_parse_function() {
        assert!(parse_function("void f(int n) { } void g(int n) { }").is_err());
        assert!(parse_program("void f(int n) { } void g(int n) { }").is_ok());
    }
}
