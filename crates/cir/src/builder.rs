//! Programmatic AST construction helpers.
//!
//! The synthetic vectorizer in `lv-agents` and the transformation passes in
//! `lv-tv` build a lot of stereotyped code — strip-mined loops, AVX2
//! load/compute/store sequences, epilogue loops. These helpers keep that
//! code readable and are also convenient in tests.

use crate::ast::{AssignOp, BinOp, Block, Expr, Stmt, Type};
use crate::intrinsics::VECTOR_WIDTH;

/// `target = value;` as a statement.
pub fn assign_stmt(target: Expr, value: Expr) -> Stmt {
    Stmt::Expr(Expr::assign(AssignOp::Assign, target, value))
}

/// `target op= value;` as a statement.
pub fn compound_assign_stmt(op: AssignOp, target: Expr, value: Expr) -> Stmt {
    Stmt::Expr(Expr::assign(op, target, value))
}

/// `int name = init;`
pub fn decl_int(name: impl Into<String>, init: Option<Expr>) -> Stmt {
    Stmt::Decl {
        ty: Type::Int,
        name: name.into(),
        init,
    }
}

/// `__m256i name = init;`
pub fn decl_vec(name: impl Into<String>, init: Expr) -> Stmt {
    Stmt::Decl {
        ty: Type::M256i,
        name: name.into(),
        init: Some(init),
    }
}

/// `name[index]`
pub fn array(name: &str, index: Expr) -> Expr {
    Expr::index(Expr::var(name), index)
}

/// `i + offset`, folding the trivial `offset == 0` case to `i`.
pub fn offset_index(iv: &str, offset: i64) -> Expr {
    if offset == 0 {
        Expr::var(iv)
    } else if offset < 0 {
        Expr::bin(BinOp::Sub, Expr::var(iv), Expr::lit(-offset))
    } else {
        Expr::bin(BinOp::Add, Expr::var(iv), Expr::lit(offset))
    }
}

/// `_mm256_loadu_si256((__m256i *)&arr[index])`
pub fn vec_load(arr: &str, index: Expr) -> Expr {
    Expr::call(
        "_mm256_loadu_si256",
        vec![Expr::Cast {
            ty: Type::m256i_ptr(),
            expr: Box::new(Expr::AddrOf(Box::new(array(arr, index)))),
        }],
    )
}

/// `_mm256_storeu_si256((__m256i *)&arr[index], value);`
pub fn vec_store(arr: &str, index: Expr, value: Expr) -> Stmt {
    Stmt::Expr(Expr::call(
        "_mm256_storeu_si256",
        vec![
            Expr::Cast {
                ty: Type::m256i_ptr(),
                expr: Box::new(Expr::AddrOf(Box::new(array(arr, index)))),
            },
            value,
        ],
    ))
}

/// `_mm256_set1_epi32(value)`
pub fn vec_splat(value: Expr) -> Expr {
    Expr::call("_mm256_set1_epi32", vec![value])
}

/// `_mm256_setzero_si256()`
pub fn vec_zero() -> Expr {
    Expr::call("_mm256_setzero_si256", vec![])
}

/// `_mm256_setr_epi32(v0, ..., v7)`
///
/// # Panics
///
/// Panics if `lanes` does not contain exactly [`VECTOR_WIDTH`] expressions.
pub fn vec_setr(lanes: Vec<Expr>) -> Expr {
    assert_eq!(
        lanes.len(),
        VECTOR_WIDTH,
        "setr requires exactly {} lanes",
        VECTOR_WIDTH
    );
    Expr::call("_mm256_setr_epi32", lanes)
}

/// Element-wise binary intrinsic for the given scalar operator, when one
/// exists (`+`, `-`, `*`, `&`, `|`, `^`).
pub fn vec_binop(op: BinOp, lhs: Expr, rhs: Expr) -> Option<Expr> {
    let callee = match op {
        BinOp::Add => "_mm256_add_epi32",
        BinOp::Sub => "_mm256_sub_epi32",
        BinOp::Mul => "_mm256_mullo_epi32",
        BinOp::BitAnd => "_mm256_and_si256",
        BinOp::BitOr => "_mm256_or_si256",
        BinOp::BitXor => "_mm256_xor_si256",
        _ => return None,
    };
    Some(Expr::call(callee, vec![lhs, rhs]))
}

/// `_mm256_cmpgt_epi32(lhs, rhs)`
pub fn vec_cmpgt(lhs: Expr, rhs: Expr) -> Expr {
    Expr::call("_mm256_cmpgt_epi32", vec![lhs, rhs])
}

/// `_mm256_blendv_epi8(if_false, if_true, mask)`
pub fn vec_blend(if_false: Expr, if_true: Expr, mask: Expr) -> Expr {
    Expr::call("_mm256_blendv_epi8", vec![if_false, if_true, mask])
}

/// A canonical strip-mined vector loop header:
/// `for (iv = start; iv + width <= bound; iv += width) { body }`.
///
/// The `declare_iv` flag controls whether the induction variable is declared
/// in the loop header (`for (int i = ...)`) or assumed to exist.
pub fn vector_loop(
    iv: &str,
    start: Expr,
    bound: Expr,
    width: i64,
    body: Block,
    declare_iv: bool,
) -> Stmt {
    let init: Stmt = if declare_iv {
        Stmt::Decl {
            ty: Type::Int,
            name: iv.to_string(),
            init: Some(start),
        }
    } else {
        Stmt::Expr(Expr::assign(AssignOp::Assign, Expr::var(iv), start))
    };
    Stmt::For {
        init: Some(Box::new(init)),
        cond: Some(Expr::bin(
            BinOp::Le,
            Expr::bin(BinOp::Add, Expr::var(iv), Expr::lit(width)),
            bound,
        )),
        step: Some(Expr::assign(
            AssignOp::AddAssign,
            Expr::var(iv),
            Expr::lit(width),
        )),
        body,
    }
}

/// The scalar epilogue loop `for (; iv < bound; iv += step) { body }` that
/// finishes the iterations not covered by the vector loop.
pub fn epilogue_loop(iv: &str, bound: Expr, step: i64, body: Block) -> Stmt {
    Stmt::For {
        init: None,
        cond: Some(Expr::bin(BinOp::Lt, Expr::var(iv), bound)),
        step: Some(Expr::assign(
            AssignOp::AddAssign,
            Expr::var(iv),
            Expr::lit(step),
        )),
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::{print_expr, print_stmt};

    #[test]
    fn load_store_render_like_the_paper() {
        let load = vec_load("a", offset_index("i", 1));
        assert_eq!(
            print_expr(&load),
            "_mm256_loadu_si256((__m256i *)&a[i + 1])"
        );
        let store = vec_store("b", Expr::var("i"), Expr::var("sum_vec"));
        assert_eq!(
            print_stmt(&store),
            "_mm256_storeu_si256((__m256i *)&b[i], sum_vec);"
        );
    }

    #[test]
    fn offset_index_folds_zero() {
        assert_eq!(print_expr(&offset_index("i", 0)), "i");
        assert_eq!(print_expr(&offset_index("i", 3)), "i + 3");
        assert_eq!(print_expr(&offset_index("i", -2)), "i - 2");
    }

    #[test]
    fn vec_binop_mapping() {
        let e = vec_binop(BinOp::Mul, Expr::var("x"), Expr::var("y")).unwrap();
        assert_eq!(print_expr(&e), "_mm256_mullo_epi32(x, y)");
        assert!(vec_binop(BinOp::Div, Expr::var("x"), Expr::var("y")).is_none());
    }

    #[test]
    fn vector_loop_shape() {
        let body = Block::from_stmts(vec![assign_stmt(array("a", Expr::var("i")), Expr::lit(0))]);
        let stmt = vector_loop("i", Expr::lit(0), Expr::var("n"), 8, body, true);
        let printed = print_stmt(&stmt);
        assert!(printed.starts_with("for (int i = 0; i + 8 <= n; i += 8)"));
    }

    #[test]
    #[should_panic(expected = "setr requires exactly 8 lanes")]
    fn setr_panics_on_wrong_lane_count() {
        vec_setr(vec![Expr::lit(0); 3]);
    }
}
