//! AST traversal and rewriting utilities shared by the analysis, agents and
//! translation-validation crates.

use crate::ast::{Block, Expr, Function, Stmt};

/// Calls `f` on every expression (pre-order) reachable from a block,
/// including sub-expressions.
pub fn for_each_expr_in_block(block: &Block, f: &mut impl FnMut(&Expr)) {
    for stmt in &block.stmts {
        for_each_expr_in_stmt(stmt, f);
    }
}

/// Calls `f` on every expression (pre-order) reachable from a statement.
pub fn for_each_expr_in_stmt(stmt: &Stmt, f: &mut impl FnMut(&Expr)) {
    match stmt {
        Stmt::Decl { init, .. } => {
            if let Some(init) = init {
                for_each_expr(init, f);
            }
        }
        Stmt::Expr(e) => for_each_expr(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(then_branch, f);
            if let Some(else_branch) = else_branch {
                for_each_expr_in_block(else_branch, f);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                for_each_expr_in_stmt(init, f);
            }
            if let Some(cond) = cond {
                for_each_expr(cond, f);
            }
            if let Some(step) = step {
                for_each_expr(step, f);
            }
            for_each_expr_in_block(body, f);
        }
        Stmt::While { cond, body } => {
            for_each_expr(cond, f);
            for_each_expr_in_block(body, f);
        }
        Stmt::Return(Some(e)) => for_each_expr(e, f),
        Stmt::Block(b) => for_each_expr_in_block(b, f),
        Stmt::Return(None)
        | Stmt::Break
        | Stmt::Continue
        | Stmt::Goto(_)
        | Stmt::Label(_)
        | Stmt::Empty => {}
    }
}

/// Calls `f` on an expression and all of its sub-expressions (pre-order).
pub fn for_each_expr(expr: &Expr, f: &mut impl FnMut(&Expr)) {
    f(expr);
    match expr {
        Expr::IntLit(_) | Expr::Var(_) => {}
        Expr::Index { base, index } => {
            for_each_expr(base, f);
            for_each_expr(index, f);
        }
        Expr::Unary { expr, .. } | Expr::AddrOf(expr) | Expr::Cast { expr, .. } => {
            for_each_expr(expr, f);
        }
        Expr::Binary { lhs, rhs, .. } => {
            for_each_expr(lhs, f);
            for_each_expr(rhs, f);
        }
        Expr::Assign { target, value, .. } => {
            for_each_expr(target, f);
            for_each_expr(value, f);
        }
        Expr::Call { args, .. } => {
            for arg in args {
                for_each_expr(arg, f);
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            for_each_expr(cond, f);
            for_each_expr(then_expr, f);
            for_each_expr(else_expr, f);
        }
    }
}

/// Calls `f` on every statement (pre-order) in a block, recursing into nested
/// blocks and loop/branch bodies.
pub fn for_each_stmt_in_block(block: &Block, f: &mut impl FnMut(&Stmt)) {
    for stmt in &block.stmts {
        for_each_stmt(stmt, f);
    }
}

/// Calls `f` on a statement and all statements nested inside it (pre-order).
pub fn for_each_stmt(stmt: &Stmt, f: &mut impl FnMut(&Stmt)) {
    f(stmt);
    match stmt {
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for_each_stmt_in_block(then_branch, f);
            if let Some(else_branch) = else_branch {
                for_each_stmt_in_block(else_branch, f);
            }
        }
        Stmt::For { init, body, .. } => {
            if let Some(init) = init {
                for_each_stmt(init, f);
            }
            for_each_stmt_in_block(body, f);
        }
        Stmt::While { body, .. } => for_each_stmt_in_block(body, f),
        Stmt::Block(b) => for_each_stmt_in_block(b, f),
        _ => {}
    }
}

/// Rewrites every expression in a block bottom-up using `f`.
pub fn map_exprs_in_block(block: Block, f: &impl Fn(Expr) -> Expr) -> Block {
    Block {
        stmts: block
            .stmts
            .into_iter()
            .map(|s| map_exprs_in_stmt(s, f))
            .collect(),
    }
}

/// Rewrites every expression in a statement bottom-up using `f`.
pub fn map_exprs_in_stmt(stmt: Stmt, f: &impl Fn(Expr) -> Expr) -> Stmt {
    match stmt {
        Stmt::Decl { ty, name, init } => Stmt::Decl {
            ty,
            name,
            init: init.map(|e| map_expr(e, f)),
        },
        Stmt::Expr(e) => Stmt::Expr(map_expr(e, f)),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond: map_expr(cond, f),
            then_branch: map_exprs_in_block(then_branch, f),
            else_branch: else_branch.map(|b| map_exprs_in_block(b, f)),
        },
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init: init.map(|s| Box::new(map_exprs_in_stmt(*s, f))),
            cond: cond.map(|e| map_expr(e, f)),
            step: step.map(|e| map_expr(e, f)),
            body: map_exprs_in_block(body, f),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond: map_expr(cond, f),
            body: map_exprs_in_block(body, f),
        },
        Stmt::Return(e) => Stmt::Return(e.map(|e| map_expr(e, f))),
        Stmt::Block(b) => Stmt::Block(map_exprs_in_block(b, f)),
        other @ (Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) | Stmt::Empty) => {
            other
        }
    }
}

/// Rewrites an expression bottom-up: children first, then `f` on the rebuilt
/// node.
pub fn map_expr(expr: Expr, f: &impl Fn(Expr) -> Expr) -> Expr {
    let rebuilt = match expr {
        Expr::IntLit(_) | Expr::Var(_) => expr,
        Expr::Index { base, index } => Expr::Index {
            base: Box::new(map_expr(*base, f)),
            index: Box::new(map_expr(*index, f)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op,
            expr: Box::new(map_expr(*expr, f)),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op,
            lhs: Box::new(map_expr(*lhs, f)),
            rhs: Box::new(map_expr(*rhs, f)),
        },
        Expr::Assign { op, target, value } => Expr::Assign {
            op,
            target: Box::new(map_expr(*target, f)),
            value: Box::new(map_expr(*value, f)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee,
            args: args.into_iter().map(|a| map_expr(a, f)).collect(),
        },
        Expr::Cast { ty, expr } => Expr::Cast {
            ty,
            expr: Box::new(map_expr(*expr, f)),
        },
        Expr::AddrOf(expr) => Expr::AddrOf(Box::new(map_expr(*expr, f))),
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => Expr::Ternary {
            cond: Box::new(map_expr(*cond, f)),
            then_expr: Box::new(map_expr(*then_expr, f)),
            else_expr: Box::new(map_expr(*else_expr, f)),
        },
    };
    f(rebuilt)
}

/// Replaces every read of the variable `name` with `replacement`.
///
/// Assignment *targets* named `name` are left untouched, mirroring how loop
/// unrolling substitutes the current value of the induction variable into the
/// body without renaming stores to it.
pub fn substitute_var_reads(block: Block, name: &str, replacement: &Expr) -> Block {
    map_exprs_in_block(block, &|e| match e {
        Expr::Var(ref v) if v == name => replacement.clone(),
        Expr::Assign { op, target, value } => {
            // `map_expr` is bottom-up, so the target has already been
            // substituted; undo the substitution for a plain variable target.
            let target = match *target {
                ref t if *t == *replacement => Box::new(Expr::Var(name.to_string())),
                t => Box::new(t),
            };
            Expr::Assign { op, target, value }
        }
        other => other,
    })
}

/// Renames every occurrence of variable `from` (reads and writes) to `to`.
pub fn rename_var(block: Block, from: &str, to: &str) -> Block {
    map_exprs_in_block(block, &|e| match e {
        Expr::Var(ref v) if v == from => Expr::Var(to.to_string()),
        other => other,
    })
}

/// Collects the names of all variables read or written anywhere in the block.
pub fn collect_var_names(block: &Block) -> Vec<String> {
    let mut names = Vec::new();
    for_each_expr_in_block(block, &mut |e| {
        if let Expr::Var(name) = e {
            if !names.contains(name) {
                names.push(name.clone());
            }
        }
    });
    names
}

/// Collects every call-expression callee name in the function.
pub fn collect_callees(func: &Function) -> Vec<String> {
    let mut callees = Vec::new();
    for_each_expr_in_block(&func.body, &mut |e| {
        if let Expr::Call { callee, .. } = e {
            if !callees.contains(callee) {
                callees.push(callee.clone());
            }
        }
    });
    callees
}

/// Counts the statements in a function, recursing into nested bodies.
/// Used as a rough "size of the kernel" metric in reports.
pub fn count_stmts(func: &Function) -> usize {
    let mut n = 0;
    for_each_stmt_in_block(&func.body, &mut |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{AssignOp, BinOp};
    use crate::parser::parse_function;

    fn body(src: &str) -> (Function, Block) {
        let f = parse_function(src).unwrap();
        let b = f.body.clone();
        (f, b)
    }

    #[test]
    fn for_each_expr_visits_subexpressions() {
        let (_, b) = body("void f(int n, int *a) { a[n + 1] = n * 2; }");
        let mut count = 0;
        for_each_expr_in_block(&b, &mut |_| count += 1);
        // Assign, Index, Var a, Binary n+1, Var n, 1, Binary n*2, Var n, 2.
        assert_eq!(count, 9);
    }

    #[test]
    fn collect_var_names_dedupes() {
        let (_, b) = body("void f(int n, int *a) { a[n] = a[n] + n; }");
        let names = collect_var_names(&b);
        assert_eq!(names, vec!["a".to_string(), "n".to_string()]);
    }

    #[test]
    fn collect_callees_finds_intrinsics() {
        let f = parse_function(
            "void f(int *a) { __m256i x = _mm256_set1_epi32(3); _mm256_storeu_si256((__m256i *)&a[0], x); }",
        )
        .unwrap();
        assert_eq!(
            collect_callees(&f),
            vec![
                "_mm256_set1_epi32".to_string(),
                "_mm256_storeu_si256".to_string()
            ]
        );
    }

    #[test]
    fn substitute_var_reads_preserves_store_targets() {
        let (_, b) = body("void f(int i, int *a) { i = i + 1; a[i] = i; }");
        let replaced = substitute_var_reads(b, "i", &Expr::lit(4));
        // The read of i on the right-hand sides becomes 4, the assignment
        // target `i` stays a variable.
        match &replaced.stmts[0] {
            Stmt::Expr(Expr::Assign { op, target, value }) => {
                assert_eq!(*op, AssignOp::Assign);
                assert_eq!(**target, Expr::var("i"));
                assert_eq!(**value, Expr::bin(BinOp::Add, Expr::lit(4), Expr::lit(1)));
            }
            other => panic!("unexpected {:?}", other),
        }
        match &replaced.stmts[1] {
            Stmt::Expr(Expr::Assign { target, value, .. }) => {
                assert_eq!(**target, Expr::index(Expr::var("a"), Expr::lit(4)));
                assert_eq!(**value, Expr::lit(4));
            }
            other => panic!("unexpected {:?}", other),
        }
    }

    #[test]
    fn rename_var_renames_reads_and_writes() {
        let (_, b) = body("void f(int i, int *a) { i = i + 1; a[i] = 0; }");
        let renamed = rename_var(b, "i", "k");
        let names = collect_var_names(&renamed);
        assert!(names.contains(&"k".to_string()));
        assert!(!names.contains(&"i".to_string()));
    }

    #[test]
    fn count_stmts_recurses() {
        let f = parse_function(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i] > 0) { a[i] = 0; } } }",
        )
        .unwrap();
        // for, decl (init), if, assignment
        assert_eq!(count_stmts(&f), 4);
    }

    #[test]
    fn map_exprs_constant_fold_example() {
        let (_, b) = body("void f(int *a) { a[1 + 2] = 5; }");
        let folded = map_exprs_in_block(b, &|e| match e {
            Expr::Binary {
                op: BinOp::Add,
                ref lhs,
                ref rhs,
            } => match (lhs.as_int_lit(), rhs.as_int_lit()) {
                (Some(a), Some(b)) => Expr::lit(a + b),
                _ => e,
            },
            other => other,
        });
        match &folded.stmts[0] {
            Stmt::Expr(Expr::Assign { target, .. }) => {
                assert_eq!(**target, Expr::index(Expr::var("a"), Expr::lit(3)));
            }
            other => panic!("unexpected {:?}", other),
        }
    }
}
