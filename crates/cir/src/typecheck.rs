//! A simple type checker for the mini-C subset.
//!
//! Type checking plays the role of "does it compile" in the pipeline: the
//! paper reports candidates under a *Cannot compile* row in Table 2, and the
//! multi-agent FSM feeds compile errors back to the vectorizer agent. A
//! candidate that references unknown variables, calls an unknown intrinsic or
//! mixes `__m256i` and `int` values is rejected here with a [`TypeError`].

use crate::ast::{BinOp, Block, Expr, Function, Stmt, Type, UnOp};
use crate::error::TypeError;
use crate::intrinsics::{intrinsic_sig, looks_like_intrinsic};
use std::collections::HashMap;

/// The result of type checking a function: the type of every named variable
/// (parameters and locals). When a name is declared in several scopes the
/// innermost declaration seen last wins; the TSVC subset does not rely on
/// shadowing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TypeInfo {
    /// Variable name to type.
    pub vars: HashMap<String, Type>,
    /// Labels declared in the function body.
    pub labels: Vec<String>,
}

impl TypeInfo {
    /// The type of a variable, if it was declared anywhere in the function.
    pub fn var_type(&self, name: &str) -> Option<&Type> {
        self.vars.get(name)
    }

    /// Names of all `__m256i` locals.
    pub fn vector_vars(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .vars
            .iter()
            .filter(|(_, ty)| **ty == Type::M256i)
            .map(|(name, _)| name.as_str())
            .collect();
        v.sort_unstable();
        v
    }
}

/// Type checks a function definition.
///
/// # Errors
///
/// Returns a [`TypeError`] describing the first problem found: use of an
/// undeclared variable, an unknown function or intrinsic, wrong argument
/// counts or types, assignment type mismatches, invalid operand types, or a
/// `goto` to an undefined label.
pub fn type_check(func: &Function) -> Result<TypeInfo, TypeError> {
    let mut checker = Checker::new(func);
    checker
        .check_function()
        .map_err(|e| e.in_function(&func.name))?;
    Ok(checker.info)
}

/// Convenience wrapper: returns `true` if the function type checks.
pub fn compiles(func: &Function) -> bool {
    type_check(func).is_ok()
}

struct Checker<'a> {
    func: &'a Function,
    scopes: Vec<HashMap<String, Type>>,
    info: TypeInfo,
}

impl<'a> Checker<'a> {
    fn new(func: &'a Function) -> Checker<'a> {
        Checker {
            func,
            scopes: vec![HashMap::new()],
            info: TypeInfo::default(),
        }
    }

    fn declare(&mut self, name: &str, ty: Type) {
        self.info.vars.insert(name.to_string(), ty.clone());
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(name.to_string(), ty);
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn check_function(&mut self) -> Result<(), TypeError> {
        for param in &self.func.params {
            if param.ty == Type::Void {
                return Err(TypeError::new(format!(
                    "parameter `{}` cannot have type void",
                    param.name
                )));
            }
            self.declare(&param.name, param.ty.clone());
        }
        self.collect_labels(&self.func.body.clone());
        self.check_block(&self.func.body.clone())?;
        self.check_gotos(&self.func.body.clone())?;
        Ok(())
    }

    fn collect_labels(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Label(name) => self.info.labels.push(name.clone()),
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.collect_labels(then_branch);
                    if let Some(e) = else_branch {
                        self.collect_labels(e);
                    }
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => self.collect_labels(body),
                Stmt::Block(b) => self.collect_labels(b),
                _ => {}
            }
        }
    }

    fn check_gotos(&self, block: &Block) -> Result<(), TypeError> {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Goto(label) if !self.info.labels.contains(label) => {
                    return Err(TypeError::new(format!(
                        "goto to undefined label `{}`",
                        label
                    )));
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    self.check_gotos(then_branch)?;
                    if let Some(e) = else_branch {
                        self.check_gotos(e)?;
                    }
                }
                Stmt::For { body, .. } | Stmt::While { body, .. } => self.check_gotos(body)?,
                Stmt::Block(b) => self.check_gotos(b)?,
                _ => {}
            }
        }
        Ok(())
    }

    fn check_block(&mut self, block: &Block) -> Result<(), TypeError> {
        self.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.check_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), TypeError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                if *ty == Type::Void {
                    return Err(TypeError::new(format!(
                        "variable `{}` cannot have type void",
                        name
                    )));
                }
                if let Some(init) = init {
                    let init_ty = self.check_expr(init)?;
                    if !assignable(ty, &init_ty) {
                        return Err(TypeError::new(format!(
                            "cannot initialize `{}` of type {} with a value of type {}",
                            name, ty, init_ty
                        )));
                    }
                }
                self.declare(name, ty.clone());
                Ok(())
            }
            Stmt::Expr(e) => {
                self.check_expr(e)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond_ty = self.check_expr(cond)?;
                require_scalar_condition(&cond_ty)?;
                self.check_block(then_branch)?;
                if let Some(else_branch) = else_branch {
                    self.check_block(else_branch)?;
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.check_stmt(init)?;
                }
                if let Some(cond) = cond {
                    let cond_ty = self.check_expr(cond)?;
                    require_scalar_condition(&cond_ty)?;
                }
                if let Some(step) = step {
                    self.check_expr(step)?;
                }
                self.check_block(body)?;
                self.scopes.pop();
                Ok(())
            }
            Stmt::While { cond, body } => {
                let cond_ty = self.check_expr(cond)?;
                require_scalar_condition(&cond_ty)?;
                self.check_block(body)
            }
            Stmt::Return(None) => Ok(()),
            Stmt::Return(Some(e)) => {
                let ty = self.check_expr(e)?;
                if self.func.ret == Type::Void {
                    return Err(TypeError::new(format!(
                        "void function returns a value of type {}",
                        ty
                    )));
                }
                Ok(())
            }
            Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) | Stmt::Empty => Ok(()),
            Stmt::Block(b) => self.check_block(b),
        }
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<Type, TypeError> {
        match expr {
            Expr::IntLit(_) => Ok(Type::Int),
            Expr::Var(name) => self
                .lookup(name)
                .cloned()
                .ok_or_else(|| TypeError::new(format!("use of undeclared variable `{}`", name))),
            Expr::Index { base, index } => {
                let base_ty = self.check_expr(base)?;
                let index_ty = self.check_expr(index)?;
                if index_ty != Type::Int {
                    return Err(TypeError::new(format!(
                        "array index must be int, found {}",
                        index_ty
                    )));
                }
                match base_ty.pointee() {
                    Some(pointee) => Ok(pointee.clone()),
                    None => Err(TypeError::new(format!(
                        "cannot index a value of type {}",
                        base_ty
                    ))),
                }
            }
            Expr::Unary { op, expr } => {
                let ty = self.check_expr(expr)?;
                match op {
                    UnOp::Neg | UnOp::Not | UnOp::BitNot => {
                        if ty != Type::Int {
                            return Err(TypeError::new(format!(
                                "unary `{}` requires an int operand, found {}",
                                op.symbol(),
                                ty
                            )));
                        }
                        Ok(Type::Int)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs)?;
                let rt = self.check_expr(rhs)?;
                self.binary_type(*op, &lt, &rt)
            }
            Expr::Assign { op, target, value } => {
                let target_ty = self.check_lvalue(target)?;
                let value_ty = self.check_expr(value)?;
                if let Some(binop) = op.binop() {
                    // Compound assignment: target op= value requires target (op) value to be valid.
                    let result = self.binary_type(binop, &target_ty, &value_ty)?;
                    if !assignable(&target_ty, &result) {
                        return Err(TypeError::new(format!(
                            "cannot assign a value of type {} to a target of type {}",
                            result, target_ty
                        )));
                    }
                } else if !assignable(&target_ty, &value_ty) {
                    return Err(TypeError::new(format!(
                        "cannot assign a value of type {} to a target of type {}",
                        value_ty, target_ty
                    )));
                }
                Ok(target_ty)
            }
            Expr::Call { callee, args } => self.check_call(callee, args),
            Expr::Cast { ty, expr } => {
                let from = self.check_expr(expr)?;
                match (ty, &from) {
                    // Pointer-to-pointer casts (the `(__m256i *)&a[i]` idiom).
                    (Type::Ptr(_), Type::Ptr(_)) => Ok(ty.clone()),
                    // int casts are no-ops in this subset.
                    (Type::Int, Type::Int) => Ok(Type::Int),
                    _ => Err(TypeError::new(format!(
                        "unsupported cast from {} to {}",
                        from, ty
                    ))),
                }
            }
            Expr::AddrOf(inner) => {
                let ty = self.check_lvalue(inner)?;
                Ok(Type::Ptr(Box::new(ty)))
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let cond_ty = self.check_expr(cond)?;
                require_scalar_condition(&cond_ty)?;
                let t = self.check_expr(then_expr)?;
                let e = self.check_expr(else_expr)?;
                if t != e {
                    return Err(TypeError::new(format!(
                        "ternary branches have different types: {} and {}",
                        t, e
                    )));
                }
                Ok(t)
            }
        }
    }

    fn check_lvalue(&mut self, expr: &Expr) -> Result<Type, TypeError> {
        match expr {
            Expr::Var(_) | Expr::Index { .. } => self.check_expr(expr),
            other => Err(TypeError::new(format!(
                "expression `{}` is not assignable",
                crate::printer::print_expr(other)
            ))),
        }
    }

    fn check_call(&mut self, callee: &str, args: &[Expr]) -> Result<Type, TypeError> {
        let Some(sig) = intrinsic_sig(callee) else {
            if looks_like_intrinsic(callee) {
                return Err(TypeError::new(format!(
                    "call to unsupported intrinsic `{}`",
                    callee
                )));
            }
            return Err(TypeError::new(format!(
                "call to unknown function `{}`",
                callee
            )));
        };
        if args.len() != sig.params.len() {
            return Err(TypeError::new(format!(
                "`{}` expects {} arguments, found {}",
                callee,
                sig.params.len(),
                args.len()
            )));
        }
        for (i, (arg, slot)) in args.iter().zip(sig.params.iter()).enumerate() {
            let ty = self.check_expr(arg)?;
            if !slot.accepts(&ty) {
                return Err(TypeError::new(format!(
                    "argument {} of `{}` has type {}, which is not accepted",
                    i + 1,
                    callee,
                    ty
                )));
            }
        }
        Ok(sig.ret.result_type())
    }

    fn binary_type(&self, op: BinOp, lhs: &Type, rhs: &Type) -> Result<Type, TypeError> {
        match (lhs, rhs) {
            (Type::Int, Type::Int) => Ok(Type::Int),
            // Pointer arithmetic: `a + i`, `i + a`, `a - i` produce a pointer.
            (Type::Ptr(_), Type::Int) if matches!(op, BinOp::Add | BinOp::Sub) => Ok(lhs.clone()),
            (Type::Int, Type::Ptr(_)) if op == BinOp::Add => Ok(rhs.clone()),
            _ => Err(TypeError::new(format!(
                "invalid operands to `{}`: {} and {} (vector values must use intrinsics)",
                op.symbol(),
                lhs,
                rhs
            ))),
        }
    }
}

fn assignable(target: &Type, value: &Type) -> bool {
    match (target, value) {
        (Type::Int, Type::Int) => true,
        (Type::M256i, Type::M256i) => true,
        (Type::Ptr(a), Type::Ptr(b)) => a == b || **a == Type::M256i || **b == Type::M256i,
        _ => false,
    }
}

fn require_scalar_condition(ty: &Type) -> Result<(), TypeError> {
    if *ty == Type::Int {
        Ok(())
    } else {
        Err(TypeError::new(format!(
            "condition must be int, found {}",
            ty
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn check(src: &str) -> Result<TypeInfo, TypeError> {
        type_check(&parse_function(src).unwrap())
    }

    #[test]
    fn accepts_scalar_kernel() {
        let info = check(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        )
        .unwrap();
        assert_eq!(info.var_type("a"), Some(&Type::int_ptr()));
        assert_eq!(info.var_type("i"), Some(&Type::Int));
    }

    #[test]
    fn accepts_vectorized_kernel() {
        let info = check(
            "void v(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); __m256i y = _mm256_add_epi32(x, _mm256_set1_epi32(1)); _mm256_storeu_si256((__m256i *)&a[i], y); } for (; i < n; i++) { a[i] = b[i] + 1; } }",
        )
        .unwrap();
        assert_eq!(info.vector_vars(), vec!["x", "y"]);
    }

    #[test]
    fn rejects_undeclared_variable() {
        let err = check("void f(int n) { q = 1; }").unwrap_err();
        assert!(err.to_string().contains("undeclared variable `q`"));
    }

    #[test]
    fn rejects_unknown_function_and_intrinsic() {
        let err = check("void f(int n, int *a) { a[0] = foo(n); }").unwrap_err();
        assert!(err.to_string().contains("unknown function"));
        let err = check(
            "void f(int n, int *a) { __m256i x = _mm256_dpbusd_epi32(_mm256_setzero_si256(), _mm256_setzero_si256()); }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("unsupported intrinsic"));
    }

    #[test]
    fn rejects_wrong_arity() {
        let err = check("void f(int *a) { __m256i x = _mm256_add_epi32(_mm256_setzero_si256()); }")
            .unwrap_err();
        assert!(err.to_string().contains("expects 2 arguments"));
    }

    #[test]
    fn rejects_mixing_vector_and_scalar() {
        let err = check("void f(int n, int *a) { __m256i x = _mm256_set1_epi32(1); int y = x; }")
            .unwrap_err();
        assert!(err.to_string().contains("cannot initialize"));
        let err = check("void f(int n) { __m256i x = _mm256_set1_epi32(1); __m256i y = x + x; }")
            .unwrap_err();
        assert!(err.to_string().contains("invalid operands"));
    }

    #[test]
    fn rejects_indexing_scalars() {
        let err = check("void f(int n) { n[0] = 1; }").unwrap_err();
        assert!(err.to_string().contains("cannot index"));
    }

    #[test]
    fn rejects_goto_undefined_label() {
        let err = check("void f(int n) { goto L99; }").unwrap_err();
        assert!(err.to_string().contains("undefined label"));
    }

    #[test]
    fn accepts_goto_with_label() {
        assert!(check("void f(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L1; } a[i] = 1; L1: a[i] = 2; } }").is_ok());
    }

    #[test]
    fn rejects_vector_condition() {
        let err = check("void f(int n) { __m256i x = _mm256_set1_epi32(1); if (x) { n = 1; } }")
            .unwrap_err();
        assert!(err.to_string().contains("condition must be int"));
    }

    #[test]
    fn pointer_arithmetic_is_allowed() {
        assert!(check(
            "void f(int n, int *a, int *b) { for (int i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)(b + i)); _mm256_storeu_si256((__m256i *)(a + i), x); } }"
        )
        .is_ok());
    }

    #[test]
    fn void_return_with_value_rejected() {
        let err = check("void f(int n) { return n; }").unwrap_err();
        assert!(err.to_string().contains("void function returns"));
    }

    #[test]
    fn compiles_helper() {
        let f = parse_function("void f(int n, int *a) { a[0] = n; }").unwrap();
        assert!(compiles(&f));
    }
}
