//! Pretty printer: turns the AST back into compilable C-like source.
//!
//! The printer is used to render vectorized candidates produced by the agents
//! (so that transcripts look like the paper's figures) and to round-trip
//! programs in tests. Printing then re-parsing yields a structurally equal
//! AST; this invariant is checked with property tests in the crate root.

use crate::ast::{Block, Expr, Function, Program, Stmt, Type};
use std::fmt::Write;

/// Renders a whole program as C source, including the `immintrin.h` include
/// when any function references `__m256i` or an intrinsic.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    if program.functions.iter().any(uses_vectors) {
        out.push_str("#include <immintrin.h>\n\n");
    }
    for (i, func) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(func));
    }
    out
}

/// Renders a single function definition as C source.
pub fn print_function(func: &Function) -> String {
    let mut p = Printer::new();
    p.function(func);
    p.out
}

/// Renders a single statement (used in diagnostics and agent transcripts).
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(stmt);
    p.out.trim_end().to_string()
}

/// Renders a single expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(expr, 0);
    p.out
}

/// Returns `true` if the function mentions `__m256i` or calls an intrinsic.
fn uses_vectors(func: &Function) -> bool {
    fn block_uses(block: &Block) -> bool {
        block.stmts.iter().any(stmt_uses)
    }
    fn stmt_uses(stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Decl { ty, init, .. } => {
                *ty == Type::M256i
                    || matches!(ty, Type::Ptr(inner) if **inner == Type::M256i)
                    || init.as_ref().is_some_and(expr_uses)
            }
            Stmt::Expr(e) => expr_uses(e),
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_uses(cond)
                    || block_uses(then_branch)
                    || else_branch.as_ref().is_some_and(block_uses)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                init.as_deref().is_some_and(stmt_uses)
                    || cond.as_ref().is_some_and(expr_uses)
                    || step.as_ref().is_some_and(expr_uses)
                    || block_uses(body)
            }
            Stmt::While { cond, body } => expr_uses(cond) || block_uses(body),
            Stmt::Return(e) => e.as_ref().is_some_and(expr_uses),
            Stmt::Block(b) => block_uses(b),
            Stmt::Break | Stmt::Continue | Stmt::Goto(_) | Stmt::Label(_) | Stmt::Empty => false,
        }
    }
    fn expr_uses(expr: &Expr) -> bool {
        match expr {
            Expr::Call { callee, args } => {
                callee.starts_with("_mm256") || args.iter().any(expr_uses)
            }
            Expr::Cast { ty, expr } => {
                *ty == Type::M256i
                    || matches!(ty, Type::Ptr(inner) if **inner == Type::M256i)
                    || expr_uses(expr)
            }
            Expr::Index { base, index } => expr_uses(base) || expr_uses(index),
            Expr::Unary { expr, .. } | Expr::AddrOf(expr) => expr_uses(expr),
            Expr::Binary { lhs, rhs, .. } => expr_uses(lhs) || expr_uses(rhs),
            Expr::Assign { target, value, .. } => expr_uses(target) || expr_uses(value),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => expr_uses(cond) || expr_uses(then_expr) || expr_uses(else_expr),
            Expr::IntLit(_) | Expr::Var(_) => false,
        }
    }
    func.params
        .iter()
        .any(|p| p.ty == Type::M256i || matches!(&p.ty, Type::Ptr(inner) if **inner == Type::M256i))
        || block_uses(&func.body)
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Printer {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line_start(&mut self) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
    }

    fn function(&mut self, func: &Function) {
        let _ = write!(self.out, "{} {}(", type_prefix(&func.ret), func.name);
        for (i, param) in func.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            let _ = write!(self.out, "{}{}", type_decl_prefix(&param.ty), param.name);
        }
        self.out.push_str(") ");
        self.block(&func.body);
        self.out.push('\n');
    }

    fn block(&mut self, block: &Block) {
        self.out.push_str("{\n");
        self.indent += 1;
        for stmt in &block.stmts {
            self.stmt(stmt);
        }
        self.indent -= 1;
        self.line_start();
        self.out.push('}');
    }

    fn stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Label(name) => {
                // Labels are printed without indentation, like in the paper's listings.
                let _ = writeln!(self.out, "{}:", name);
                return;
            }
            _ => self.line_start(),
        }
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let _ = write!(self.out, "{}{}", type_decl_prefix(ty), name);
                if let Some(init) = init {
                    self.out.push_str(" = ");
                    self.expr(init, 0);
                }
                self.out.push_str(";\n");
            }
            Stmt::Expr(e) => {
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.out.push_str("if (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.block(then_branch);
                if let Some(else_branch) = else_branch {
                    self.out.push_str(" else ");
                    self.block(else_branch);
                }
                self.out.push('\n');
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.out.push_str("for (");
                match init.as_deref() {
                    Some(Stmt::Decl { ty, name, init }) => {
                        let _ = write!(self.out, "{}{}", type_decl_prefix(ty), name);
                        if let Some(init) = init {
                            self.out.push_str(" = ");
                            self.expr(init, 0);
                        }
                    }
                    Some(Stmt::Expr(e)) => self.expr(e, 0),
                    Some(other) => {
                        // Unreachable by construction of the parser, but keep
                        // the printer total.
                        let _ = write!(self.out, "/* {:?} */", other);
                    }
                    None => {}
                }
                self.out.push_str("; ");
                if let Some(cond) = cond {
                    self.expr(cond, 0);
                }
                self.out.push_str("; ");
                if let Some(step) = step {
                    self.expr(step, 0);
                }
                self.out.push_str(") ");
                self.block(body);
                self.out.push('\n');
            }
            Stmt::While { cond, body } => {
                self.out.push_str("while (");
                self.expr(cond, 0);
                self.out.push_str(") ");
                self.block(body);
                self.out.push('\n');
            }
            Stmt::Return(None) => self.out.push_str("return;\n"),
            Stmt::Return(Some(e)) => {
                self.out.push_str("return ");
                self.expr(e, 0);
                self.out.push_str(";\n");
            }
            Stmt::Break => self.out.push_str("break;\n"),
            Stmt::Continue => self.out.push_str("continue;\n"),
            Stmt::Goto(label) => {
                let _ = writeln!(self.out, "goto {};", label);
            }
            Stmt::Block(b) => {
                self.block(b);
                self.out.push('\n');
            }
            Stmt::Empty => self.out.push_str(";\n"),
            Stmt::Label(_) => unreachable!("labels handled above"),
        }
    }

    /// Prints an expression; `parent_prec` is the binding strength of the
    /// surrounding context so that parentheses are inserted only when needed.
    fn expr(&mut self, expr: &Expr, parent_prec: u8) {
        match expr {
            Expr::IntLit(v) => {
                let _ = write!(self.out, "{}", v);
            }
            Expr::Var(name) => self.out.push_str(name),
            Expr::Index { base, index } => {
                self.expr(base, 14);
                self.out.push('[');
                self.expr(index, 0);
                self.out.push(']');
            }
            Expr::Unary { op, expr } => {
                let prec = 12;
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.out.push_str(op.symbol());
                self.expr(expr, prec + 1);
                if paren {
                    self.out.push(')');
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let prec = binop_prec(*op);
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.expr(lhs, prec);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(rhs, prec + 1);
                if paren {
                    self.out.push(')');
                }
            }
            Expr::Assign { op, target, value } => {
                let prec = 1;
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.expr(target, 2);
                let _ = write!(self.out, " {} ", op.symbol());
                self.expr(value, prec);
                if paren {
                    self.out.push(')');
                }
            }
            Expr::Call { callee, args } => {
                self.out.push_str(callee);
                self.out.push('(');
                for (i, arg) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(arg, 0);
                }
                self.out.push(')');
            }
            Expr::Cast { ty, expr } => {
                let prec = 12;
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                let _ = write!(self.out, "({})", ty);
                self.expr(expr, prec);
                if paren {
                    self.out.push(')');
                }
            }
            Expr::AddrOf(expr) => {
                let prec = 12;
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.out.push('&');
                self.expr(expr, prec + 1);
                if paren {
                    self.out.push(')');
                }
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let prec = 2;
                let paren = parent_prec > prec;
                if paren {
                    self.out.push('(');
                }
                self.expr(cond, prec + 1);
                self.out.push_str(" ? ");
                self.expr(then_expr, 0);
                self.out.push_str(" : ");
                self.expr(else_expr, prec);
                if paren {
                    self.out.push(')');
                }
            }
        }
    }
}

fn binop_prec(op: crate::ast::BinOp) -> u8 {
    use crate::ast::BinOp::*;
    match op {
        Or => 3,
        And => 4,
        BitOr => 5,
        BitXor => 6,
        BitAnd => 7,
        Eq | Ne => 8,
        Lt | Le | Gt | Ge => 9,
        Shl | Shr => 10,
        Add | Sub => 11,
        Mul | Div | Rem => 12,
    }
}

/// Type as it appears before a function name (`void `, `int `).
fn type_prefix(ty: &Type) -> String {
    ty.to_string()
}

/// Type as it appears before a declared name: pointers bind to the name
/// (`int *a`), non-pointers get a trailing space (`int a`).
fn type_decl_prefix(ty: &Type) -> String {
    match ty {
        Type::Ptr(_) => format!("{}", ty),
        other => format!("{} ", other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_function};

    fn roundtrip_fn(src: &str) {
        let f1 = parse_function(src).unwrap();
        let printed = print_function(&f1);
        let f2 = parse_function(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{}", e, printed));
        assert_eq!(f1, f2, "round trip changed the AST:\n{}", printed);
    }

    #[test]
    fn roundtrip_scalar_kernel() {
        roundtrip_fn(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
    }

    #[test]
    fn roundtrip_vector_kernel() {
        roundtrip_fn(
            "void v(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], x); } for (; i < n; i += 1) { a[i] = b[i]; } }",
        );
    }

    #[test]
    fn roundtrip_control_flow() {
        roundtrip_fn(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        );
    }

    #[test]
    fn roundtrip_goto() {
        roundtrip_fn(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
        );
    }

    #[test]
    fn include_emitted_only_for_vector_code() {
        let scalar = parse_function("void f(int n, int *a) { a[0] = n; }").unwrap();
        let program = Program {
            functions: vec![scalar],
        };
        assert!(!print_program(&program).contains("immintrin"));

        let vector = parse_function(
            "void g(int n, int *a) { __m256i z = _mm256_setzero_si256(); _mm256_storeu_si256((__m256i *)&a[0], z); }",
        )
        .unwrap();
        let program = Program {
            functions: vec![vector],
        };
        assert!(print_program(&program).contains("#include <immintrin.h>"));
    }

    #[test]
    fn expr_parenthesization_preserves_meaning() {
        let e = parse_expr("(a + b) * c").unwrap();
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(e, reparsed);
        assert!(printed.contains('('), "needs parens: {}", printed);

        let e = parse_expr("a + b * c").unwrap();
        let printed = print_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn ternary_and_assignment_print() {
        let e = parse_expr("x = a > b ? a : b").unwrap();
        let printed = print_expr(&e);
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    use crate::ast::Program;
}
