//! Error types for the mini-C front end.

use std::error::Error;
use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a new position.
    pub fn new(line: u32, col: u32) -> Pos {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// An error produced while lexing, parsing or type checking mini-C source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Position at which the problem was detected.
    pub pos: Pos,
}

impl ParseError {
    /// Creates a new error at a position.
    pub fn new(message: impl Into<String>, pos: Pos) -> ParseError {
        ParseError {
            message: message.into(),
            pos,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

/// An error produced by the type checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Name of the function in which the problem occurred, if known.
    pub function: Option<String>,
}

impl TypeError {
    /// Creates a new type error.
    pub fn new(message: impl Into<String>) -> TypeError {
        TypeError {
            message: message.into(),
            function: None,
        }
    }

    /// Attaches the enclosing function name.
    pub fn in_function(mut self, name: impl Into<String>) -> TypeError {
        self.function = Some(name.into());
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.function {
            Some(func) => write!(f, "type error in `{}`: {}", func, self.message),
            None => write!(f, "type error: {}", self.message),
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display() {
        let e = ParseError::new("unexpected token `+`", Pos::new(3, 7));
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected token `+`");
    }

    #[test]
    fn type_error_display() {
        let e = TypeError::new("cannot index a scalar").in_function("s000");
        assert_eq!(e.to_string(), "type error in `s000`: cannot index a scalar");
        let bare = TypeError::new("unknown variable `q`");
        assert_eq!(bare.to_string(), "type error: unknown variable `q`");
    }
}
