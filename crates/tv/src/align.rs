//! Loop alignment (Section 3.1 of the paper).
//!
//! The scalar and vectorized loops advance by different steps, so before the
//! two programs can be compared as loop-free programs the verifier must know
//! how many scalar iterations correspond to one vector iteration. The paper
//! computes the least common multiple of the two steps, fixes the vector
//! unroll factor to one, and unrolls the scalar program `lcm / step1` times,
//! under the assumption `(end1 - start1) % m == 0` (no scalar epilogue is
//! needed).

use lv_analysis::{loop_nest, CanonicalLoop, StepKind};
use lv_cir::ast::Function;
use lv_cir::printer::print_expr;
use std::fmt;

/// Why alignment failed. Alignment failures make the whole verification
/// attempt `Inconclusive`, mirroring the cases the paper's analysis "does not
/// handle".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlignmentError {
    /// Human-readable reason.
    pub reason: String,
}

impl AlignmentError {
    fn new(reason: impl Into<String>) -> AlignmentError {
        AlignmentError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for AlignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop alignment failed: {}", self.reason)
    }
}

impl std::error::Error for AlignmentError {}

/// The result of aligning a scalar kernel with a vectorized candidate.
#[derive(Debug, Clone)]
pub struct Alignment {
    /// Scalar iterations per vector iteration (the unroll factor `m`).
    pub unroll_factor: i64,
    /// The scalar loop step.
    pub scalar_step: i64,
    /// The vector loop step.
    pub vector_step: i64,
    /// The canonical scalar loop.
    pub scalar_loop: CanonicalLoop,
    /// The canonical vector loop (the first loop of the candidate).
    pub vector_loop: CanonicalLoop,
    /// `true` if the candidate has a scalar epilogue loop after the vector
    /// loop (allowed; it executes zero iterations under the divisibility
    /// assumption).
    pub has_epilogue: bool,
    /// `true` if both functions have syntactically identical outer loops and
    /// only the inner loops were aligned.
    pub nested: bool,
}

impl Alignment {
    /// The divisibility assumption the paper adds at the LLVM level:
    /// `(end1 - start1) % m == 0`, rendered for reports.
    pub fn assumption(&self) -> String {
        format!(
            "assume (({}) - ({})) % {} == 0",
            print_expr(&self.scalar_loop.bound),
            print_expr(&self.scalar_loop.start),
            self.unroll_factor * self.scalar_step.abs().max(1)
        )
    }
}

/// Aligns the loops of a scalar kernel and a vectorized candidate.
///
/// # Errors
///
/// Returns an [`AlignmentError`] when either function has no canonical loop,
/// the steps are not constant, the steps are incompatible, the start values
/// differ syntactically, or a nested candidate's outer loop differs from the
/// scalar outer loop.
pub fn align(scalar: &Function, vector: &Function) -> Result<Alignment, AlignmentError> {
    let scalar_nest = loop_nest(scalar);
    let vector_nest = loop_nest(vector);

    let (scalar_loop, vector_loop, nested) = if scalar_nest.is_nested() {
        // Nested loops: the paper requires syntactically identical outer
        // loops and aligns only the inner loops.
        if !vector_nest.is_nested() {
            return Err(AlignmentError::new(
                "the scalar kernel has a nested loop but the candidate does not",
            ));
        }
        let s_outer = scalar_nest.loops.first().expect("nested implies a loop");
        let v_outer = vector_nest.loops.first().expect("nested implies a loop");
        if s_outer.iv != v_outer.iv
            || s_outer.start != v_outer.start
            || s_outer.bound != v_outer.bound
            || s_outer.step != v_outer.step
        {
            return Err(AlignmentError::new(
                "outer loops are not syntactically identical",
            ));
        }
        (
            scalar_nest.inner[0]
                .first()
                .cloned()
                .ok_or_else(|| AlignmentError::new("scalar inner loop is not canonical"))?,
            vector_nest.inner[0]
                .first()
                .cloned()
                .ok_or_else(|| AlignmentError::new("candidate inner loop is not canonical"))?,
            true,
        )
    } else {
        let s = scalar_nest
            .single()
            .or_else(|| scalar_nest.loops.first())
            .cloned()
            .ok_or_else(|| AlignmentError::new("the scalar kernel has no canonical for-loop"))?;
        let v = vector_nest
            .loops
            .first()
            .cloned()
            .ok_or_else(|| AlignmentError::new("the candidate has no canonical for-loop"))?;
        (s, v, false)
    };

    let scalar_step = match scalar_loop.step {
        StepKind::Constant(c) if c != 0 => c,
        StepKind::Constant(_) => return Err(AlignmentError::new("scalar loop has a zero step")),
        StepKind::Symbolic(_) => {
            return Err(AlignmentError::new(
                "scalar loop step is not a constant literal",
            ))
        }
    };
    let vector_step = match vector_loop.step {
        StepKind::Constant(c) if c != 0 => c,
        StepKind::Constant(_) => return Err(AlignmentError::new("vector loop has a zero step")),
        StepKind::Symbolic(_) => {
            return Err(AlignmentError::new(
                "vector loop step is not a constant literal",
            ))
        }
    };
    if scalar_step.signum() != vector_step.signum() {
        return Err(AlignmentError::new(
            "scalar and vector loops advance in different directions",
        ));
    }

    let lcm = lcm(scalar_step.unsigned_abs(), vector_step.unsigned_abs()) as i64;
    if lcm != vector_step.abs() {
        // The paper fixes the vector unroll factor to 1, which requires the
        // vector step to be a multiple of the scalar step.
        return Err(AlignmentError::new(format!(
            "vector step {} is not a multiple of scalar step {}",
            vector_step, scalar_step
        )));
    }
    let unroll_factor = lcm / scalar_step.abs();

    if scalar_loop.start != vector_loop.start {
        return Err(AlignmentError::new(format!(
            "loop start values differ: `{}` vs `{}`",
            print_expr(&scalar_loop.start),
            print_expr(&vector_loop.start)
        )));
    }

    // Count extra loops in the candidate: at most one epilogue is expected.
    let extra_loops = vector_nest.loops.len().saturating_sub(1);
    if !nested && extra_loops > 1 {
        return Err(AlignmentError::new(format!(
            "the candidate has {} loops; expected a vector loop plus at most one epilogue",
            vector_nest.loops.len()
        )));
    }

    Ok(Alignment {
        unroll_factor,
        scalar_step,
        vector_step,
        scalar_loop,
        vector_loop,
        has_epilogue: !nested && extra_loops == 1,
        nested,
    })
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    const SCALAR: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const VECTOR: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";

    #[test]
    fn aligns_standard_pair() {
        let a = align(
            &parse_function(SCALAR).unwrap(),
            &parse_function(VECTOR).unwrap(),
        )
        .unwrap();
        assert_eq!(a.unroll_factor, 8);
        assert_eq!(a.scalar_step, 1);
        assert_eq!(a.vector_step, 8);
        assert!(a.has_epilogue);
        assert!(a.assumption().contains("% 8 == 0"));
    }

    #[test]
    fn strided_scalar_loop() {
        let scalar = parse_function(
            "void f(int n, int *a) { for (int i = 0; i < n; i += 2) { a[i] = 0; } }",
        )
        .unwrap();
        let vector = parse_function(
            "void f(int n, int *a) { for (int i = 0; i + 16 <= n; i += 16) { _mm256_storeu_si256((__m256i *)&a[i], _mm256_setzero_si256()); } }",
        )
        .unwrap();
        let a = align(&scalar, &vector).unwrap();
        assert_eq!(a.unroll_factor, 8);
    }

    #[test]
    fn mismatched_starts_fail() {
        let scalar =
            parse_function("void f(int n, int *a) { for (int i = 1; i < n; i++) { a[i] = 0; } }")
                .unwrap();
        let vector = parse_function(
            "void f(int n, int *a) { for (int i = 0; i + 8 <= n; i += 8) { _mm256_storeu_si256((__m256i *)&a[i], _mm256_setzero_si256()); } }",
        )
        .unwrap();
        let err = align(&scalar, &vector).unwrap_err();
        assert!(err.reason.contains("start values differ"));
    }

    #[test]
    fn symbolic_step_fails() {
        let scalar = parse_function(
            "void f(int n, int k, int *a) { for (int i = 0; i < n; i += k) { a[i] = 0; } }",
        )
        .unwrap();
        let vector = parse_function(
            "void f(int n, int k, int *a) { for (int i = 0; i + 8 <= n; i += 8) { _mm256_storeu_si256((__m256i *)&a[i], _mm256_setzero_si256()); } }",
        )
        .unwrap();
        let err = align(&scalar, &vector).unwrap_err();
        assert!(err.reason.contains("not a constant literal"));
    }

    #[test]
    fn no_loop_fails() {
        let scalar = parse_function("void f(int n, int *a) { a[0] = n; }").unwrap();
        let vector = parse_function(VECTOR).unwrap();
        assert!(align(&scalar, &vector).is_err());
    }

    #[test]
    fn incompatible_steps_fail() {
        let scalar = parse_function(
            "void f(int n, int *a) { for (int i = 0; i < n; i += 3) { a[i] = 0; } }",
        )
        .unwrap();
        let vector = parse_function(
            "void f(int n, int *a) { for (int i = 0; i + 8 <= n; i += 8) { _mm256_storeu_si256((__m256i *)&a[i], _mm256_setzero_si256()); } }",
        )
        .unwrap();
        let err = align(&scalar, &vector).unwrap_err();
        assert!(err.reason.contains("not a multiple"));
    }

    #[test]
    fn nested_identical_outer_loops_align() {
        let scalar = parse_function(
            "void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i < n; i++) { a[i] = a[i] + 1; } } }",
        )
        .unwrap();
        let vector = parse_function(
            "void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&a[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } } }",
        )
        .unwrap();
        let a = align(&scalar, &vector).unwrap();
        assert!(a.nested);
        assert_eq!(a.unroll_factor, 8);
    }

    #[test]
    fn nested_mismatched_outer_loops_fail() {
        let scalar = parse_function(
            "void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i < n; i++) { a[i] = a[i] + 1; } } }",
        )
        .unwrap();
        let vector = parse_function(
            "void f(int n, int *a) { for (int j = 1; j < n; j++) { for (int i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&a[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } } }",
        )
        .unwrap();
        let err = align(&scalar, &vector).unwrap_err();
        assert!(err.reason.contains("outer loops"));
    }
}
