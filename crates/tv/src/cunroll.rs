//! C-level unrolling (Section 3.2 of the paper).
//!
//! Instead of letting the verifier unroll the scalar loop (which keeps a
//! loop-termination check per iteration), the scalar program is rewritten at
//! the source level: the loop is replaced by `m` copies of its body with the
//! induction-variable step appended to each copy. Because verification is
//! restricted to trip counts that are multiples of the vectorization width,
//! the intermediate termination checks can be dropped entirely, which is
//! what makes the resulting verification conditions so much cheaper.
//!
//! The transformation performs the three fix-ups the paper lists:
//! 1. `break` becomes `return`;
//! 2. `goto` labels are given a fresh suffix per unrolled copy;
//! 3. duplicate local declarations become plain assignments.

use lv_analysis::{loop_nest, StepKind};
use lv_cir::ast::{AssignOp, Block, Expr, Function, Stmt};
use std::collections::HashSet;
use std::fmt;

/// Why the C-level unroller refused to transform a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CUnrollError {
    /// Human-readable reason.
    pub reason: String,
}

impl CUnrollError {
    fn new(reason: impl Into<String>) -> CUnrollError {
        CUnrollError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CUnrollError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C-level unrolling failed: {}", self.reason)
    }
}

impl std::error::Error for CUnrollError {}

/// Unrolls the (innermost) loop of `func` by `factor`, producing a function
/// whose unrolled region is straight-line code.
///
/// For nested kernels only the inner loop is unrolled; the outer loop is kept
/// as-is (the verifier later executes it with a concrete bound).
///
/// # Errors
///
/// Returns [`CUnrollError`] if the function has no canonical loop, the loop
/// step is not a constant, or `factor` is not positive.
pub fn c_unroll(func: &Function, factor: usize) -> Result<Function, CUnrollError> {
    if factor == 0 {
        return Err(CUnrollError::new("unroll factor must be positive"));
    }
    let nest = loop_nest(func);
    if nest.loops.is_empty() {
        return Err(CUnrollError::new("the kernel has no canonical for-loop"));
    }
    let mut out = func.clone();
    let nested = nest.is_nested();
    out.body = unroll_in_block(&func.body, factor, nested, &mut 0)?;
    Ok(out)
}

/// Unrolls the first canonical loop found in `block`. When `skip_outer` is
/// true the outermost loop is kept and its body is processed instead.
fn unroll_in_block(
    block: &Block,
    factor: usize,
    skip_outer: bool,
    loop_counter: &mut usize,
) -> Result<Block, CUnrollError> {
    let mut out = Vec::with_capacity(block.stmts.len());
    let mut done = false;
    for stmt in &block.stmts {
        if !done && stmt.is_loop() {
            if skip_outer {
                // Keep the outer loop, unroll inside its body.
                if let Stmt::For {
                    init,
                    cond,
                    step,
                    body,
                } = stmt
                {
                    let new_body = unroll_in_block(body, factor, false, loop_counter)?;
                    out.push(Stmt::For {
                        init: init.clone(),
                        cond: cond.clone(),
                        step: step.clone(),
                        body: new_body,
                    });
                    done = true;
                    continue;
                }
            }
            let unrolled = unroll_loop(stmt, factor, loop_counter)?;
            out.extend(unrolled);
            done = true;
            continue;
        }
        out.push(stmt.clone());
    }
    Ok(Block::from_stmts(out))
}

fn unroll_loop(
    stmt: &Stmt,
    factor: usize,
    loop_counter: &mut usize,
) -> Result<Vec<Stmt>, CUnrollError> {
    let canonical = lv_analysis::canonicalize_for(stmt)
        .ok_or_else(|| CUnrollError::new("the loop is not in canonical form"))?;
    let step = match canonical.step {
        StepKind::Constant(c) => c,
        StepKind::Symbolic(_) => {
            return Err(CUnrollError::new("the loop step is not a constant literal"))
        }
    };
    *loop_counter += 1;
    let loop_id = *loop_counter;

    let mut out = Vec::new();
    // Initialize the induction variable.
    if canonical.declares_iv {
        out.push(Stmt::Decl {
            ty: lv_cir::Type::Int,
            name: canonical.iv.clone(),
            init: Some(canonical.start.clone()),
        });
    } else {
        out.push(Stmt::Expr(Expr::assign(
            AssignOp::Assign,
            Expr::var(&canonical.iv),
            canonical.start.clone(),
        )));
    }

    let mut declared: HashSet<String> = HashSet::new();
    for copy in 0..factor {
        let mut body = canonical.body.clone();
        body = rewrite_copy(body, copy, loop_id, &mut declared);
        out.extend(body.stmts);
        // Advance the induction variable after every copy.
        out.push(Stmt::Expr(Expr::assign(
            AssignOp::AddAssign,
            Expr::var(&canonical.iv),
            Expr::lit(step),
        )));
    }
    Ok(out)
}

/// Applies the paper's three rewrites to one unrolled copy of the loop body.
fn rewrite_copy(
    block: Block,
    copy: usize,
    loop_id: usize,
    declared: &mut HashSet<String>,
) -> Block {
    let stmts = block
        .stmts
        .into_iter()
        .map(|s| rewrite_stmt(s, copy, loop_id, declared))
        .collect();
    Block::from_stmts(stmts)
}

fn rewrite_stmt(stmt: Stmt, copy: usize, loop_id: usize, declared: &mut HashSet<String>) -> Stmt {
    match stmt {
        // (1) break → return.
        Stmt::Break => Stmt::Return(None),
        // (2) unique labels per copy.
        Stmt::Label(name) => Stmt::Label(format!("{}_u{}_{}", name, loop_id, copy)),
        Stmt::Goto(name) => Stmt::Goto(format!("{}_u{}_{}", name, loop_id, copy)),
        // (3) duplicate declarations become assignments.
        Stmt::Decl { ty, name, init } => {
            if declared.insert(name.clone()) {
                Stmt::Decl { ty, name, init }
            } else {
                match init {
                    Some(init) => Stmt::Expr(Expr::assign(AssignOp::Assign, Expr::var(name), init)),
                    None => Stmt::Empty,
                }
            }
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => Stmt::If {
            cond,
            then_branch: rewrite_copy(then_branch, copy, loop_id, declared),
            else_branch: else_branch.map(|b| rewrite_copy(b, copy, loop_id, declared)),
        },
        Stmt::Block(b) => Stmt::Block(rewrite_copy(b, copy, loop_id, declared)),
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => Stmt::For {
            init,
            cond,
            step,
            body: rewrite_copy(body, copy, loop_id, declared),
        },
        Stmt::While { cond, body } => Stmt::While {
            cond,
            body: rewrite_copy(body, copy, loop_id, declared),
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::{parse_function, print_function};
    use lv_interp::{run_function, ArgBindings, ExecConfig};

    fn unrolled(src: &str, factor: usize) -> Function {
        c_unroll(&parse_function(src).unwrap(), factor).unwrap()
    }

    #[test]
    fn unrolled_code_has_no_inner_loop() {
        let f = unrolled(
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            8,
        );
        assert!(f.top_level_loops().is_empty());
        let printed = print_function(&f);
        assert_eq!(printed.matches("i += 1;").count(), 8, "{}", printed);
    }

    #[test]
    fn unrolled_code_computes_the_same_result() {
        let src = "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";
        let original = parse_function(src).unwrap();
        let unrolled_fn = unrolled(src, 8);
        // n - 1 iterations must be a multiple of 8 for the unrolled version
        // to cover the same range: use n = 9.
        let args = ArgBindings::new()
            .scalar("n", 9)
            .array("a", (0..16).collect())
            .array("b", (0..16).rev().collect())
            .array("c", vec![3; 16])
            .array("d", vec![5; 16]);
        let r1 = run_function(&original, &args, &ExecConfig::default()).unwrap();
        let r2 = run_function(&unrolled_fn, &args, &ExecConfig::default()).unwrap();
        assert_eq!(r1.arrays["a"], r2.arrays["a"]);
        assert_eq!(r1.arrays["b"], r2.arrays["b"]);
    }

    #[test]
    fn break_becomes_return() {
        let f = unrolled(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i] == 0) { break; } a[i] = 1; } }",
            4,
        );
        let printed = print_function(&f);
        assert!(!printed.contains("break"), "{}", printed);
        assert_eq!(printed.matches("return;").count(), 4, "{}", printed);
    }

    #[test]
    fn labels_are_renamed_per_copy() {
        let f = unrolled(
            "void f(int n, int *a, int *d, int *e, int *b, int *c) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
            2,
        );
        let printed = print_function(&f);
        assert!(printed.contains("L20_u1_0"), "{}", printed);
        assert!(printed.contains("L20_u1_1"), "{}", printed);
        assert!(printed.contains("goto L30_u1_1"), "{}", printed);
        // The unrolled function must still type check (labels resolve).
        assert!(lv_cir::type_check(&f).is_ok());
    }

    #[test]
    fn duplicate_declarations_are_removed() {
        let f = unrolled(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { int t = a[i]; a[i] = t * 2; } }",
            4,
        );
        let printed = print_function(&f);
        assert_eq!(printed.matches("int t").count(), 1, "{}", printed);
        assert_eq!(printed.matches("t = ").count(), 4, "{}", printed);
        assert!(lv_cir::type_check(&f).is_ok());
    }

    #[test]
    fn nested_loops_unroll_only_the_inner_loop() {
        let f = unrolled(
            "void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i < n; i++) { a[i] = a[i] + 1; } } }",
            8,
        );
        // The outer loop survives, the inner one is gone.
        assert_eq!(f.top_level_loops().len(), 1);
        let printed = print_function(&f);
        assert_eq!(printed.matches("for (").count(), 1, "{}", printed);
    }

    #[test]
    fn errors_on_missing_or_symbolic_loops() {
        assert!(c_unroll(
            &parse_function("void f(int n, int *a) { a[0] = n; }").unwrap(),
            8
        )
        .is_err());
        assert!(c_unroll(
            &parse_function(
                "void f(int n, int k, int *a) { for (int i = 0; i < n; i += k) { a[i] = 0; } }"
            )
            .unwrap(),
            8
        )
        .is_err());
        assert!(c_unroll(
            &parse_function("void f(int n, int *a) { for (int i = 0; i < n; i++) { a[i] = 0; } }")
                .unwrap(),
            0
        )
        .is_err());
    }
}
