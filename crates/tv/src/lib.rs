//! # lv-tv — bounded translation validation (the Alive2 substitute)
//!
//! The paper verifies LLM-generated vectorizations with Alive2: both the
//! scalar kernel and the candidate are unrolled into loop-free programs,
//! their memory effects are encoded as SMT formulas under non-aliasing and
//! trip-count assumptions, and Z3 decides refinement. This crate implements
//! that workflow over the mini-C AST:
//!
//! * [`mod@align`] — loop alignment and the `(end1 - start1) % m == 0`
//!   divisibility assumption (Section 3.1);
//! * [`symexec`] — guarded symbolic execution into `lv-smt` terms with UB
//!   tracking and per-array memory regions;
//! * [`cunroll`] — the C-level unrolling preprocessing step (Section 3.2);
//! * [`verify`] — the three verification strategies of Algorithm 1
//!   ([`check_with_alive2_unroll`], [`check_with_c_unroll`],
//!   [`check_with_spatial_splitting`]) and the combined
//!   [`check_equivalence_symbolic`] driver.
//!
//! # Examples
//!
//! ```
//! use lv_cir::parse_function;
//! use lv_tv::{check_with_c_unroll, TvConfig, TvVerdict};
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let candidate = parse_function(
//!     "void s000(int n, int *a, int *b) {
//!          int i;
//!          for (i = 0; i + 8 <= n; i += 8) {
//!              __m256i x = _mm256_loadu_si256((__m256i *)&b[i]);
//!              _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1)));
//!          }
//!          for (; i < n; i++) { a[i] = b[i] + 1; }
//!      }",
//! )?;
//! assert_eq!(
//!     check_with_c_unroll(&scalar, &candidate, &TvConfig::default()),
//!     TvVerdict::Equivalent
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod align;
pub mod cunroll;
pub mod symexec;
pub mod verify;

pub use align::{align, Alignment, AlignmentError};
pub use cunroll::{c_unroll, CUnrollError};
pub use lv_smt::{SimplifyConfig, SimplifyStats, SolverBudget};
pub use symexec::{sym_exec, SymExecConfig, SymExecError, SymOutcome};
pub use verify::{
    alignment_assumption, check_equivalence_symbolic, check_with_alive2_unroll,
    check_with_alive2_unroll_in, check_with_c_unroll, check_with_c_unroll_in,
    check_with_spatial_splitting, check_with_spatial_splitting_in, unroll_factor_of,
    SymbolicStrategy, TvConfig, TvReuse, TvSession, TvSessionStats, TvStage, TvVerdict,
};
