//! The three symbolic verification strategies of Algorithm 1.
//!
//! * [`check_with_alive2_unroll`] — the "out-of-the-box" configuration:
//!   both programs are unrolled by the verifier itself over a two-chunk
//!   window and compared under a tight solver budget (this is the strategy
//!   that most often returns `Inconclusive` on large kernels, as in the
//!   paper);
//! * [`check_with_c_unroll`] — the scalar program is first rewritten by the
//!   source-level unroller of [`crate::cunroll`], which removes the
//!   per-iteration termination checks and shrinks the verification
//!   condition;
//! * [`check_with_spatial_splitting`] — for kernels with no loop-carried
//!   dependences, one query per lane compares a single output index at a
//!   time.
//!
//! All three check *refinement*: on every input on which the scalar program
//! is UB-free, the candidate must also be UB-free and produce identical
//! array contents. Arrays live in distinct regions (non-aliasing, Section
//! 3.1) and trip counts are fixed to multiples of the vectorization width
//! (the paper's `(end1 - start1) % m == 0` assumption).

use crate::align::{align, Alignment};
use crate::cunroll::c_unroll;
use crate::symexec::{sym_exec, SymExecConfig, SymOutcome};
use lv_analysis::{analyze_function, collect_accesses, AccessKind};
use lv_cir::ast::{BinOp, Expr, Function, UnOp};
use lv_smt::{
    CheckResult, ReuseStats, SimplifyConfig, SimplifyStats, Solver, SolverBudget, Validity,
};
use std::collections::HashMap;

/// Cumulative solver-effort statistics over the lifetime of a [`TvSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TvSessionStats {
    /// SMT queries discharged.
    pub queries: u64,
    /// SAT conflicts, summed over all queries.
    pub conflicts: u64,
    /// SAT decisions, summed over all queries.
    pub decisions: u64,
    /// CNF clauses created by bit-blasting, summed over all queries.
    pub clauses: u64,
}

/// Which cross-query solver-reuse mechanisms a [`TvSession`] runs with.
/// Default off: the session then behaves exactly as before the reuse
/// subsystem existed (recycle per query, one-shot solves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TvReuse {
    /// Blasted-CNF memoization across recycles ([`Solver::enable_blast_memo`]).
    pub memo: bool,
    /// Incremental per-scalar solving: the term context stays warm across
    /// the queries of one scalar's candidate set, scalar-side assertions
    /// are blasted once per strategy into a persistent SAT instance, and
    /// per-candidate assertions enter under an activation literal.
    pub incremental: bool,
    /// Clause-database simplification ([`Solver::set_simplify`]):
    /// SatELite-style preprocessing before search and/or inprocessing
    /// hooks inside the CDCL loop. Orthogonal to the reuse mechanisms —
    /// it composes with both (preprocessing runs on the post-replay
    /// clause stream, so memo hits stay clause-identical).
    pub simplify: SimplifyConfig,
}

impl TvReuse {
    /// Everything *reuse* on — the configuration the reuse benchmarks race
    /// against fresh solving. Simplification stays off; enable it
    /// separately via the `simplify` field.
    pub fn full() -> TvReuse {
        TvReuse {
            memo: true,
            incremental: true,
            simplify: SimplifyConfig::default(),
        }
    }

    /// `true` if any mechanism is enabled.
    pub fn any(self) -> bool {
        self.memo || self.incremental || self.simplify.any()
    }
}

/// A reusable verification session: one SMT solver whose allocations are
/// recycled across queries, plus cumulative effort statistics.
///
/// The parallel batch engine gives each worker thread one session for its
/// whole lifetime; the `check_with_*_in` strategy entry points run every
/// query through it. Because [`Solver::recycle`] restores the solver to its
/// just-constructed state, a session produces bit-identical verdicts to
/// constructing a fresh solver per query — it only avoids the reallocation.
///
/// With [`TvReuse::incremental`] enabled, the recycle is instead deferred
/// to *scalar-group boundaries*: consecutive queries against the same
/// scalar kernel keep the term context warm (hash-consing makes re-executed
/// scalar code resolve to already-interned terms) and solve through warm
/// per-strategy SAT instances ([`Solver::check_assuming`]). The engine's
/// scalar-affinity scheduling makes same-scalar jobs consecutive per
/// worker, so the warm context actually gets hit.
#[derive(Debug, Default)]
pub struct TvSession {
    solver: Solver,
    /// Effort accumulated so far; the engine reads deltas of this around
    /// each strategy call to attribute conflicts to pipeline stages.
    pub stats: TvSessionStats,
    reuse: TvReuse,
    /// Structural hash of the scalar whose group currently keeps the
    /// context warm (incremental mode only).
    group: Option<u64>,
}

impl TvSession {
    /// Creates a session with a fresh solver and no reuse.
    pub fn new() -> TvSession {
        TvSession::default()
    }

    /// Creates a session with the given reuse mechanisms enabled.
    pub fn with_reuse(reuse: TvReuse) -> TvSession {
        let mut session = TvSession {
            reuse,
            ..TvSession::default()
        };
        if reuse.memo {
            session.solver.enable_blast_memo();
        }
        session.solver.set_simplify(reuse.simplify);
        session
    }

    /// The reuse configuration this session runs with.
    pub fn reuse(&self) -> TvReuse {
        self.reuse
    }

    /// Cumulative solver-reuse counters (all zero when reuse is off).
    pub fn reuse_stats(&self) -> ReuseStats {
        self.solver.reuse_stats()
    }

    /// Cumulative clause-database simplification counters (all zero when
    /// [`TvReuse::simplify`] is off).
    pub fn simplify_stats(&self) -> SimplifyStats {
        self.solver.simplify_stats()
    }

    /// Marks the scalar kernel the next queries verify against. In
    /// incremental mode a change of scalar is a group boundary: the warm
    /// context and its sessions belong to the previous scalar and are
    /// recycled. Without incremental reuse this is a no-op (every query
    /// recycles anyway).
    fn enter_scalar(&mut self, scalar: &Function) {
        if !self.reuse.incremental {
            return;
        }
        let hash = lv_cir::structural_hash(scalar);
        if self.group != Some(hash) {
            self.solver.recycle();
            self.group = Some(hash);
        }
    }

    /// Hands out the solver for the next query: recycled per query in
    /// one-shot mode, warm in incremental mode (recycled only at group
    /// boundaries by [`TvSession::enter_scalar`]).
    fn query_solver(&mut self) -> &mut Solver {
        if !self.reuse.incremental {
            self.solver.recycle();
        }
        &mut self.solver
    }

    /// Folds the most recent query's statistics into the running totals.
    fn absorb_last_query(&mut self) {
        let stats = self.solver.last_stats;
        self.stats.queries += 1;
        self.stats.conflicts += stats.conflicts;
        self.stats.decisions += stats.decisions;
        self.stats.clauses += stats.cnf_clauses as u64;
    }
}

/// The verdict of one verification attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TvVerdict {
    /// The candidate refines the scalar kernel (modulo the bounded unrolling).
    Equivalent,
    /// A concrete counterexample distinguishes the two programs.
    NotEquivalent {
        /// Human-readable description of the differing input.
        counterexample: String,
    },
    /// The query could not be decided (solver budget, unsupported features,
    /// alignment failure) — the paper's timeout / memory-out / unmodelled
    /// intrinsic bucket.
    Inconclusive {
        /// Why the attempt was inconclusive.
        reason: String,
    },
}

impl TvVerdict {
    /// Returns `true` for [`TvVerdict::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, TvVerdict::Equivalent)
    }

    /// Returns `true` for [`TvVerdict::Inconclusive`].
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, TvVerdict::Inconclusive { .. })
    }
}

/// Configuration shared by the verification strategies.
#[derive(Debug, Clone)]
pub struct TvConfig {
    /// Solver budget for the plain Alive2-style unrolling strategy.
    pub alive2_budget: SolverBudget,
    /// Solver budget for the C-level-unrolling strategy.
    pub cunroll_budget: SolverBudget,
    /// Solver budget for each spatial-splitting lane query.
    pub spatial_budget: SolverBudget,
    /// Number of vector iterations covered by the Alive2-style strategy.
    pub alive2_chunks: usize,
    /// Extra array cells modelled beyond the iteration window (so reads such
    /// as `a[i + 1]` stay in bounds).
    pub array_slack: usize,
    /// Unrolling budget passed to the symbolic executor.
    pub max_iterations: usize,
}

impl Default for TvConfig {
    fn default() -> Self {
        TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 60_000,
                max_clauses: 600_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 400_000,
                max_clauses: 3_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 200_000,
                max_clauses: 1_500_000,
            },
            alive2_chunks: 2,
            array_slack: 8,
            max_iterations: 4096,
        }
    }
}

impl TvConfig {
    /// A stable 64-bit fingerprint of every field that can influence a
    /// verdict.
    ///
    /// Folded into the engine-configuration hash that keys the persistent
    /// verdict cache: budgets change `Inconclusive` outcomes, the chunk
    /// window and array slack change the verification condition, and the
    /// unrolling budget changes which kernels the executor can handle at
    /// all — so any change here must invalidate cached verdicts.
    pub fn fingerprint(&self) -> u64 {
        let mut fnv = lv_cir::Fnv64::new();
        fnv.write_u64(self.alive2_budget.fingerprint());
        fnv.write_u64(self.cunroll_budget.fingerprint());
        fnv.write_u64(self.spatial_budget.fingerprint());
        fnv.write_u64(self.alive2_chunks as u64);
        fnv.write_u64(self.array_slack as u64);
        fnv.write_u64(self.max_iterations as u64);
        fnv.finish()
    }
}

/// Which strategy produced the final verdict of [`check_equivalence_symbolic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TvStage {
    /// Default Alive2-style unrolling.
    Alive2Unroll,
    /// C-level unrolling.
    CUnroll,
    /// Spatial case splitting.
    SpatialSplitting,
}

/// The three symbolic strategies of Algorithm 1 as first-class values, so a
/// verification cascade can be configured, reordered, and dispatched
/// generically by the batch engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolicStrategy {
    /// Default Alive2-style unrolling (Algorithm 1 line 6).
    Alive2Unroll,
    /// C-level unrolling (line 9).
    CUnroll,
    /// Spatial case splitting (line 12).
    SpatialSplitting,
}

impl SymbolicStrategy {
    /// The strategies in Algorithm 1 order.
    pub const ALL: [SymbolicStrategy; 3] = [
        SymbolicStrategy::Alive2Unroll,
        SymbolicStrategy::CUnroll,
        SymbolicStrategy::SpatialSplitting,
    ];

    /// Display label matching Table 3.
    pub fn label(self) -> &'static str {
        match self {
            SymbolicStrategy::Alive2Unroll => "Alive2",
            SymbolicStrategy::CUnroll => "C-Unroll",
            SymbolicStrategy::SpatialSplitting => "Splitting",
        }
    }

    /// Runs this strategy through a reusable session.
    pub fn run(
        self,
        scalar: &Function,
        vector: &Function,
        config: &TvConfig,
        session: &mut TvSession,
    ) -> TvVerdict {
        match self {
            SymbolicStrategy::Alive2Unroll => {
                check_with_alive2_unroll_in(scalar, vector, config, session)
            }
            SymbolicStrategy::CUnroll => check_with_c_unroll_in(scalar, vector, config, session),
            SymbolicStrategy::SpatialSplitting => {
                check_with_spatial_splitting_in(scalar, vector, config, session)
            }
        }
    }
}

/// Runs the three strategies in the order of Algorithm 1 (lines 6–13) and
/// returns the first conclusive verdict together with the stage that
/// produced it. If every stage is inconclusive, the last verdict (and
/// [`TvStage::SpatialSplitting`]) is returned.
pub fn check_equivalence_symbolic(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
) -> (TvVerdict, TvStage) {
    let mut session = TvSession::new();
    for strategy in SymbolicStrategy::ALL {
        let verdict = strategy.run(scalar, vector, config, &mut session);
        let stage = match strategy {
            SymbolicStrategy::Alive2Unroll => TvStage::Alive2Unroll,
            SymbolicStrategy::CUnroll => TvStage::CUnroll,
            SymbolicStrategy::SpatialSplitting => TvStage::SpatialSplitting,
        };
        if !verdict.is_inconclusive() || strategy == SymbolicStrategy::SpatialSplitting {
            return (verdict, stage);
        }
    }
    unreachable!("the spatial-splitting arm always returns")
}

/// The Alive2-style strategy: the verifier unrolls both loops itself over a
/// window of [`TvConfig::alive2_chunks`] vector iterations.
pub fn check_with_alive2_unroll(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
) -> TvVerdict {
    check_with_alive2_unroll_in(scalar, vector, config, &mut TvSession::new())
}

/// [`check_with_alive2_unroll`] through a caller-provided session.
pub fn check_with_alive2_unroll_in(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
    session: &mut TvSession,
) -> TvVerdict {
    session.enter_scalar(scalar);
    let alignment = match align(scalar, vector) {
        Ok(a) => a,
        Err(e) => {
            return TvVerdict::Inconclusive {
                reason: e.to_string(),
            }
        }
    };
    let chunks = config.alive2_chunks.max(1);
    refinement_check(
        scalar,
        vector,
        &alignment,
        chunks,
        config,
        &config.alive2_budget,
        None,
        session,
    )
}

/// The C-level-unrolling strategy: the scalar kernel is rewritten by
/// [`c_unroll`] before symbolic execution, and only a single vector chunk is
/// modelled, producing a much smaller query.
pub fn check_with_c_unroll(scalar: &Function, vector: &Function, config: &TvConfig) -> TvVerdict {
    check_with_c_unroll_in(scalar, vector, config, &mut TvSession::new())
}

/// [`check_with_c_unroll`] through a caller-provided session.
pub fn check_with_c_unroll_in(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
    session: &mut TvSession,
) -> TvVerdict {
    session.enter_scalar(scalar);
    let alignment = match align(scalar, vector) {
        Ok(a) => a,
        Err(e) => {
            return TvVerdict::Inconclusive {
                reason: e.to_string(),
            }
        }
    };
    let unrolled = match c_unroll(scalar, alignment.unroll_factor.unsigned_abs() as usize) {
        Ok(f) => f,
        Err(e) => {
            return TvVerdict::Inconclusive {
                reason: e.to_string(),
            }
        }
    };
    refinement_check(
        &unrolled,
        vector,
        &alignment,
        1,
        config,
        &config.cunroll_budget,
        None,
        session,
    )
}

/// The spatial-splitting strategy: only applicable when the conservative
/// syntactic check finds no loop-carried dependence; the equivalence of the
/// whole array is decomposed into one query per lane.
pub fn check_with_spatial_splitting(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
) -> TvVerdict {
    check_with_spatial_splitting_in(scalar, vector, config, &mut TvSession::new())
}

/// [`check_with_spatial_splitting`] through a caller-provided session.
pub fn check_with_spatial_splitting_in(
    scalar: &Function,
    vector: &Function,
    config: &TvConfig,
    session: &mut TvSession,
) -> TvVerdict {
    session.enter_scalar(scalar);
    let alignment = match align(scalar, vector) {
        Ok(a) => a,
        Err(e) => {
            return TvVerdict::Inconclusive {
                reason: e.to_string(),
            }
        }
    };
    if let Err(reason) = spatial_eligible(scalar, vector) {
        return TvVerdict::Inconclusive { reason };
    }
    let m = alignment.unroll_factor.unsigned_abs() as usize;
    let mut last_unknown: Option<String> = None;
    for lane in 0..m {
        let verdict = refinement_check(
            scalar,
            vector,
            &alignment,
            1,
            config,
            &config.spatial_budget,
            Some(lane),
            session,
        );
        match verdict {
            TvVerdict::Equivalent => {}
            TvVerdict::NotEquivalent { counterexample } => {
                return TvVerdict::NotEquivalent {
                    counterexample: format!("lane {}: {}", lane, counterexample),
                }
            }
            TvVerdict::Inconclusive { reason } => last_unknown = Some(reason),
        }
    }
    match last_unknown {
        None => TvVerdict::Equivalent,
        Some(reason) => TvVerdict::Inconclusive { reason },
    }
}

/// The conservative loop-carried-dependence check of Section 3.3: every array
/// subscript in the scalar loop must be exactly the induction variable, the
/// candidate must only access vectors starting at the induction variable, and
/// neither program may update a scalar across iterations.
fn spatial_eligible(scalar: &Function, vector: &Function) -> Result<(), String> {
    let report = analyze_function(scalar);
    if !report.loop_found {
        return Err("no canonical loop for spatial splitting".to_string());
    }
    if !report.reductions.is_empty() || !report.recurrences.is_empty() {
        return Err("the scalar kernel updates a scalar across iterations".to_string());
    }
    for func in [scalar, vector] {
        let nest = lv_analysis::loop_nest(func);
        let Some(l) = nest.loops.first() else {
            return Err("missing canonical loop".to_string());
        };
        let body = collect_accesses(&l.body, &l.iv);
        if !body.scalar_updates.is_empty() {
            return Err("a scalar value is updated inside the loop body".to_string());
        }
        for access in &body.accesses {
            match access.affine {
                Some(a) if a.coeff == 1 && a.offset == 0 => {}
                _ => {
                    return Err(format!(
                        "array `{}` is accessed at a subscript other than the induction variable",
                        access.array
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Builds and discharges one refinement query.
///
/// `chunks` is the number of vector iterations modelled; `compare_lane`
/// restricts the comparison to a single output index (spatial splitting).
#[allow(clippy::too_many_arguments)]
fn refinement_check(
    scalar: &Function,
    vector: &Function,
    alignment: &Alignment,
    chunks: usize,
    config: &TvConfig,
    budget: &SolverBudget,
    compare_lane: Option<usize>,
    session: &mut TvSession,
) -> TvVerdict {
    let m = alignment.unroll_factor.unsigned_abs() as usize;
    let step = alignment.scalar_step.unsigned_abs() as usize;
    let Some(start) = alignment.scalar_loop.start.as_int_lit() else {
        return TvVerdict::Inconclusive {
            reason: "the scalar loop start is not a constant literal".to_string(),
        };
    };
    let start = start.max(0) as usize;
    // The loop must cover exactly `m * chunks` scalar iterations, which
    // realizes the paper's `(end1 - start1) % m == 0` assumption. The bound
    // parameter value achieving that trip count is found numerically from
    // the (possibly complex) bound expression, e.g. `n - 1` for s212.
    let trip = m * chunks;
    let Some(n_value) = find_bound_binding(alignment, trip) else {
        return TvVerdict::Inconclusive {
            reason: format!(
                "could not find a bound value giving {} scalar iterations for the divisibility assumption",
                trip
            ),
        };
    };
    let array_len = start + trip * step + config.array_slack;

    let reuse = session.reuse;
    let solver = session.query_solver();
    let outcome_scalar = exec_side(solver, scalar, n_value, array_len, config);
    let outcome_vector = exec_side(solver, vector, n_value, array_len, config);
    let (src, tgt) = match (outcome_scalar, outcome_vector) {
        (Ok(s), Ok(t)) => (s, t),
        (Err(reason), _) | (_, Err(reason)) => return TvVerdict::Inconclusive { reason },
    };

    // Refinement: whenever the source is UB-free, the target must be UB-free
    // and the observable outputs must agree.
    let mut agree = solver.ctx.bool_const(true);
    let written = written_arrays(scalar, vector);
    for name in &src.array_order {
        let Some(tgt_cells) = tgt.arrays.get(name) else {
            continue;
        };
        if !written.contains(name) {
            continue;
        }
        let src_cells = &src.arrays[name];
        let indices: Vec<usize> = match compare_lane {
            Some(lane) => vec![start + lane],
            None => (0..src_cells.len().min(tgt_cells.len())).collect(),
        };
        for idx in indices {
            if idx >= src_cells.len() || idx >= tgt_cells.len() {
                continue;
            }
            let eq = solver.ctx.eq(src_cells[idx], tgt_cells[idx]);
            agree = solver.ctx.and(agree, eq);
        }
    }
    let no_tgt_ub = solver.ctx.not(tgt.ub);
    let post = solver.ctx.and(no_tgt_ub, agree);
    let no_src_ub = solver.ctx.not(src.ub);

    let verdict = if reuse.incremental {
        // Incremental path: the validity of `no_src_ub -> post` is decided
        // as the unsatisfiability of `no_src_ub && !post`. The scalar-side
        // premise is asserted once into a warm per-(scalar, trip-shape) SAT
        // instance keyed below; each candidate's `!post` then enters under
        // an activation literal and is retracted after the solve, so the
        // next candidate against the same scalar only pays for its own
        // vector-side clauses.
        let key = {
            let mut h = lv_cir::Fnv64::new();
            h.write_u64(lv_cir::structural_hash(scalar));
            h.write_i64(i64::from(n_value));
            h.write_u64(array_len as u64);
            h.finish()
        };
        if !solver.has_incremental_session(key) {
            solver.reset_assertions();
            solver.assert(no_src_ub);
            if let Err(reason) = solver.begin_incremental(key) {
                return TvVerdict::Inconclusive { reason };
            }
        }
        let not_post = solver.ctx.not(post);
        match solver.check_assuming(key, not_post, budget) {
            CheckResult::Unsat => TvVerdict::Equivalent,
            CheckResult::Sat(model) => TvVerdict::NotEquivalent {
                counterexample: render_counterexample(&model.assignments()),
            },
            CheckResult::Unknown(reason) => TvVerdict::Inconclusive { reason },
        }
    } else {
        let vc = solver.ctx.implies(no_src_ub, post);
        match solver.check_validity(vc, budget) {
            Validity::Valid => TvVerdict::Equivalent,
            Validity::Invalid(model) => TvVerdict::NotEquivalent {
                counterexample: render_counterexample(&model.assignments()),
            },
            Validity::Unknown(reason) => TvVerdict::Inconclusive { reason },
        }
    };
    session.absorb_last_query();
    verdict
}

fn exec_side(
    solver: &mut Solver,
    func: &Function,
    n_value: i32,
    array_len: usize,
    config: &TvConfig,
) -> Result<SymOutcome, String> {
    let mut bindings = HashMap::new();
    for name in func.scalar_params() {
        bindings.insert(name.to_string(), n_value);
    }
    let sym_config = SymExecConfig {
        scalar_bindings: bindings,
        array_len,
        max_iterations: config.max_iterations,
        input_prefix: String::new(),
    };
    sym_exec(&mut solver.ctx, func, &sym_config).map_err(|e| e.to_string())
}

/// Arrays written by either function; unread output arrays of the candidate
/// are still compared so that missing stores are caught.
fn written_arrays(scalar: &Function, vector: &Function) -> Vec<String> {
    let mut out = Vec::new();
    for func in [scalar, vector] {
        let nest = lv_analysis::loop_nest(func);
        for l in &nest.loops {
            let body = collect_accesses(&l.body, &l.iv);
            for access in &body.accesses {
                if access.kind == AccessKind::Write && !out.contains(&access.array) {
                    out.push(access.array.clone());
                }
            }
        }
        // Also scan statements outside loops (prologue stores).
        let body = collect_accesses(&func.body, "__no_iv__");
        for access in &body.accesses {
            if access.kind == AccessKind::Write && !out.contains(&access.array) {
                out.push(access.array.clone());
            }
        }
    }
    out
}

/// Finds a value for the scalar bound parameter such that the scalar loop
/// executes exactly `trip` iterations (the divisibility assumption).
fn find_bound_binding(alignment: &Alignment, trip: usize) -> Option<i32> {
    let l = &alignment.scalar_loop;
    let start = l.start.as_int_lit()?;
    let step = alignment.scalar_step;
    for n in 0..=(4 * trip as i64 + 64) {
        let Some(bound) = eval_bound_expr(&l.bound, n) else {
            continue;
        };
        let mut count = 0usize;
        let mut i = start;
        while count <= trip + 1 {
            let cont = match l.cond_op {
                BinOp::Lt => i < bound,
                BinOp::Le => i <= bound,
                BinOp::Ne => i != bound,
                BinOp::Gt => i > bound,
                BinOp::Ge => i >= bound,
                _ => return None,
            };
            if !cont {
                break;
            }
            count += 1;
            i += step;
        }
        if count == trip {
            return i32::try_from(n).ok();
        }
    }
    None
}

/// Evaluates a loop-bound expression with every scalar variable set to `n`.
fn eval_bound_expr(expr: &Expr, n: i64) -> Option<i64> {
    match expr {
        Expr::IntLit(v) => Some(*v),
        Expr::Var(_) => Some(n),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => Some(-eval_bound_expr(expr, n)?),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_bound_expr(lhs, n)?;
            let r = eval_bound_expr(rhs, n)?;
            match op {
                BinOp::Add => Some(l + r),
                BinOp::Sub => Some(l - r),
                BinOp::Mul => Some(l * r),
                BinOp::Div => (r != 0).then(|| l / r),
                BinOp::Rem => (r != 0).then(|| l % r),
                BinOp::Shr => Some(l >> r.clamp(0, 62)),
                BinOp::Shl => Some(l << r.clamp(0, 62)),
                _ => None,
            }
        }
        _ => None,
    }
}

fn render_counterexample(assignments: &[(String, i64)]) -> String {
    let interesting: Vec<String> = assignments
        .iter()
        .filter(|(name, _)| !name.starts_with("oob!"))
        .take(16)
        .map(|(name, value)| format!("{} = {}", name, value))
        .collect();
    if interesting.is_empty() {
        "counterexample found (no named inputs)".to_string()
    } else {
        interesting.join(", ")
    }
}

/// Helper used by callers that need the unroll factor without running a
/// verification (e.g. reports): the vector width implied by the candidate.
pub fn unroll_factor_of(scalar: &Function, vector: &Function) -> Option<i64> {
    align(scalar, vector).ok().map(|a| a.unroll_factor)
}

/// Convenience wrapper returning the verification condition's divisibility
/// assumption for reports.
pub fn alignment_assumption(scalar: &Function, vector: &Function) -> Option<String> {
    align(scalar, vector).ok().map(|a| a.assumption())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S000_VEC: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";
    /// Off-by-one: adds 2 instead of 1.
    const S000_VEC_WRONG: &str = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(2))); } for (; i < n; i++) { a[i] = b[i] + 1; } }";

    const S212: &str = "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";
    /// Figure 1(b): loads a[i+1] before storing a[i], which is correct.
    const S212_VEC: &str = "void s212(int n, int *a, int *b, int *c, int *d) { int i; for (i = 0; i + 8 <= n - 1; i += 8) { __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]); __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]); __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]); __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]); __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]); __m256i prod = _mm256_mullo_epi32(a_vec, c_vec); _mm256_storeu_si256((__m256i *)&a[i], prod); __m256i prod2 = _mm256_mullo_epi32(a_next, d_vec); _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod2)); } for (; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";
    /// Broken s212: loads a[i+1] *after* storing a[i], so lane 7 reads the
    /// updated value — the classic dependence violation.
    const S212_VEC_WRONG: &str = "void s212(int n, int *a, int *b, int *c, int *d) { int i; for (i = 0; i + 8 <= n - 1; i += 8) { __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]); __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]); __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]); __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]); __m256i prod = _mm256_mullo_epi32(a_vec, c_vec); _mm256_storeu_si256((__m256i *)&a[i], prod); __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]); __m256i prod2 = _mm256_mullo_epi32(a_next, d_vec); _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod2)); } for (; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }";

    fn f(src: &str) -> Function {
        parse_function(src).unwrap()
    }

    fn quick_config() -> TvConfig {
        TvConfig {
            alive2_chunks: 1,
            ..TvConfig::default()
        }
    }

    #[test]
    fn correct_s000_verifies_with_c_unroll() {
        let verdict = check_with_c_unroll(&f(S000), &f(S000_VEC), &quick_config());
        assert_eq!(verdict, TvVerdict::Equivalent);
    }

    #[test]
    fn correct_s000_verifies_with_alive2_unroll() {
        let verdict = check_with_alive2_unroll(&f(S000), &f(S000_VEC), &quick_config());
        assert_eq!(verdict, TvVerdict::Equivalent);
    }

    #[test]
    fn wrong_constant_is_refuted() {
        let verdict = check_with_c_unroll(&f(S000), &f(S000_VEC_WRONG), &quick_config());
        assert!(
            matches!(verdict, TvVerdict::NotEquivalent { .. }),
            "{:?}",
            verdict
        );
    }

    #[test]
    fn s212_correct_vectorization_verifies() {
        let verdict = check_with_c_unroll(&f(S212), &f(S212_VEC), &quick_config());
        assert_eq!(
            verdict,
            TvVerdict::Equivalent,
            "paper Figure 1(b) candidate"
        );
    }

    #[test]
    fn s212_dependence_violation_is_refuted() {
        let verdict = check_with_c_unroll(&f(S212), &f(S212_VEC_WRONG), &quick_config());
        assert!(
            matches!(verdict, TvVerdict::NotEquivalent { .. }),
            "{:?}",
            verdict
        );
    }

    #[test]
    fn spatial_splitting_verifies_simple_kernel() {
        let verdict = check_with_spatial_splitting(&f(S000), &f(S000_VEC), &quick_config());
        assert_eq!(verdict, TvVerdict::Equivalent);
    }

    #[test]
    fn spatial_splitting_rejects_dependent_kernel() {
        let verdict = check_with_spatial_splitting(&f(S212), &f(S212_VEC), &quick_config());
        assert!(verdict.is_inconclusive(), "{:?}", verdict);
    }

    #[test]
    fn missing_epilogue_is_still_equivalent_under_divisibility() {
        // Without an epilogue the candidate only covers multiples of 8, but
        // the verification fixes the trip count to a multiple of 8, so this
        // must verify (the checksum harness is the one that catches it).
        let no_epilogue = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x, _mm256_set1_epi32(1))); } }";
        let verdict = check_with_c_unroll(&f(S000), &f(no_epilogue), &quick_config());
        assert_eq!(verdict, TvVerdict::Equivalent);
    }

    #[test]
    fn unvectorizable_shape_is_inconclusive() {
        // A candidate with no loop at all cannot be aligned.
        let no_loop = "void s000(int n, int *a, int *b) { a[0] = b[0] + 1; }";
        let verdict = check_with_alive2_unroll(&f(S000), &f(no_loop), &TvConfig::default());
        assert!(verdict.is_inconclusive());
    }

    #[test]
    fn full_pipeline_reports_stage() {
        let (verdict, stage) = check_equivalence_symbolic(&f(S000), &f(S000_VEC), &quick_config());
        assert_eq!(verdict, TvVerdict::Equivalent);
        assert_eq!(stage, TvStage::Alive2Unroll);
    }

    #[test]
    fn tiny_budget_falls_through_to_c_unroll() {
        // A correct candidate whose terms are *not* structurally identical to
        // the scalar ones (operands of the add are commuted), so the query
        // genuinely reaches the SAT solver and the tiny budget gives up.
        let commuted = "void s000(int n, int *a, int *b) { int i; for (i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(_mm256_set1_epi32(1), x)); } for (; i < n; i++) { a[i] = b[i] + 1; } }";
        let config = TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1,
                max_clauses: 50,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        };
        let (verdict, stage) = check_equivalence_symbolic(&f(S000), &f(commuted), &config);
        assert_eq!(verdict, TvVerdict::Equivalent);
        assert_eq!(stage, TvStage::CUnroll);
    }

    #[test]
    fn helpers_expose_alignment_facts() {
        assert_eq!(unroll_factor_of(&f(S000), &f(S000_VEC)), Some(8));
        assert!(alignment_assumption(&f(S000), &f(S000_VEC))
            .unwrap()
            .contains("% 8 == 0"));
    }

    /// Verdict class, ignoring counterexample/reason text: an incremental
    /// SAT run may find a different model than a fresh run, but the
    /// Equivalent/NotEquivalent/Inconclusive outcome must agree.
    fn class(v: &TvVerdict) -> &'static str {
        match v {
            TvVerdict::Equivalent => "equivalent",
            TvVerdict::NotEquivalent { .. } => "not-equivalent",
            TvVerdict::Inconclusive { .. } => "inconclusive",
        }
    }

    #[test]
    fn reuse_session_matches_fresh_verdicts_across_candidate_group() {
        // One scalar, a group of candidates (correct, wrong, correct again),
        // every strategy: the warm incremental session must report the same
        // verdict class as a fresh session per query.
        let scalar = f(S000);
        let candidates = [f(S000_VEC), f(S000_VEC_WRONG), f(S000_VEC)];
        let config = quick_config();
        let mut warm = TvSession::with_reuse(TvReuse::full());
        for candidate in &candidates {
            for strategy in SymbolicStrategy::ALL {
                let reused = strategy.run(&scalar, candidate, &config, &mut warm);
                let fresh = strategy.run(&scalar, candidate, &config, &mut TvSession::new());
                assert_eq!(
                    class(&reused),
                    class(&fresh),
                    "{} diverged under reuse",
                    strategy.label()
                );
            }
        }
        // Candidates beyond the first solve through warm instances.
        assert!(warm.reuse_stats().assumption_reuses > 0);
    }

    #[test]
    fn reuse_session_recycles_at_scalar_group_boundaries() {
        // Alternating scalars force group boundaries; returning to an
        // already-seen scalar re-blasts its premise, which the CNF memo
        // replays instead of re-encoding.
        let pairs = [
            (f(S000), f(S000_VEC)),
            (f(S212), f(S212_VEC)),
            (f(S000), f(S000_VEC_WRONG)),
        ];
        let config = quick_config();
        let mut warm = TvSession::with_reuse(TvReuse::full());
        for (scalar, vector) in &pairs {
            let reused = check_with_c_unroll_in(scalar, vector, &config, &mut warm);
            let fresh = check_with_c_unroll(scalar, vector, &config);
            assert_eq!(class(&reused), class(&fresh));
        }
        let stats = warm.reuse_stats();
        assert!(
            stats.blast_hits > 0,
            "revisiting a scalar should replay its memoized premise, stats: {:?}",
            stats
        );
    }

    #[test]
    fn memo_only_session_produces_identical_verdicts() {
        // Blast memoization alone must be invisible: same verdicts, with
        // cache hits once a structurally repeated query arrives. The wrong
        // candidate is used for the repeat because its query actually
        // reaches the SAT solver — the correct S000 one simplifies to a
        // constant at the term level and never blasts.
        let config = quick_config();
        let mut memoized = TvSession::with_reuse(TvReuse {
            memo: true,
            incremental: false,
            simplify: SimplifyConfig::default(),
        });
        for vector in [S000_VEC_WRONG, S000_VEC, S000_VEC_WRONG] {
            let with_memo = check_with_c_unroll_in(&f(S000), &f(vector), &config, &mut memoized);
            let plain = check_with_c_unroll(&f(S000), &f(vector), &config);
            assert_eq!(with_memo, plain);
        }
        assert!(memoized.reuse_stats().blast_hits > 0);
    }

    #[test]
    fn spatial_splitting_shares_one_warm_session_across_lanes() {
        let config = quick_config();
        let mut warm = TvSession::with_reuse(TvReuse::full());
        let verdict = check_with_spatial_splitting_in(&f(S000), &f(S000_VEC), &config, &mut warm);
        assert_eq!(verdict, TvVerdict::Equivalent);
        // All 8 lanes query the same per-scalar instance; lanes after the
        // first reuse it under an assumption.
        assert!(warm.reuse_stats().assumption_reuses >= 8);
    }
}
