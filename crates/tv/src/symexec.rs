//! Guarded symbolic execution of mini-C into SMT terms.
//!
//! The executor turns a kernel into a map from array names to vectors of
//! symbolic 32-bit terms (one per cell), given:
//!
//! * concrete values for the scalar parameters that control trip counts
//!   (the loop bound `n` is fixed to a multiple of the vectorization width,
//!   which realizes the paper's `(end1 - start1) % m == 0` assumption), and
//! * fully symbolic initial contents for every array parameter, each in its
//!   own region (the paper's non-aliasing modelling from Section 3.1).
//!
//! Control flow is handled by *predicated* execution: every store is guarded
//! by the path condition, `if`/`else` become ite-merges, and forward `goto`s
//! become suppression guards that are lifted at their label. Loops are
//! unrolled on the fly as long as their condition folds to a constant, which
//! it does because induction variables and bounds are concrete.

use lv_cir::ast::{AssignOp, BinOp, Block, Expr, Function, Stmt, Type, UnOp};
use lv_simd::LANES;
use lv_smt::{Context, TermId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Why symbolic execution could not produce a verification condition.
///
/// These map to the paper's *Inconclusive* causes other than solver timeouts:
/// unmodeled intrinsics, unsupported code shapes, and blow-ups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymExecError {
    /// Human-readable reason.
    pub reason: String,
}

impl SymExecError {
    fn new(reason: impl Into<String>) -> SymExecError {
        SymExecError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SymExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "symbolic execution failed: {}", self.reason)
    }
}

impl Error for SymExecError {}

/// Configuration for one symbolic run.
#[derive(Debug, Clone)]
pub struct SymExecConfig {
    /// Concrete values for scalar parameters (typically just the bound `n`).
    pub scalar_bindings: HashMap<String, i32>,
    /// Number of cells modelled per array.
    pub array_len: usize,
    /// Maximum number of dynamically unrolled loop iterations (across all
    /// loops) before giving up.
    pub max_iterations: usize,
    /// Prefix prepended to the symbolic array cell variable names, so the
    /// source and target runs share input variables ("" for both).
    pub input_prefix: String,
}

impl Default for SymExecConfig {
    fn default() -> Self {
        SymExecConfig {
            scalar_bindings: HashMap::new(),
            array_len: 2 * LANES + 4,
            max_iterations: 4096,
            input_prefix: String::new(),
        }
    }
}

/// The result of symbolically executing one function.
#[derive(Debug, Clone)]
pub struct SymOutcome {
    /// Final symbolic contents of every array parameter.
    pub arrays: HashMap<String, Vec<TermId>>,
    /// Names (in declaration order) of the array parameters.
    pub array_order: Vec<String>,
    /// A boolean term that is true exactly when the execution triggered
    /// undefined behaviour (out-of-bounds access, division by zero).
    pub ub: TermId,
    /// Number of loop iterations that were unrolled.
    pub unrolled_iterations: usize,
}

/// Symbolically executes `func` and returns the final array state.
///
/// The *initial* contents of array `a` are the shared symbolic variables
/// `{prefix}a!0 .. {prefix}a!len-1`, so executing the scalar and the
/// vectorized function with the same context and prefix compares them on the
/// same inputs. Scalar parameters not bound in the config become fresh
/// symbolic variables (they do not control loops in the TSVC subset).
///
/// # Errors
///
/// Returns [`SymExecError`] for loops whose conditions do not fold to
/// constants, backward `goto`s, unsupported intrinsics, and iteration blow-ups.
pub fn sym_exec(
    ctx: &mut Context,
    func: &Function,
    config: &SymExecConfig,
) -> Result<SymOutcome, SymExecError> {
    let mut exec = SymExec::new(ctx, func, config)?;
    exec.run(func)?;
    Ok(exec.finish())
}

/// A symbolic value: a 32-bit term, an 8-lane vector of terms, or a pointer.
#[derive(Debug, Clone)]
enum SymValue {
    Scalar(TermId),
    Vector([TermId; LANES]),
    Ptr { array: String, offset: i64 },
}

struct SymExec<'a> {
    ctx: &'a mut Context,
    config: &'a SymExecConfig,
    scalars: HashMap<String, SymValue>,
    arrays: HashMap<String, Vec<TermId>>,
    array_order: Vec<String>,
    /// Path suppression due to taken forward gotos / returns.
    suppress: TermId,
    /// Pending goto guards per label.
    pending: HashMap<String, TermId>,
    ub: TermId,
    iterations: usize,
}

impl<'a> SymExec<'a> {
    fn new(
        ctx: &'a mut Context,
        func: &Function,
        config: &'a SymExecConfig,
    ) -> Result<Self, SymExecError> {
        let mut scalars = HashMap::new();
        let mut arrays = HashMap::new();
        let mut array_order = Vec::new();
        for param in &func.params {
            match &param.ty {
                Type::Int => {
                    let term = match config.scalar_bindings.get(&param.name) {
                        Some(&v) => ctx.bv32(v),
                        None => ctx.bv_var(format!("{}{}", config.input_prefix, param.name), 32),
                    };
                    scalars.insert(param.name.clone(), SymValue::Scalar(term));
                }
                Type::Ptr(_) => {
                    let cells: Vec<TermId> = (0..config.array_len)
                        .map(|i| {
                            ctx.bv_var(format!("{}{}!{}", config.input_prefix, param.name, i), 32)
                        })
                        .collect();
                    arrays.insert(param.name.clone(), cells);
                    array_order.push(param.name.clone());
                    scalars.insert(
                        param.name.clone(),
                        SymValue::Ptr {
                            array: param.name.clone(),
                            offset: 0,
                        },
                    );
                }
                other => {
                    return Err(SymExecError::new(format!(
                        "unsupported parameter type {} for `{}`",
                        other, param.name
                    )))
                }
            }
        }
        let false_t = ctx.bool_const(false);
        Ok(SymExec {
            ctx,
            config,
            scalars,
            arrays,
            array_order,
            suppress: false_t,
            pending: HashMap::new(),
            ub: false_t,
            iterations: 0,
        })
    }

    fn run(&mut self, func: &Function) -> Result<(), SymExecError> {
        let guard = self.ctx.bool_const(true);
        self.exec_block(&func.body, guard)
    }

    fn finish(self) -> SymOutcome {
        SymOutcome {
            arrays: self.arrays,
            array_order: self.array_order,
            ub: self.ub,
            unrolled_iterations: self.iterations,
        }
    }

    fn active(&mut self, guard: TermId) -> TermId {
        let not_sup = self.ctx.not(self.suppress);
        self.ctx.and(guard, not_sup)
    }

    fn record_ub(&mut self, guard: TermId) {
        self.ub = self.ctx.or(self.ub, guard);
    }

    // ---- statements -----------------------------------------------------------

    fn exec_block(&mut self, block: &Block, guard: TermId) -> Result<(), SymExecError> {
        for (idx, stmt) in block.stmts.iter().enumerate() {
            if let Stmt::Goto(label) = stmt {
                // Backward gotos (label earlier in this block) cannot be
                // expressed with suppression guards.
                let is_backward = block.stmts[..idx]
                    .iter()
                    .any(|s| matches!(s, Stmt::Label(l) if l == label));
                if is_backward {
                    return Err(SymExecError::new(format!(
                        "backward goto to label `{}` is not supported",
                        label
                    )));
                }
            }
            self.exec_stmt(stmt, guard)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, guard: TermId) -> Result<(), SymExecError> {
        match stmt {
            Stmt::Decl { ty, name, init } => {
                let value = match (init, ty) {
                    (Some(init), _) => self.eval(init, guard)?,
                    (None, Type::Int) => SymValue::Scalar(self.ctx.bv32(0)),
                    (None, Type::M256i) => SymValue::Vector([self.ctx.bv32(0); LANES]),
                    (None, other) => {
                        return Err(SymExecError::new(format!(
                            "cannot default-initialize `{}` of type {}",
                            name, other
                        )))
                    }
                };
                // Declarations are unconditional bindings; conditional
                // declarations do not occur after unrolling in this subset.
                self.scalars.insert(name.clone(), value);
                Ok(())
            }
            Stmt::Expr(e) => {
                self.eval(e, guard)?;
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.eval_scalar(cond, guard)?;
                let zero = self.ctx.bv32(0);
                let taken = self.ctx.ne(c, zero);
                let not_taken = self.ctx.not(taken);
                let then_guard = self.ctx.and(guard, taken);
                let else_guard = self.ctx.and(guard, not_taken);
                // Predicated execution: both branches run, every store is
                // guarded, so the merge is implicit.
                self.exec_block(then_branch, then_guard)?;
                if let Some(else_branch) = else_branch {
                    self.exec_block(else_branch, else_guard)?;
                }
                Ok(())
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.exec_stmt(init, guard)?;
                }
                loop {
                    if let Some(cond) = cond {
                        let c = self.eval_scalar(cond, guard)?;
                        match self.ctx.as_bv_const(c) {
                            Some(0) => break,
                            Some(_) => {}
                            None => {
                                // The condition may also be a folded boolean
                                // (comparisons return 0/1 via ite), so try to
                                // interpret it as such.
                                return Err(SymExecError::new(
                                    "loop condition does not fold to a constant; the loop cannot be unrolled",
                                ));
                            }
                        }
                    }
                    self.iterations += 1;
                    if self.iterations > self.config.max_iterations {
                        return Err(SymExecError::new(format!(
                            "exceeded the unrolling budget of {} iterations",
                            self.config.max_iterations
                        )));
                    }
                    self.exec_block(body, guard)?;
                    if let Some(step) = step {
                        self.eval(step, guard)?;
                    }
                    if cond.is_none() {
                        return Err(SymExecError::new("infinite for-loop without a condition"));
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body } => {
                loop {
                    let c = self.eval_scalar(cond, guard)?;
                    match self.ctx.as_bv_const(c) {
                        Some(0) => break,
                        Some(_) => {}
                        None => {
                            return Err(SymExecError::new(
                                "while condition does not fold to a constant",
                            ))
                        }
                    }
                    self.iterations += 1;
                    if self.iterations > self.config.max_iterations {
                        return Err(SymExecError::new(format!(
                            "exceeded the unrolling budget of {} iterations",
                            self.config.max_iterations
                        )));
                    }
                    self.exec_block(body, guard)?;
                }
                Ok(())
            }
            Stmt::Return(_) => {
                let active = self.active(guard);
                self.suppress = self.ctx.or(self.suppress, active);
                Ok(())
            }
            Stmt::Goto(label) => {
                let active = self.active(guard);
                let entry = self
                    .pending
                    .get(label)
                    .copied()
                    .unwrap_or_else(|| self.ctx.bool_const(false));
                let merged = self.ctx.or(entry, active);
                self.pending.insert(label.clone(), merged);
                self.suppress = self.ctx.or(self.suppress, active);
                Ok(())
            }
            Stmt::Label(label) => {
                if let Some(arrivals) = self.pending.remove(label) {
                    let not_arrivals = self.ctx.not(arrivals);
                    self.suppress = self.ctx.and(self.suppress, not_arrivals);
                }
                Ok(())
            }
            Stmt::Break | Stmt::Continue => Err(SymExecError::new(
                "break/continue inside symbolically executed code are not supported; \
                 the C-level unroller rewrites break into return first",
            )),
            Stmt::Block(b) => self.exec_block(b, guard),
            Stmt::Empty => Ok(()),
        }
    }

    // ---- expressions -------------------------------------------------------------

    fn eval_scalar(&mut self, expr: &Expr, guard: TermId) -> Result<TermId, SymExecError> {
        match self.eval(expr, guard)? {
            // Guard the sort at the user-input boundary: every scalar the
            // executor hands to a bitvector constructor must be a bitvector.
            // All current producers coerce comparisons to 0/1 words, but a
            // future encoding that leaks a Bool term here must surface as a
            // typed `Inconclusive`, not as `Sort::width`'s panic.
            SymValue::Scalar(t) if self.ctx.sort(t).is_bool() => Err(SymExecError::new(
                "expression has boolean sort where a 32-bit value is required",
            )),
            SymValue::Scalar(t) => Ok(t),
            SymValue::Vector(_) => Err(SymExecError::new("expected a scalar, found a vector")),
            SymValue::Ptr { .. } => Err(SymExecError::new("expected a scalar, found a pointer")),
        }
    }

    fn eval_vector(&mut self, expr: &Expr, guard: TermId) -> Result<[TermId; LANES], SymExecError> {
        match self.eval(expr, guard)? {
            SymValue::Vector(v) => Ok(v),
            _ => Err(SymExecError::new("expected a __m256i value")),
        }
    }

    fn eval_ptr(&mut self, expr: &Expr, guard: TermId) -> Result<(String, i64), SymExecError> {
        match self.eval(expr, guard)? {
            SymValue::Ptr { array, offset } => Ok((array, offset)),
            _ => Err(SymExecError::new("expected a pointer value")),
        }
    }

    fn concrete_index(&self, term: TermId) -> Result<i64, SymExecError> {
        match self.ctx.as_bv_const(term) {
            Some(v) => Ok(lv_smt::sign_extend(v, 32)),
            None => Err(SymExecError::new(
                "array subscript does not fold to a constant after unrolling",
            )),
        }
    }

    fn check_bounds(&mut self, array: &str, index: i64, lanes: i64, guard: TermId) -> bool {
        let len = self.arrays[array].len() as i64;
        if index < 0 || index + lanes > len {
            self.record_ub(guard);
            return false;
        }
        true
    }

    fn read_cell(
        &mut self,
        array: &str,
        index: i64,
        guard: TermId,
    ) -> Result<TermId, SymExecError> {
        let active = self.active(guard);
        if !self.check_bounds(array, index, 1, active) {
            // Out of the modelled window: the value is an unconstrained fresh
            // symbol (the UB flag already records the violation).
            return Ok(self.ctx.bv_var(format!("oob!{}!{}", array, index), 32));
        }
        Ok(self.arrays[array][index as usize])
    }

    fn write_cell(
        &mut self,
        array: &str,
        index: i64,
        value: TermId,
        guard: TermId,
    ) -> Result<(), SymExecError> {
        let active = self.active(guard);
        if !self.check_bounds(array, index, 1, active) {
            return Ok(());
        }
        let old = self.arrays[array][index as usize];
        let merged = self.ctx.ite(active, value, old);
        self.arrays.get_mut(array).expect("array exists")[index as usize] = merged;
        Ok(())
    }

    fn assign_scalar(
        &mut self,
        name: &str,
        value: SymValue,
        guard: TermId,
    ) -> Result<(), SymExecError> {
        let active = self.active(guard);
        match (self.scalars.get(name).cloned(), value) {
            (Some(SymValue::Scalar(old)), SymValue::Scalar(new)) => {
                let merged = self.ctx.ite(active, new, old);
                self.scalars
                    .insert(name.to_string(), SymValue::Scalar(merged));
                Ok(())
            }
            (Some(SymValue::Vector(old)), SymValue::Vector(new)) => {
                let mut merged = old;
                for i in 0..LANES {
                    merged[i] = self.ctx.ite(active, new[i], old[i]);
                }
                self.scalars
                    .insert(name.to_string(), SymValue::Vector(merged));
                Ok(())
            }
            (Some(SymValue::Ptr { .. }), new @ SymValue::Ptr { .. }) | (None, new) => {
                self.scalars.insert(name.to_string(), new);
                Ok(())
            }
            (old, new) => Err(SymExecError::new(format!(
                "assignment to `{}` changes its kind ({:?} -> {:?})",
                name, old, new
            ))),
        }
    }

    fn eval(&mut self, expr: &Expr, guard: TermId) -> Result<SymValue, SymExecError> {
        match expr {
            Expr::IntLit(v) => Ok(SymValue::Scalar(self.ctx.bv32(*v as i32))),
            Expr::Var(name) => self
                .scalars
                .get(name)
                .cloned()
                .ok_or_else(|| SymExecError::new(format!("unbound variable `{}`", name))),
            Expr::Index { base, index } => {
                let (array, offset) = self.eval_ptr(base, guard)?;
                let idx_term = self.eval_scalar(index, guard)?;
                let idx = self.concrete_index(idx_term)? + offset;
                Ok(SymValue::Scalar(self.read_cell(&array, idx, guard)?))
            }
            Expr::Unary { op, expr } => {
                let v = self.eval_scalar(expr, guard)?;
                let out = match op {
                    UnOp::Neg => self.ctx.bv_neg(v),
                    UnOp::BitNot => self.ctx.bv_not(v),
                    UnOp::Not => {
                        let zero = self.ctx.bv32(0);
                        let one = self.ctx.bv32(1);
                        let is_zero = self.ctx.eq(v, zero);
                        self.ctx.ite(is_zero, one, zero)
                    }
                };
                Ok(SymValue::Scalar(out))
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(*op, lhs, rhs, guard),
            Expr::Assign { op, target, value } => self.eval_assign(*op, target, value, guard),
            Expr::Call { callee, args } => self.eval_call(callee, args, guard),
            Expr::Cast { expr, .. } => self.eval(expr, guard),
            Expr::AddrOf(inner) => match inner.as_ref() {
                Expr::Index { base, index } => {
                    let (array, offset) = self.eval_ptr(base, guard)?;
                    let idx_term = self.eval_scalar(index, guard)?;
                    let idx = self.concrete_index(idx_term)? + offset;
                    Ok(SymValue::Ptr { array, offset: idx })
                }
                Expr::Var(_) => self.eval(inner, guard),
                other => Err(SymExecError::new(format!(
                    "unsupported address-of operand {:?}",
                    other
                ))),
            },
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let c = self.eval_scalar(cond, guard)?;
                let zero = self.ctx.bv32(0);
                let taken = self.ctx.ne(c, zero);
                let t = self.eval_scalar(then_expr, guard)?;
                let e = self.eval_scalar(else_expr, guard)?;
                Ok(SymValue::Scalar(self.ctx.ite(taken, t, e)))
            }
        }
    }

    fn eval_binary(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        guard: TermId,
    ) -> Result<SymValue, SymExecError> {
        // Pointer arithmetic keeps the offset concrete.
        let lhs_v = self.eval(lhs, guard)?;
        if let SymValue::Ptr { array, offset } = &lhs_v {
            let rhs_t = self.eval_scalar(rhs, guard)?;
            let delta = self.concrete_index(rhs_t)?;
            let new_offset = match op {
                BinOp::Add => offset + delta,
                BinOp::Sub => offset - delta,
                _ => return Err(SymExecError::new("unsupported pointer arithmetic operator")),
            };
            return Ok(SymValue::Ptr {
                array: array.clone(),
                offset: new_offset,
            });
        }
        let l = match lhs_v {
            SymValue::Scalar(t) => t,
            _ => return Err(SymExecError::new("expected scalar operands")),
        };
        let zero = self.ctx.bv32(0);
        let one = self.ctx.bv32(1);
        // Short-circuit operators: evaluate both sides (they are pure in this
        // subset) and combine logically.
        let r = match self.eval(rhs, guard)? {
            SymValue::Scalar(t) => t,
            SymValue::Ptr { array, offset } if op == BinOp::Add => {
                let delta = self.concrete_index(l)?;
                return Ok(SymValue::Ptr {
                    array,
                    offset: offset + delta,
                });
            }
            _ => return Err(SymExecError::new("expected scalar operands")),
        };
        // Same boundary guard as `eval_scalar`: ill-sorted operands must
        // become a typed inconclusive verdict, never a `Sort::width` panic.
        if self.ctx.sort(l).is_bool() || self.ctx.sort(r).is_bool() {
            return Err(SymExecError::new(
                "operand has boolean sort where a 32-bit value is required",
            ));
        }
        let bool_to_int = |ctx: &mut Context, b: TermId| ctx.ite(b, one, zero);
        let out = match op {
            BinOp::Add => self.ctx.bv_add(l, r),
            BinOp::Sub => self.ctx.bv_sub(l, r),
            BinOp::Mul => self.ctx.bv_mul(l, r),
            BinOp::Div => {
                let is_zero = self.ctx.eq(r, zero);
                let active = self.active(guard);
                let div_ub = self.ctx.and(active, is_zero);
                self.record_ub(div_ub);
                self.ctx.bv_sdiv(l, r)
            }
            BinOp::Rem => {
                let is_zero = self.ctx.eq(r, zero);
                let active = self.active(guard);
                let div_ub = self.ctx.and(active, is_zero);
                self.record_ub(div_ub);
                self.ctx.bv_srem(l, r)
            }
            BinOp::Lt => {
                let b = self.ctx.bv_slt(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::Le => {
                let b = self.ctx.bv_sle(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::Gt => {
                let b = self.ctx.bv_sgt(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::Ge => {
                let b = self.ctx.bv_sge(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::Eq => {
                let b = self.ctx.eq(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::Ne => {
                let b = self.ctx.ne(l, r);
                bool_to_int(self.ctx, b)
            }
            BinOp::And => {
                let ln = self.ctx.ne(l, zero);
                let rn = self.ctx.ne(r, zero);
                let b = self.ctx.and(ln, rn);
                bool_to_int(self.ctx, b)
            }
            BinOp::Or => {
                let ln = self.ctx.ne(l, zero);
                let rn = self.ctx.ne(r, zero);
                let b = self.ctx.or(ln, rn);
                bool_to_int(self.ctx, b)
            }
            BinOp::BitAnd => self.ctx.bv_and(l, r),
            BinOp::BitOr => self.ctx.bv_or(l, r),
            BinOp::BitXor => self.ctx.bv_xor(l, r),
            BinOp::Shl => self.ctx.bv_shl(l, r),
            BinOp::Shr => self.ctx.bv_ashr(l, r),
        };
        Ok(SymValue::Scalar(out))
    }

    fn eval_assign(
        &mut self,
        op: AssignOp,
        target: &Expr,
        value: &Expr,
        guard: TermId,
    ) -> Result<SymValue, SymExecError> {
        let new_value = match op.binop() {
            None => self.eval(value, guard)?,
            Some(binop) => self.eval_binary(binop, target, value, guard)?,
        };
        match target {
            Expr::Var(name) => {
                self.assign_scalar(name, new_value.clone(), guard)?;
                Ok(new_value)
            }
            Expr::Index { base, index } => {
                let (array, offset) = self.eval_ptr(base, guard)?;
                let idx_term = self.eval_scalar(index, guard)?;
                let idx = self.concrete_index(idx_term)? + offset;
                let scalar = match &new_value {
                    SymValue::Scalar(t) => *t,
                    _ => return Err(SymExecError::new("can only store scalars into arrays")),
                };
                self.write_cell(&array, idx, scalar, guard)?;
                Ok(new_value)
            }
            other => Err(SymExecError::new(format!(
                "invalid assignment target {:?}",
                other
            ))),
        }
    }

    fn eval_call(
        &mut self,
        callee: &str,
        args: &[Expr],
        guard: TermId,
    ) -> Result<SymValue, SymExecError> {
        match callee {
            "_mm256_loadu_si256" | "_mm256_maskload_epi32" => {
                let (array, base) = self.eval_ptr(&args[0], guard)?;
                let mask = if callee == "_mm256_maskload_epi32" {
                    Some(self.eval_vector(&args[1], guard)?)
                } else {
                    None
                };
                let mut lanes = [self.ctx.bv32(0); LANES];
                for (i, lane) in lanes.iter_mut().enumerate() {
                    let loaded = self.read_cell(&array, base + i as i64, guard)?;
                    *lane = match &mask {
                        None => loaded,
                        Some(mask) => {
                            let zero = self.ctx.bv32(0);
                            let neg = self.ctx.bv_slt(mask[i], zero);
                            self.ctx.ite(neg, loaded, zero)
                        }
                    };
                }
                Ok(SymValue::Vector(lanes))
            }
            "_mm256_storeu_si256" | "_mm256_maskstore_epi32" => {
                let (array, base) = self.eval_ptr(&args[0], guard)?;
                let (mask, value) = if callee == "_mm256_maskstore_epi32" {
                    (
                        Some(self.eval_vector(&args[1], guard)?),
                        self.eval_vector(&args[2], guard)?,
                    )
                } else {
                    (None, self.eval_vector(&args[1], guard)?)
                };
                for i in 0..LANES {
                    let lane_guard = match &mask {
                        None => guard,
                        Some(mask) => {
                            let zero = self.ctx.bv32(0);
                            let neg = self.ctx.bv_slt(mask[i], zero);
                            self.ctx.and(guard, neg)
                        }
                    };
                    self.write_cell(&array, base + i as i64, value[i], lane_guard)?;
                }
                Ok(SymValue::Scalar(self.ctx.bv32(0)))
            }
            _ => self.eval_pure_intrinsic(callee, args, guard),
        }
    }

    fn eval_pure_intrinsic(
        &mut self,
        callee: &str,
        args: &[Expr],
        guard: TermId,
    ) -> Result<SymValue, SymExecError> {
        let zero32 = self.ctx.bv32(0);
        let splat = |v: TermId| -> [TermId; LANES] { [v; LANES] };
        let mut vec_args: Vec<[TermId; LANES]> = Vec::new();
        let mut scalar_args: Vec<TermId> = Vec::new();
        let sig = lv_cir::intrinsics::intrinsic_sig(callee).ok_or_else(|| {
            SymExecError::new(format!(
                "intrinsic `{}` is not modelled by the verifier",
                callee
            ))
        })?;
        for (arg, slot) in args.iter().zip(sig.params.iter()) {
            match slot {
                lv_cir::intrinsics::IntrinsicType::I32 => {
                    scalar_args.push(self.eval_scalar(arg, guard)?)
                }
                lv_cir::intrinsics::IntrinsicType::Vec => {
                    vec_args.push(self.eval_vector(arg, guard)?)
                }
                _ => {
                    return Err(SymExecError::new(format!(
                        "unexpected memory operand in pure intrinsic `{}`",
                        callee
                    )))
                }
            }
        }
        let lanewise2 = |s: &mut Self, f: &dyn Fn(&mut Context, TermId, TermId) -> TermId| {
            let mut out = splat(zero32);
            for i in 0..LANES {
                out[i] = f(s.ctx, vec_args[0][i], vec_args[1][i]);
            }
            SymValue::Vector(out)
        };
        let result = match callee {
            "_mm256_setzero_si256" => SymValue::Vector(splat(zero32)),
            "_mm256_set1_epi32" => SymValue::Vector(splat(scalar_args[0])),
            "_mm256_setr_epi32" | "_mm256_set_epi32" => {
                let mut lanes = splat(zero32);
                for i in 0..LANES {
                    lanes[i] = if callee == "_mm256_setr_epi32" {
                        scalar_args[i]
                    } else {
                        scalar_args[LANES - 1 - i]
                    };
                }
                SymValue::Vector(lanes)
            }
            "_mm256_add_epi32" => lanewise2(self, &|c, a, b| c.bv_add(a, b)),
            "_mm256_sub_epi32" => lanewise2(self, &|c, a, b| c.bv_sub(a, b)),
            "_mm256_mullo_epi32" => lanewise2(self, &|c, a, b| c.bv_mul(a, b)),
            "_mm256_and_si256" => lanewise2(self, &|c, a, b| c.bv_and(a, b)),
            "_mm256_or_si256" => lanewise2(self, &|c, a, b| c.bv_or(a, b)),
            "_mm256_xor_si256" => lanewise2(self, &|c, a, b| c.bv_xor(a, b)),
            "_mm256_andnot_si256" => lanewise2(self, &|c, a, b| {
                let na = c.bv_not(a);
                c.bv_and(na, b)
            }),
            "_mm256_max_epi32" => lanewise2(self, &|c, a, b| {
                let gt = c.bv_slt(b, a);
                c.ite(gt, a, b)
            }),
            "_mm256_min_epi32" => lanewise2(self, &|c, a, b| {
                let lt = c.bv_slt(a, b);
                c.ite(lt, a, b)
            }),
            "_mm256_cmpgt_epi32" => lanewise2(self, &|c, a, b| {
                let gt = c.bv_slt(b, a);
                let ones = c.bv32(-1);
                let zero = c.bv32(0);
                c.ite(gt, ones, zero)
            }),
            "_mm256_cmpeq_epi32" => lanewise2(self, &|c, a, b| {
                let eq = c.eq(a, b);
                let ones = c.bv32(-1);
                let zero = c.bv32(0);
                c.ite(eq, ones, zero)
            }),
            "_mm256_abs_epi32" => {
                let mut out = splat(zero32);
                for i in 0..LANES {
                    let a = vec_args[0][i];
                    let neg = self.ctx.bv_neg(a);
                    let zero = self.ctx.bv32(0);
                    let is_neg = self.ctx.bv_slt(a, zero);
                    out[i] = self.ctx.ite(is_neg, neg, a);
                }
                SymValue::Vector(out)
            }
            "_mm256_blendv_epi8" => {
                // For the i32-lane masks produced by cmpgt/cmpeq, byte-level
                // blending degenerates to lane selection on the sign bit.
                let mut out = splat(zero32);
                for i in 0..LANES {
                    let zero = self.ctx.bv32(0);
                    let take_b = self.ctx.bv_slt(vec_args[2][i], zero);
                    out[i] = self.ctx.ite(take_b, vec_args[1][i], vec_args[0][i]);
                }
                SymValue::Vector(out)
            }
            "_mm256_slli_epi32" | "_mm256_srli_epi32" | "_mm256_srai_epi32" => {
                let mut out = splat(zero32);
                for i in 0..LANES {
                    let a = vec_args[0][i];
                    let amount = scalar_args[0];
                    out[i] = match callee {
                        "_mm256_slli_epi32" => self.ctx.bv_shl(a, amount),
                        "_mm256_srli_epi32" => self.ctx.bv_lshr(a, amount),
                        _ => self.ctx.bv_ashr(a, amount),
                    };
                }
                SymValue::Vector(out)
            }
            "_mm256_extract_epi32" => {
                let idx = self
                    .ctx
                    .as_bv_const(scalar_args[0])
                    .ok_or_else(|| SymExecError::new("extract lane index must be constant"))?;
                SymValue::Scalar(vec_args[0][(idx as usize) % LANES])
            }
            "_mm256_insert_epi32" => {
                let idx = self
                    .ctx
                    .as_bv_const(scalar_args[1])
                    .ok_or_else(|| SymExecError::new("insert lane index must be constant"))?;
                let mut out = vec_args[0];
                out[(idx as usize) % LANES] = scalar_args[0];
                SymValue::Vector(out)
            }
            "_mm256_hadd_epi32" => {
                let a = vec_args[0];
                let b = vec_args[1];
                let mut out = splat(zero32);
                let pairs = [
                    (a[0], a[1]),
                    (a[2], a[3]),
                    (b[0], b[1]),
                    (b[2], b[3]),
                    (a[4], a[5]),
                    (a[6], a[7]),
                    (b[4], b[5]),
                    (b[6], b[7]),
                ];
                for (i, (x, y)) in pairs.into_iter().enumerate() {
                    out[i] = self.ctx.bv_add(x, y);
                }
                SymValue::Vector(out)
            }
            "_mm256_permutevar8x32_epi32" => {
                // Lane indices must be constants for the verifier (they are in
                // all generated code).
                let mut out = splat(zero32);
                for i in 0..LANES {
                    let idx = self
                        .ctx
                        .as_bv_const(vec_args[1][i])
                        .ok_or_else(|| SymExecError::new("permutevar indices must be constants"))?;
                    out[i] = vec_args[0][(idx as usize) & 7];
                }
                SymValue::Vector(out)
            }
            "_mm256_shuffle_epi32" | "_mm256_permute2x128_si256" | "_mm256_movemask_epi8" => {
                return Err(SymExecError::new(format!(
                    "intrinsic `{}` is recognized but not encoded by the verifier",
                    callee
                )))
            }
            other => {
                return Err(SymExecError::new(format!(
                    "intrinsic `{}` is not modelled by the verifier",
                    other
                )))
            }
        };
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;
    use lv_smt::{Solver, SolverBudget, Validity};

    fn exec_with(
        ctx: &mut Context,
        src: &str,
        n: i32,
        len: usize,
    ) -> Result<SymOutcome, SymExecError> {
        let func = parse_function(src).unwrap();
        let mut config = SymExecConfig {
            array_len: len,
            ..SymExecConfig::default()
        };
        config.scalar_bindings.insert("n".into(), n);
        sym_exec(ctx, &func, &config)
    }

    #[test]
    fn straight_line_stores() {
        let mut solver = Solver::new();
        let out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { a[0] = b[0] + 1; }",
            4,
            4,
        )
        .unwrap();
        // a[0] must equal b!0 + 1.
        let b0 = solver.ctx.bv_var("b!0", 32);
        let one = solver.ctx.bv32(1);
        let expected = solver.ctx.bv_add(b0, one);
        let eq = solver.ctx.eq(out.arrays["a"][0], expected);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn loop_unrolls_with_concrete_bound() {
        let mut solver = Solver::new();
        let out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            4,
            6,
        )
        .unwrap();
        assert_eq!(out.unrolled_iterations, 4);
        // Cells beyond the trip count keep their initial symbolic value.
        let a5 = solver.ctx.bv_var("a!5", 32);
        assert_eq!(out.arrays["a"][5], a5);
    }

    #[test]
    fn if_else_becomes_ite() {
        let mut solver = Solver::new();
        let out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { if (b[0] > 0) { a[0] = 1; } else { a[0] = 2; } }",
            4,
            2,
        )
        .unwrap();
        // For b!0 = 5 the result must be 1; for b!0 = -5 it must be 2.
        let b0 = solver.ctx.bv_var("b!0", 32);
        let five = solver.ctx.bv32(5);
        let one = solver.ctx.bv32(1);
        let pre = solver.ctx.eq(b0, five);
        let post = solver.ctx.eq(out.arrays["a"][0], one);
        let vc = solver.ctx.implies(pre, post);
        assert_eq!(
            solver.check_validity(vc, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn goto_suppression_matches_if_else() {
        let mut solver = Solver::new();
        // s278-style forward gotos.
        let out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { if (b[0] > 0) { goto L1; } a[0] = 10; goto L2; L1: a[0] = 20; L2: a[1] = a[0]; }",
            4,
            4,
        )
        .unwrap();
        let b0 = solver.ctx.bv_var("b!0", 32);
        let zero = solver.ctx.bv32(0);
        let twenty = solver.ctx.bv32(20);
        let ten = solver.ctx.bv32(10);
        let pos = solver.ctx.bv_sgt(b0, zero);
        let expected = solver.ctx.ite(pos, twenty, ten);
        let eq0 = solver.ctx.eq(out.arrays["a"][0], expected);
        let eq1 = solver.ctx.eq(out.arrays["a"][1], expected);
        let both = solver.ctx.and(eq0, eq1);
        assert_eq!(
            solver.check_validity(both, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn vector_intrinsics_match_scalar_loop() {
        // A full equivalence check in miniature: 8-wide add against the
        // scalar loop, n = 8.
        let mut solver = Solver::new();
        let scalar_out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            8,
            8,
        )
        .unwrap();
        let vector_out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *b) { for (int i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); __m256i y = _mm256_add_epi32(x, _mm256_set1_epi32(1)); _mm256_storeu_si256((__m256i *)&a[i], y); } }",
            8,
            8,
        )
        .unwrap();
        let mut all = solver.ctx.bool_const(true);
        for i in 0..8 {
            let eq = solver
                .ctx
                .eq(scalar_out.arrays["a"][i], vector_out.arrays["a"][i]);
            all = solver.ctx.and(all, eq);
        }
        assert_eq!(
            solver.check_validity(all, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn out_of_bounds_sets_ub() {
        let mut solver = Solver::new();
        let out = exec_with(&mut solver.ctx, "void f(int n, int *a) { a[6] = 1; }", 4, 4).unwrap();
        assert_eq!(solver.ctx.as_bool_const(out.ub), Some(true));
    }

    #[test]
    fn reduction_scalar_state() {
        let mut solver = Solver::new();
        let out = exec_with(
            &mut solver.ctx,
            "void f(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
            3,
            4,
        )
        .unwrap();
        let a0 = solver.ctx.bv_var("a!0", 32);
        let a1 = solver.ctx.bv_var("a!1", 32);
        let a2 = solver.ctx.bv_var("a!2", 32);
        let s01 = solver.ctx.bv_add(a0, a1);
        let expected = solver.ctx.bv_add(s01, a2);
        let eq = solver.ctx.eq(out.arrays["out"][0], expected);
        assert_eq!(
            solver.check_validity(eq, &SolverBudget::default()),
            Validity::Valid
        );
    }

    #[test]
    fn symbolic_loop_bound_is_rejected() {
        let mut solver = Solver::new();
        let func =
            parse_function("void f(int n, int *a) { for (int i = 0; i < n; i++) { a[i] = 0; } }")
                .unwrap();
        // No binding for n: the loop condition cannot fold.
        let err = sym_exec(&mut solver.ctx, &func, &SymExecConfig::default()).unwrap_err();
        assert!(err.reason.contains("does not fold"), "{}", err);
    }

    #[test]
    fn backward_goto_is_rejected() {
        let mut solver = Solver::new();
        let func =
            parse_function("void f(int n, int *a) { L1: a[0] = a[0] + 1; goto L1; }").unwrap();
        let mut config = SymExecConfig::default();
        config.scalar_bindings.insert("n".into(), 1);
        let err = sym_exec(&mut solver.ctx, &func, &config).unwrap_err();
        assert!(err.reason.contains("backward goto"), "{}", err);
    }

    #[test]
    fn unmodelled_intrinsic_is_rejected() {
        let mut solver = Solver::new();
        let func = parse_function(
            "void f(int n, int *a) { __m256i x = _mm256_loadu_si256((__m256i *)&a[0]); __m256i y = _mm256_shuffle_epi32(x, 27); _mm256_storeu_si256((__m256i *)&a[0], y); }",
        )
        .unwrap();
        let mut config = SymExecConfig::default();
        config.scalar_bindings.insert("n".into(), 8);
        let err = sym_exec(&mut solver.ctx, &func, &config).unwrap_err();
        assert!(err.reason.contains("not encoded"), "{}", err);
    }
}
