//! Verdict-cache lookup cost across storage tiers: the legacy JSON
//! snapshot (parsed eagerly into the hot `HashMap`) vs the binary `LVCS`
//! snapshot (loaded zero-copy as the warm tier), with and without its bloom
//! block, at 1k/10k/100k entries.
//!
//! All three arms drive the *real* product path — `VerdictCache::open`
//! sniffs the file and `VerdictCache::get` answers through the tiers — and
//! measure:
//!
//! * **open** — time to go from a closed file to a queryable cache. JSON
//!   pays a full parse + `HashMap` build; the binary snapshot pays one
//!   `read` plus the load-time validation walk.
//! * **warm hit / warm miss** — per-lookup latency once open.
//! * **cold negative** — the service-scale question: open + a small batch
//!   of misses, amortized per miss. This is what a coordinator consulting a
//!   shared snapshot for keys it has never seen actually pays, and where
//!   the bloom block keeps misses from touching index or payload bytes.
//! * **resident bytes** — the binary tiers' owned buffer vs an estimate of
//!   the JSON tier's `HashMap` footprint.
//!
//! Results are printed and written to `BENCH_7.json` (override with
//! `BENCH_OUT`); set `LV_BENCH_QUICK=1` to drop the 100k size for CI smoke
//! runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_core::cache::{CacheKey, CachedVerdict};
use lv_core::pipeline::{Equivalence, Stage};
use lv_core::{CacheSnapshot, VerdictCache};
use lv_interp::ChecksumClass;
use std::path::Path;
use std::time::{Duration, Instant};

/// Misses amortized into each cold-negative measurement. Small on purpose:
/// the scenario is "a coordinator asks a shared snapshot about a handful of
/// unseen keys", where open cost dominates unless the tier is cheap to open.
const COLD_LOOKUPS: usize = 64;

fn mix(i: u64) -> u64 {
    // splitmix64 finalizer: spread the sequential ids into realistic keys.
    let mut x = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn sample_entries(n: usize) -> Vec<(CacheKey, CachedVerdict)> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            let verdict = match i % 16 {
                0 => Equivalence::Inconclusive,
                1 | 2 => Equivalence::NotEquivalent,
                _ => Equivalence::Equivalent,
            };
            (
                CacheKey {
                    scalar: mix(i),
                    candidate: mix(i ^ 0xabcd_ef01),
                    config: 0xfeed_beef_cafe_f00d,
                },
                CachedVerdict {
                    verdict,
                    stage: Stage::CUnroll,
                    detail: if verdict == Equivalence::Equivalent {
                        String::new()
                    } else {
                        format!("a[{}]: expected 1 but the code produced 2", i % 100)
                    },
                    checksum: Some(ChecksumClass::Plausible),
                },
            )
        })
        .collect()
}

/// Keys guaranteed absent from [`sample_entries`] (different config hash).
fn absent_keys(n: usize) -> Vec<CacheKey> {
    (0..n)
        .map(|i| {
            let i = i as u64;
            CacheKey {
                scalar: mix(i ^ 0x5555_aaaa),
                candidate: mix(i ^ 0x1234_5678),
                config: 0x0bad_0bad_0bad_0bad,
            }
        })
        .collect()
}

struct Arm {
    tag: &'static str,
    open_wall: Duration,
    warm_hit: Duration,
    warm_miss: Duration,
    cold_neg: Duration,
    resident_bytes: u64,
}

/// Estimated heap footprint of the JSON tier's `HashMap` representation.
fn map_resident(cache: &VerdictCache, entries: &[(CacheKey, CachedVerdict)]) -> u64 {
    let slot = std::mem::size_of::<(CacheKey, CachedVerdict)>() as u64 + 8;
    let details: u64 = entries
        .iter()
        .map(|(_, v)| v.detail.capacity() as u64)
        .sum();
    cache.len() as u64 * slot + details
}

fn measure_arm(
    tag: &'static str,
    path: &Path,
    entries: &[(CacheKey, CachedVerdict)],
    misses: &[CacheKey],
    binary_resident: Option<u64>,
) -> Arm {
    let start = Instant::now();
    let cache = VerdictCache::open(path).expect("open");
    let open_wall = start.elapsed();
    assert_eq!(cache.len(), entries.len(), "{}: every entry visible", tag);

    // Warm per-lookup latency over a fixed probe set.
    let probes = entries.len().min(10_000);
    let start = Instant::now();
    for (key, _) in &entries[..probes] {
        assert!(cache.get(key).is_some(), "{}: present key must hit", tag);
    }
    let warm_hit = start.elapsed() / probes as u32;
    let start = Instant::now();
    for key in &misses[..misses.len().min(probes)] {
        assert!(cache.get(key).is_none(), "{}: absent key must miss", tag);
    }
    let warm_miss = start.elapsed() / misses.len().min(probes) as u32;
    let resident_bytes = binary_resident.unwrap_or_else(|| map_resident(&cache, entries));
    drop(cache);

    // Cold negative: open + a small miss batch, amortized per miss.
    let start = Instant::now();
    let cold = VerdictCache::open(path).expect("open");
    for key in &misses[..COLD_LOOKUPS] {
        assert!(cold.get(key).is_none());
    }
    let cold_neg = start.elapsed() / COLD_LOOKUPS as u32;

    Arm {
        tag,
        open_wall,
        warm_hit,
        warm_miss,
        cold_neg,
        resident_bytes,
    }
}

fn measure(dir: &Path, n: usize) -> Vec<Arm> {
    let entries = sample_entries(n);
    let misses = absent_keys(10_000.max(COLD_LOOKUPS));

    let json_path = dir.join(format!("cache-{}.json", n));
    let json = VerdictCache::open(&json_path).expect("json cache");
    for (key, verdict) in &entries {
        json.insert(*key, verdict.clone());
    }
    json.persist().expect("json persist");
    drop(json);

    let bin_path = dir.join(format!("cache-{}.lvcs", n));
    CacheSnapshot::write_file(&bin_path, &entries, false, false).expect("binary snapshot");
    let bin_resident = CacheSnapshot::open(&bin_path)
        .expect("reopen")
        .resident_bytes() as u64;

    let bloom_path = dir.join(format!("cache-{}.bloom.lvcs", n));
    CacheSnapshot::write_file(&bloom_path, &entries, true, false).expect("bloom snapshot");
    let bloom_resident = CacheSnapshot::open(&bloom_path)
        .expect("reopen")
        .resident_bytes() as u64;

    vec![
        measure_arm("json", &json_path, &entries, &misses, None),
        measure_arm("binary", &bin_path, &entries, &misses, Some(bin_resident)),
        measure_arm(
            "binary+bloom",
            &bloom_path,
            &entries,
            &misses,
            Some(bloom_resident),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lv-cache-lookup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let sizes: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000]
    };

    println!("\n=== cache_lookup: JSON snapshot vs binary snapshot vs binary+bloom ===");
    let mut rows = Vec::new();
    for &n in sizes {
        let arms = measure(&dir, n);
        println!("{} entries:", n);
        for arm in &arms {
            println!(
                "  {:>12}: open {:>9.3?} | warm hit {:>8.1?} | warm miss {:>8.1?} | \
                 cold neg {:>9.3?}/lookup | resident {:>9} B",
                arm.tag,
                arm.open_wall,
                arm.warm_hit,
                arm.warm_miss,
                arm.cold_neg,
                arm.resident_bytes
            );
        }
        let json_arm = &arms[0];
        let bloom_arm = &arms[2];
        println!(
            "  binary+bloom vs json: {:.1}x faster open, {:.1}x faster cold negative",
            json_arm.open_wall.as_secs_f64() / bloom_arm.open_wall.as_secs_f64(),
            json_arm.cold_neg.as_secs_f64() / bloom_arm.cold_neg.as_secs_f64(),
        );
        rows.push((n, arms));
    }

    // Emit the machine-readable data point for the repo's perf trajectory.
    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_7.json", pkg),
            Err(_) => "BENCH_7.json".to_string(),
        });
    let mut json = String::from(
        "{\"bench\":\"cache_lookup\",\
         \"compares\":\"JSON snapshot vs binary snapshot vs binary+bloom \
         (open, warm hit/miss, cold negative amortized over 64 lookups, resident bytes)\",\
         \"sizes\":[",
    );
    for (i, (n, arms)) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!("{{\"entries\":{},\"arms\":[", n));
        for (j, arm) in arms.iter().enumerate() {
            if j > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"tier\":\"{}\",\"open_us\":{},\"warm_hit_ns\":{},\"warm_miss_ns\":{},\
                 \"cold_negative_ns\":{},\"resident_bytes\":{}}}",
                arm.tag,
                arm.open_wall.as_micros(),
                arm.warm_hit.as_nanos(),
                arm.warm_miss.as_nanos(),
                arm.cold_neg.as_nanos(),
                arm.resident_bytes,
            ));
        }
        let json_arm = &arms[0];
        let bloom_arm = &arms[2];
        json.push_str(&format!(
            "],\"open_speedup_x\":{:.2},\"negative_lookup_speedup_x\":{:.2}}}",
            json_arm.open_wall.as_secs_f64() / bloom_arm.open_wall.as_secs_f64(),
            json_arm.cold_neg.as_secs_f64() / bloom_arm.cold_neg.as_secs_f64(),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // Criterion loops over the mid size, per-open and per-cold-negative.
    let loop_entries = sample_entries(10_000);
    let loop_misses = absent_keys(COLD_LOOKUPS);
    let json_path = dir.join("cache-10000.json");
    let bloom_path = dir.join("cache-10000.bloom.lvcs");
    assert!(json_path.exists() && bloom_path.exists());
    c.bench_function("cache_open_json_10k", |b| {
        b.iter(|| VerdictCache::open(&json_path).expect("open").len())
    });
    c.bench_function("cache_open_binary_bloom_10k", |b| {
        b.iter(|| VerdictCache::open(&bloom_path).expect("open").len())
    });
    c.bench_function("cache_cold_negative_binary_bloom_10k", |b| {
        b.iter(|| {
            let cache = VerdictCache::open(&bloom_path).expect("open");
            loop_misses
                .iter()
                .filter(|key| cache.get(key).is_some())
                .count()
        })
    });
    drop(loop_entries);
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
