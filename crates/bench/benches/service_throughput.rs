//! Verification-service dispatch throughput: the same job batch submitted
//! through the loopback TCP daemon (`VerificationService` + framed `LVSV`
//! wire protocol) vs dispatched in-process (`run_batch` on an engine
//! sharing the identical verdict cache).
//!
//! The batch is a small kernel set replicated under distinct labels, so
//! the content-addressed dedupe path dominates: only the unique kernels
//! ever run stages, everything else is answered from the cache. Three arms:
//!
//! * **loopback cold** — fresh daemon, first submission: unique kernels
//!   run their cascades, replicas dedupe in-batch.
//! * **loopback warm** — immediate resubmission: every verdict answered
//!   from the dedupe/admission pre-pass, zero stages run. This is the pure
//!   wire + framing + cache-lookup cost per job.
//! * **in-process warm** — the same warm batch through `run_batch` with no
//!   socket, the floor the wire overhead is measured against.
//!
//! Results are printed and written to `BENCH_8.json` (override with
//! `BENCH_OUT`); set `LV_BENCH_QUICK=1` to shrink the batch for CI smoke
//! runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_core::{
    EngineConfig, Job, PipelineConfig, ServiceClient, VerdictCache, VerificationEngine,
    VerificationService,
};
use lv_interp::ChecksumConfig;
use lv_tv::{SolverBudget, TvConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

const UNIQUE_KERNELS: [&str; 4] = ["s000", "s112", "s212", "vsumr"];

fn quick_config() -> EngineConfig {
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    })
}

/// `replicas` copies of each unique kernel under distinct labels — same
/// content, same cache key, so everything past the first copy dedupes.
fn replicated_jobs(replicas: usize) -> Vec<Job> {
    let base: Vec<(String, _, _)> = UNIQUE_KERNELS
        .iter()
        .map(|name| {
            let scalar = lv_tsvc::kernel(name).unwrap().function();
            let candidate = lv_agents::vectorize_correct(&scalar).unwrap();
            (name.to_string(), scalar, candidate)
        })
        .collect();
    let mut jobs = Vec::with_capacity(base.len() * replicas);
    for r in 0..replicas {
        for (name, scalar, candidate) in &base {
            jobs.push(Job::new(
                format!("{}#{}", name, r),
                scalar.clone(),
                candidate.clone(),
            ));
        }
    }
    jobs
}

struct Arm {
    tag: &'static str,
    wall: Duration,
    jobs: usize,
    dedupe_hits: u64,
}

impl Arm {
    fn jobs_per_s(&self) -> f64 {
        self.jobs as f64 / self.wall.as_secs_f64()
    }

    fn dedupe_rate(&self) -> f64 {
        self.dedupe_hits as f64 / self.jobs as f64
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let replicas = if quick { 25 } else { 100 };
    let jobs = replicated_jobs(replicas);
    let config = quick_config();

    // Loopback daemon with a shared in-memory dedupe cache.
    let cache = Arc::new(VerdictCache::in_memory());
    let service =
        VerificationService::bind("127.0.0.1:0", config.clone(), cache.clone()).expect("bind");
    let addr = service.local_addr();
    let daemon = std::thread::spawn(move || {
        service.serve_forever().expect("serve");
    });
    let mut client = ServiceClient::connect(addr).expect("connect");

    let before = client.status().expect("status");
    let start = Instant::now();
    let cold_frames = client.submit(&jobs).expect("cold submit");
    let cold_wall = start.elapsed();
    let after_cold = client.status().expect("status");
    assert_eq!(cold_frames.len(), jobs.len());
    let cold = Arm {
        tag: "loopback_cold",
        wall: cold_wall,
        jobs: jobs.len(),
        dedupe_hits: after_cold.dedupe_hits - before.dedupe_hits,
    };

    let start = Instant::now();
    let warm_frames = client.submit(&jobs).expect("warm submit");
    let warm_wall = start.elapsed();
    let after_warm = client.status().expect("status");
    assert!(warm_frames.iter().all(|frame| frame.cache_hit));
    assert_eq!(
        after_warm.stages, after_cold.stages,
        "warm loopback must run zero stages"
    );
    let warm = Arm {
        tag: "loopback_warm",
        wall: warm_wall,
        jobs: jobs.len(),
        dedupe_hits: after_warm.dedupe_hits - after_cold.dedupe_hits,
    };

    // In-process floor: the identical warm batch against the same cache,
    // no socket in the way.
    let engine = VerificationEngine::new(config.clone().with_cache(cache.clone()));
    let start = Instant::now();
    let inproc = engine.run_batch(&jobs);
    let inproc_wall = start.elapsed();
    assert!(inproc.jobs.iter().all(|report| report.cache_hit));
    let inprocess = Arm {
        tag: "inprocess_warm",
        wall: inproc_wall,
        jobs: jobs.len(),
        dedupe_hits: inproc.cache_hits as u64,
    };

    println!("\n=== service_throughput: loopback daemon vs in-process dispatch ===");
    let arms = [&cold, &warm, &inprocess];
    for arm in arms {
        println!(
            "  {:>14}: {:>5} jobs in {:>9.3?} = {:>9.0} jobs/s, dedupe rate {:.2}",
            arm.tag,
            arm.jobs,
            arm.wall,
            arm.jobs_per_s(),
            arm.dedupe_rate()
        );
    }
    let overhead = inprocess.jobs_per_s() / warm.jobs_per_s();
    println!(
        "  warm loopback costs {:.2}x the in-process warm dispatch",
        overhead
    );

    // Emit the machine-readable data point for the repo's perf trajectory.
    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_8.json", pkg),
            Err(_) => "BENCH_8.json".to_string(),
        });
    let mut json = String::from(
        "{\"bench\":\"service_throughput\",\
         \"compares\":\"jobs/s and dedupe hit rate over the loopback LVSV daemon \
         (cold first submission, warm resubmission) vs in-process run_batch on \
         the shared verdict cache\",\"arms\":[",
    );
    for (i, arm) in arms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"arm\":\"{}\",\"jobs\":{},\"wall_us\":{},\"jobs_per_s\":{:.1},\
             \"dedupe_hit_rate\":{:.4}}}",
            arm.tag,
            arm.jobs,
            arm.wall.as_micros(),
            arm.jobs_per_s(),
            arm.dedupe_rate(),
        ));
    }
    json.push_str(&format!(
        "],\"warm_loopback_overhead_x\":{:.3}}}\n",
        overhead
    ));
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // Criterion loops over the warm paths only — the cold arm runs real
    // solver stages and is measured once above.
    c.bench_function("service_warm_submit_loopback", |b| {
        b.iter(|| client.submit(&jobs).expect("submit").len())
    });
    c.bench_function("service_warm_batch_inprocess", |b| {
        b.iter(|| engine.run_batch(&jobs).jobs.len())
    });

    client.shutdown().expect("shutdown");
    daemon.join().expect("daemon thread");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
