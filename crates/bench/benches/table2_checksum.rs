//! Regenerates Table 2: checksum-based testing outcomes at k = 1 / 10 / 100
//! completions (the timed loop uses k = 1/4 on a representative subset).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{full_config, quick_config, REPRESENTATIVE_KERNELS};
use lv_core::table2;

fn bench(c: &mut Criterion) {
    let table = table2(&full_config(), &[1, 10, 25]);
    println!(
        "\n=== Table 2: checksum-based testing (counts scaled to 149 tests) ===\n{}",
        table.render()
    );
    let quick = quick_config(REPRESENTATIVE_KERNELS);
    c.bench_function("table2_checksum_subset", |b| {
        b.iter(|| table2(&quick, &[1, 4]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
