//! Flush-I/O cost of the shard exchange layer: whole-file rewrite-per-job
//! (the legacy `FlushMode::Rewrite` protocol) vs append-only journals
//! (`FlushMode::Journal`, the default) at 10/100/1000 jobs.
//!
//! Both arms drive the *real* persistence APIs — `ShardReportFile::write` +
//! snapshot-mode `VerdictCache::persist` per job on one side,
//! `ShardReportJournal::append` + journal-mode inserts (plus the final
//! `compact_journal`, so the journal arm pays for producing the canonical
//! snapshot too) on the other — and account total bytes written to disk.
//! Rewrite grows quadratically with job count (every flush rewrites every
//! prior record); the journal grows linearly. Results are printed and
//! written to `BENCH_4.json` (override the path with `BENCH_OUT`); set
//! `LV_BENCH_QUICK=1` to drop the 1000-job size for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_core::cache::{CacheKey, CachedVerdict};
use lv_core::pipeline::{Equivalence, Stage};
use lv_core::shard::{ShardReportFile, ShardReportJournal};
use lv_core::{FsyncPolicy, JobReport, StageTrace, VerdictCache};
use lv_interp::ChecksumClass;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const FINGERPRINT: u64 = 0xfeed_beef_cafe_f00d;

fn sample_job(i: usize) -> (CacheKey, CachedVerdict, JobReport) {
    let key = CacheKey {
        scalar: i as u64,
        candidate: (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        config: FINGERPRINT,
    };
    let verdict = CachedVerdict {
        verdict: Equivalence::Equivalent,
        stage: Stage::CUnroll,
        detail: String::new(),
        checksum: Some(ChecksumClass::Plausible),
    };
    let report = JobReport {
        label: format!("job-{:04}", i),
        verdict: Equivalence::Equivalent,
        stage: Stage::CUnroll,
        detail: String::new(),
        checksum: Some(ChecksumClass::Plausible),
        traces: vec![
            StageTrace {
                stage: Stage::Checksum,
                conclusive: false,
                wall: Duration::from_micros(1200 + i as u64),
                conflicts: 0,
                clauses: 0,
                name_mismatch: false,
                escalated: false,
            },
            StageTrace {
                stage: Stage::CUnroll,
                conclusive: true,
                wall: Duration::from_micros(5400 + i as u64),
                conflicts: 17,
                clauses: 20_000,
                name_mismatch: false,
                escalated: false,
            },
        ],
        wall: Duration::from_micros(6600 + i as u64),
        cache_hit: false,
        reuse: Default::default(),
        simplify: Default::default(),
    };
    (key, verdict, report)
}

/// One shard's flush sequence under the legacy rewrite protocol; returns
/// total bytes written.
fn run_rewrite(dir: &Path, jobs: usize) -> u64 {
    let cache_path = dir.join("rw.cache.json");
    let report_path = dir.join("rw.report.json");
    let _ = std::fs::remove_file(&cache_path);
    let cache = VerdictCache::open(&cache_path).expect("cache");
    let mut entries = Vec::new();
    let mut report_bytes = 0u64;
    for i in 0..jobs {
        let (key, verdict, report) = sample_job(i);
        entries.push((i, report));
        let file = ShardReportFile {
            shard: 0,
            shards: 1,
            fingerprint: FINGERPRINT,
            entries: entries.clone(),
        };
        report_bytes += file.write(&report_path).expect("report rewrite");
        cache.insert(key, verdict);
        cache.persist().expect("cache rewrite");
    }
    report_bytes + cache.io_bytes_written()
}

/// The same flush sequence on the journal path, including the final
/// compaction into the canonical snapshot; returns total bytes written.
fn run_journal(dir: &Path, jobs: usize) -> u64 {
    let cache_path = dir.join("jr.cache.json");
    let report_path = dir.join("jr.report.json");
    let _ = std::fs::remove_file(&cache_path);
    let cache = VerdictCache::open_journal(&cache_path, FsyncPolicy::OnCompact).expect("cache");
    let mut journal =
        ShardReportJournal::create(&report_path, 0, 1, FINGERPRINT, FsyncPolicy::OnCompact)
            .expect("report journal");
    for i in 0..jobs {
        let (key, verdict, report) = sample_job(i);
        journal.append(i, &report).expect("report append");
        cache.insert(key, verdict);
    }
    cache.compact_journal().expect("compaction");
    journal.bytes_written() + cache.io_bytes_written()
}

struct Row {
    jobs: usize,
    rewrite_bytes: u64,
    journal_bytes: u64,
    rewrite_wall: Duration,
    journal_wall: Duration,
}

fn measure(dir: &Path, jobs: usize) -> Row {
    let start = Instant::now();
    let rewrite_bytes = run_rewrite(dir, jobs);
    let rewrite_wall = start.elapsed();
    let start = Instant::now();
    let journal_bytes = run_journal(dir, jobs);
    let journal_wall = start.elapsed();

    // Cross-check: both arms leave loadable, equivalent final state.
    let rewrite_report = ShardReportFile::load(dir.join("rw.report.json")).expect("load rewrite");
    let journal_report = ShardReportFile::load(dir.join("jr.report.json")).expect("load journal");
    assert_eq!(rewrite_report.render(), journal_report.render());
    let rewrite_cache = VerdictCache::open(dir.join("rw.cache.json")).expect("open rewrite");
    let journal_cache = VerdictCache::open(dir.join("jr.cache.json")).expect("open journal");
    assert_eq!(rewrite_cache.len(), jobs);
    assert_eq!(journal_cache.len(), jobs);

    Row {
        jobs,
        rewrite_bytes,
        journal_bytes,
        rewrite_wall,
        journal_wall,
    }
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("lv-journal-flush-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let sizes: &[usize] = if quick { &[10, 100] } else { &[10, 100, 1000] };

    println!("\n=== journal_flush: total flush bytes, rewrite-per-job vs journal-append ===");
    let mut rows = Vec::new();
    for &jobs in sizes {
        let row = measure(&dir, jobs);
        println!(
            "{:>5} jobs: rewrite {:>12} B ({:>9.3?}) | journal {:>9} B ({:>9.3?}) | {:>6.1}x fewer bytes",
            row.jobs,
            row.rewrite_bytes,
            row.rewrite_wall,
            row.journal_bytes,
            row.journal_wall,
            row.rewrite_bytes as f64 / row.journal_bytes as f64,
        );
        rows.push(row);
    }

    // Emit the machine-readable data point for the repo's perf trajectory.
    // Default to the workspace root (cargo runs benches from the package
    // directory), overridable with BENCH_OUT.
    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_4.json", pkg),
            Err(_) => "BENCH_4.json".to_string(),
        });
    let mut json = String::from(
        "{\"bench\":\"journal_flush\",\
         \"compares\":\"rewrite-per-job vs append-only journal (cache + shard report, \
         journal arm includes final compaction)\",\"sizes\":[",
    );
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"jobs\":{},\"rewrite_bytes\":{},\"journal_bytes\":{},\
             \"bytes_reduction_x\":{:.2},\"rewrite_wall_us\":{},\"journal_wall_us\":{}}}",
            row.jobs,
            row.rewrite_bytes,
            row.journal_bytes,
            row.rewrite_bytes as f64 / row.journal_bytes as f64,
            row.rewrite_wall.as_micros(),
            row.journal_wall.as_micros(),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    let loop_jobs = 100;
    let loop_dir: PathBuf = dir.clone();
    c.bench_function("journal_flush_rewrite_100", |b| {
        b.iter(|| run_rewrite(&loop_dir, loop_jobs))
    });
    c.bench_function("journal_flush_journal_100", |b| {
        b.iter(|| run_journal(&loop_dir, loop_jobs))
    });
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
