//! Generate-then-verify vs the overlapped generation→verification
//! pipeline: the same seeded candidate grid (Table 3's representative
//! kernels × k completions) driven through `generate_then_verify_pass_at_k`
//! (full candidate list first, then one `run_batch`) and through
//! `overlapped_pass_at_k` (generator threads streaming cells into the
//! engine's bounded job channel).
//!
//! Verdict **identity is asserted hard** for every `k`: the overlapped run
//! must produce the same label → (verdict, stage, checksum) multiset as the
//! unoverlapped reference — overlap is purely a wall-clock optimisation.
//!
//! Generation carries a simulated per-completion inference latency
//! ([`LlmConfig::latency`]): the synthetic sampler takes microseconds where
//! the paper's model takes seconds, so without it the generation arm is
//! invisible next to verification and the comparison is vacuous. The
//! latency is sleep-based (a stand-in for waiting on a remote model
//! endpoint), which is also what lets the overlapped arm win even on a
//! single-CPU runner: the engine verifies while the generator waits.
//!
//! Results are printed and written to `BENCH_9.json` (override with
//! `BENCH_OUT`); set `LV_BENCH_QUICK=1` to shrink `k` for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_agents::LlmConfig;
use lv_cir::ast::Function;
use lv_core::{
    generate_then_verify_pass_at_k, overlapped_pass_at_k, EngineConfig, PassKRun, PipelineConfig,
    VerificationEngine,
};
use lv_interp::ChecksumConfig;
use lv_tv::{SolverBudget, TvConfig};
use std::time::{Duration, Instant};

use lv_bench::REPRESENTATIVE_KERNELS;

const GEN_SEED: u64 = 0xC0FFEE;
const QUEUE_CAPACITY: usize = 32;
/// Simulated inference latency per completion — the remote-model wait the
/// overlapped pipeline hides behind verification. Sized so the generation
/// wall is comparable to the verification wall (the paper's regime: model
/// inference takes seconds per completion), which is where pipelining pays:
/// the overlap then saves on the order of `min(generation, verification)`,
/// far above run-to-run SMT solver wall noise. A much smaller latency makes
/// the comparison measure noise, not overlap — verification time is
/// concentrated in a few budget-bound solver jobs while ~90% of candidates
/// die at the checksum stage in microseconds, so the serial producer is the
/// bottleneck for fast jobs and only the slow-job sleep window is hidden.
const GEN_LATENCY: Duration = Duration::from_millis(200);
/// One generator thread: the paper's serial completion stream from a
/// single model endpoint. Both arms use the same count, so the comparison
/// isolates overlap itself.
const GEN_THREADS: usize = 1;

fn quick_config() -> EngineConfig {
    EngineConfig::full(PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    })
}

fn bench_kernels() -> Vec<(String, Function)> {
    REPRESENTATIVE_KERNELS
        .iter()
        .map(|name| (name.to_string(), lv_tsvc::kernel(name).unwrap().function()))
        .collect()
}

/// The verdict multiset of a run: sorted `(label, verdict, stage,
/// checksum)` rows, wall-time free — what the identity assertion compares.
fn verdict_multiset(run: &PassKRun) -> Vec<String> {
    let mut rows: Vec<String> = run
        .report
        .jobs
        .iter()
        .map(|job| {
            format!(
                "{}|{:?}|{:?}|{:?}",
                job.label, job.verdict, job.stage, job.checksum
            )
        })
        .collect();
    rows.sort();
    rows
}

struct Arm {
    k: usize,
    sequential: Duration,
    overlapped: Duration,
    jobs: usize,
}

impl Arm {
    fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.overlapped.as_secs_f64().max(1e-9)
    }
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let ks: &[usize] = if quick { &[1, 8] } else { &[1, 8, 32] };
    let kernels = bench_kernels();
    let config = LlmConfig {
        seed: GEN_SEED,
        latency: GEN_LATENCY,
        ..LlmConfig::default()
    };
    let engine = VerificationEngine::new(quick_config().with_threads(0));

    println!("\n=== pipeline_overlap: generate-then-verify vs overlapped streaming ===");
    let mut arms = Vec::new();
    for &k in ks {
        let points = [k];

        let start = Instant::now();
        let sequential =
            generate_then_verify_pass_at_k(&engine, &kernels, &config, k, &points, GEN_THREADS);
        let sequential_wall = start.elapsed();

        let start = Instant::now();
        let overlapped = overlapped_pass_at_k(
            &engine,
            &kernels,
            &config,
            k,
            &points,
            GEN_THREADS,
            QUEUE_CAPACITY,
        );
        let overlapped_wall = start.elapsed();

        // The identity pin: overlap must not change a single verdict.
        assert_eq!(
            verdict_multiset(&sequential),
            verdict_multiset(&overlapped),
            "overlapped pipeline changed verdicts at k={}",
            k
        );
        assert_eq!(
            sequential.plausible_per_kernel, overlapped.plausible_per_kernel,
            "overlapped pipeline changed plausible counts at k={}",
            k
        );

        let arm = Arm {
            k,
            sequential: sequential_wall,
            overlapped: overlapped_wall,
            jobs: sequential.report.jobs.len(),
        };
        println!(
            "  k={:>2}: {:>4} jobs  generate-then-verify {:>9.3?}  overlapped {:>9.3?}  ({:.2}x)",
            arm.k,
            arm.jobs,
            arm.sequential,
            arm.overlapped,
            arm.speedup()
        );
        arms.push(arm);
    }

    // Emit the machine-readable data point for the repo's perf trajectory.
    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_9.json", pkg),
            Err(_) => "BENCH_9.json".to_string(),
        });
    let mut json = String::from(
        "{\"bench\":\"pipeline_overlap\",\
         \"compares\":\"wall clock of generate-then-verify (full candidate list, then \
         run_batch) vs the overlapped pipeline (seeded generator threads streaming \
         cells into the engine's bounded job channel) over the representative kernel \
         set; verdict multisets asserted identical\",\"arms\":[",
    );
    for (i, arm) in arms.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"k\":{},\"jobs\":{},\"sequential_us\":{},\"overlapped_us\":{},\
             \"speedup_x\":{:.3}}}",
            arm.k,
            arm.jobs,
            arm.sequential.as_micros(),
            arm.overlapped.as_micros(),
            arm.speedup(),
        ));
    }
    json.push_str("]}\n");
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // Criterion loops over the smallest grid only — the big arms run real
    // solver stages and are measured once above.
    let points = [1];
    c.bench_function("passk_generate_then_verify_k1", |b| {
        b.iter(|| {
            generate_then_verify_pass_at_k(&engine, &kernels, &config, 1, &points, GEN_THREADS)
                .report
                .jobs
                .len()
        })
    });
    c.bench_function("passk_overlapped_k1", |b| {
        b.iter(|| {
            overlapped_pass_at_k(
                &engine,
                &kernels,
                &config,
                1,
                &points,
                GEN_THREADS,
                QUEUE_CAPACITY,
            )
            .report
            .jobs
            .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
