//! Regenerates Figure 5: the pass@k curve of the synthetic model.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{full_config, quick_config, REPRESENTATIVE_KERNELS};
use lv_core::figure5;

fn bench(c: &mut Criterion) {
    let fig = figure5(&full_config(), 30, &[1, 2, 3, 4, 5, 10, 20, 30]);
    println!("\n=== Figure 5: pass@k ===\n{}", fig.render());
    let quick = quick_config(REPRESENTATIVE_KERNELS);
    c.bench_function("fig5_passk_subset", |b| {
        b.iter(|| figure5(&quick, 5, &[1, 5]))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
