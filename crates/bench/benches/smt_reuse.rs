//! SMT cross-job reuse on the Table 3 workload: run the same multi-candidate
//! TSVC batch under four solver configurations — fresh (reuse off), blasted-CNF
//! memoization, memo + incremental per-scalar sessions (with scalar-affinity
//! scheduling), and the full stack including portfolio budget racing — and
//! compare the symbolic-stage wall time each needs for the *same verdicts*.
//!
//! The workload is the Table 3 shape with the candidate axis widened: every
//! supported TSVC kernel gets its rule-based vectorization plus `k` synthetic
//! LLM completions, so each scalar kernel has several candidates and the
//! per-scalar warm sessions actually get revisited. Verdict classes are
//! asserted identical across every arm; within the memo arm, reports are
//! bit-identical to fresh. Results are printed and written to `BENCH_6.json`
//! (override the path with `BENCH_OUT`); `LV_BENCH_QUICK=1` shrinks the
//! workload to a category-covering slice for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_agents::{sample_completion_batch, LlmConfig};
use lv_cir::ast::Function;
use lv_core::{
    BatchReport, EngineConfig, EngineReuse, Job, PipelineConfig, Stage, VerificationEngine,
};
use lv_interp::ChecksumConfig;
use lv_tv::{SolverBudget, TvConfig};
use std::time::Duration;

/// Completions sampled per kernel on top of the rule-based candidate.
const COMPLETIONS_PER_KERNEL: usize = 3;

/// A category-covering slice for quick (CI smoke) runs.
const QUICK_KERNELS: &[&str] = &[
    "s000", "s112", "vsumr", "s313", "s2711", "s441", "s443", "s212", "s453",
];

/// The Table 3 verification regime, with the reduced sweep budgets the other
/// engine benches use so a four-arm run stays benchmark-friendly.
fn pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    }
}

/// The multi-candidate workload: for every selected kernel, the rule-based
/// vectorization plus `COMPLETIONS_PER_KERNEL` synthetic LLM completions.
/// Candidate generation is sequential (the sampler is stateful) so the job
/// list is deterministic.
fn jobs_for(names: Option<&[&str]>) -> Vec<Job> {
    let kernels: Vec<_> = lv_tsvc::KERNELS
        .iter()
        .filter(|kernel| names.is_none_or(|names| names.contains(&kernel.name)))
        .filter(|kernel| lv_agents::vectorize_correct(&kernel.function()).is_ok())
        .collect();
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();
    let batch = sample_completion_batch(&scalars, &LlmConfig::default(), COMPLETIONS_PER_KERNEL);
    let mut jobs = Vec::new();
    for (i, kernel) in kernels.iter().enumerate() {
        let rule_based = lv_agents::vectorize_correct(&scalars[i]).expect("filtered above");
        jobs.push(Job::new(
            format!("{}#rule", kernel.name),
            scalars[i].clone(),
            rule_based,
        ));
        for (j, completion) in batch.completions[i].iter().enumerate() {
            jobs.push(Job::new(
                format!("{}#{}", kernel.name, j),
                scalars[i].clone(),
                completion.candidate.clone(),
            ));
        }
    }
    jobs
}

/// Sum of symbolic-stage (everything after checksum) trace wall time.
fn symbolic_wall(report: &BatchReport) -> Duration {
    report
        .jobs
        .iter()
        .flat_map(|job| &job.traces)
        .filter(|trace| trace.stage != Stage::Checksum)
        .map(|trace| trace.wall)
        .sum()
}

struct Arm {
    name: &'static str,
    reuse: EngineReuse,
}

const ARMS: &[Arm] = &[
    Arm {
        name: "fresh",
        reuse: EngineReuse {
            memo: false,
            incremental: false,
            portfolio: false,
        },
    },
    Arm {
        name: "memo",
        reuse: EngineReuse {
            memo: true,
            incremental: false,
            portfolio: false,
        },
    },
    Arm {
        name: "memo_incremental",
        reuse: EngineReuse {
            memo: true,
            incremental: true,
            portfolio: false,
        },
    },
    Arm {
        name: "full",
        reuse: EngineReuse {
            memo: true,
            incremental: true,
            portfolio: true,
        },
    },
];

fn engine_for(reuse: EngineReuse) -> VerificationEngine {
    VerificationEngine::new(
        EngineConfig::full(pipeline())
            .with_threads(1)
            .with_reuse(reuse),
    )
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let jobs = jobs_for(if quick { Some(QUICK_KERNELS) } else { None });

    let runs: Vec<(&'static str, BatchReport)> = ARMS
        .iter()
        .map(|arm| (arm.name, engine_for(arm.reuse).run_batch(&jobs)))
        .collect();
    let fresh = &runs[0].1;
    // Verdicts are pinned across every arm. The concluding *stage* may only
    // improve under incremental reuse: learned clauses on the warm session
    // can let a budget-capped query conclude where a fresh solver exhausted
    // its budget (which is why the incremental layer perturbs the
    // configuration fingerprint).
    for (name, run) in &runs[1..] {
        for (f, r) in fresh.jobs.iter().zip(&run.jobs) {
            assert_eq!(
                (&f.label, f.verdict, f.checksum),
                (&r.label, r.verdict, r.checksum),
                "arm `{}` changed a verdict for {}",
                name,
                f.label
            );
        }
    }
    // The memo arm is clause-identical to fresh: its reports match in full —
    // concluding stage, details, and per-stage solver effort included.
    for (f, m) in fresh.jobs.iter().zip(&runs[1].1.jobs) {
        assert_eq!(f.stage, m.stage, "memo must be clause-identical");
        assert_eq!(f.detail, m.detail, "memo must be clause-identical");
        for (ft, mt) in f.traces.iter().zip(&m.traces) {
            assert_eq!((ft.conflicts, ft.clauses), (mt.conflicts, mt.clauses));
        }
    }

    let fresh_symbolic = symbolic_wall(fresh);
    println!(
        "\n=== smt_reuse: {} jobs ({} kernels x rule-based + {} completions) ===",
        jobs.len(),
        jobs.len() / (1 + COMPLETIONS_PER_KERNEL),
        COMPLETIONS_PER_KERNEL
    );
    let mut arm_json = Vec::new();
    for (name, run) in &runs {
        let symbolic = symbolic_wall(run);
        let totals = run.reuse_totals();
        println!(
            "{:<18} symbolic {:>12?} total {:>12?} ({:.2}x) — {} blast hits / {} misses, {} assumption reuses, {} escalations",
            name,
            symbolic,
            run.wall,
            fresh_symbolic.as_secs_f64() / symbolic.as_secs_f64().max(1e-9),
            totals.blast_hits,
            totals.blast_misses,
            totals.assumption_reuses,
            totals.escalations,
        );
        arm_json.push(format!(
            "{{\"arm\":\"{}\",\"symbolic_wall_us\":{},\"total_wall_us\":{},\
             \"blast_hits\":{},\"blast_misses\":{},\"assumption_reuses\":{},\"escalations\":{}}}",
            name,
            symbolic.as_micros(),
            run.wall.as_micros(),
            totals.blast_hits,
            totals.blast_misses,
            totals.assumption_reuses,
            totals.escalations,
        ));
    }
    let best_symbolic = runs[1..]
        .iter()
        .map(|(_, run)| symbolic_wall(run))
        .min()
        .expect("reuse arms exist");
    let speedup = fresh_symbolic.as_secs_f64() / best_symbolic.as_secs_f64().max(1e-9);
    println!(
        "best reuse arm: {:.2}x symbolic-stage speedup over fresh",
        speedup
    );

    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_6.json", pkg),
            Err(_) => "BENCH_6.json".to_string(),
        });
    let json = format!(
        "{{\"bench\":\"smt_reuse\",\
         \"compares\":\"fresh solver per query vs blasted-CNF memoization vs incremental \
         per-scalar sessions vs the full reuse stack, identical verdicts\",\
         \"jobs\":{},\"arms\":[{}],\"symbolic_speedup_x\":{:.2}}}\n",
        jobs.len(),
        arm_json.join(","),
        speedup,
    );
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // Timed loops always run the quick slice so local full runs stay
    // benchmark-friendly.
    let loop_jobs = jobs_for(Some(QUICK_KERNELS));
    let fresh_engine = engine_for(ARMS[0].reuse);
    let reuse_engine = engine_for(ARMS[3].reuse);
    c.bench_function("smt_fresh_per_query", |b| {
        b.iter(|| fresh_engine.run_batch(&loop_jobs))
    });
    c.bench_function("smt_full_reuse", |b| {
        b.iter(|| reuse_engine.run_batch(&loop_jobs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
