//! Regenerates Table 3: the equivalence-checking funnel
//! (Checksum / Alive2 / C-Unroll / Splitting).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{quick_config, REPRESENTATIVE_KERNELS};
use lv_core::table3;

fn bench(c: &mut Criterion) {
    let table = table3(&quick_config(REPRESENTATIVE_KERNELS));
    println!(
        "\n=== Table 3: verification funnel (representative subset) ===\n{}",
        table.render()
    );
    let tiny = quick_config(&["s000", "s212", "s2711"]);
    c.bench_function("table3_verification_funnel", |b| b.iter(|| table3(&tiny)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
