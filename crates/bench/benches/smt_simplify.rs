//! Formula simplification on the Table 3 workload: run the same
//! multi-candidate TSVC batch with the blast-memo reuse layer `lv-sweep`
//! now defaults on and layer the simplification subsystem on top —
//! SatELite-style preprocessing (unit propagation, pure literals,
//! subsumption, bounded variable elimination), LBD-driven inprocessing, and
//! both together — and compare the symbolic-stage wall time each needs for
//! the *same verdicts*. A final arm runs the whole reuse + simplify stack
//! for context.
//!
//! The workload mirrors `smt_reuse`: every supported TSVC kernel gets its
//! rule-based vectorization plus `k` synthetic LLM completions. Verdict and
//! checksum classes are asserted identical across every arm — simplification
//! must be invisible in the results, visible only in the clock. Results are
//! printed and written to `BENCH_10.json` (override the path with
//! `BENCH_OUT`); `LV_BENCH_QUICK=1` shrinks the workload to a
//! category-covering slice for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_agents::{sample_completion_batch, LlmConfig};
use lv_cir::ast::Function;
use lv_core::{
    BatchReport, EngineConfig, EngineReuse, Job, PipelineConfig, Stage, VerificationEngine,
};
use lv_interp::ChecksumConfig;
use lv_tv::{SimplifyConfig, SolverBudget, TvConfig};
use std::time::Duration;

/// Completions sampled per kernel on top of the rule-based candidate.
const COMPLETIONS_PER_KERNEL: usize = 3;

/// A category-covering slice for quick (CI smoke) runs.
const QUICK_KERNELS: &[&str] = &[
    "s000", "s112", "vsumr", "s313", "s2711", "s441", "s443", "s212", "s453",
];

/// The Table 3 verification regime with the reduced sweep budgets the other
/// engine benches use, so a six-arm run stays benchmark-friendly.
fn pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    }
}

/// The multi-candidate workload: for every selected kernel, the rule-based
/// vectorization plus `COMPLETIONS_PER_KERNEL` synthetic LLM completions.
fn jobs_for(names: Option<&[&str]>) -> Vec<Job> {
    let kernels: Vec<_> = lv_tsvc::KERNELS
        .iter()
        .filter(|kernel| names.is_none_or(|names| names.contains(&kernel.name)))
        .filter(|kernel| lv_agents::vectorize_correct(&kernel.function()).is_ok())
        .collect();
    let scalars: Vec<Function> = kernels.iter().map(|k| k.function()).collect();
    let batch = sample_completion_batch(&scalars, &LlmConfig::default(), COMPLETIONS_PER_KERNEL);
    let mut jobs = Vec::new();
    for (i, kernel) in kernels.iter().enumerate() {
        let rule_based = lv_agents::vectorize_correct(&scalars[i]).expect("filtered above");
        jobs.push(Job::new(
            format!("{}#rule", kernel.name),
            scalars[i].clone(),
            rule_based,
        ));
        for (j, completion) in batch.completions[i].iter().enumerate() {
            jobs.push(Job::new(
                format!("{}#{}", kernel.name, j),
                scalars[i].clone(),
                completion.candidate.clone(),
            ));
        }
    }
    jobs
}

/// Sum of symbolic-stage (everything after checksum) trace wall time.
fn symbolic_wall(report: &BatchReport) -> Duration {
    report
        .jobs
        .iter()
        .flat_map(|job| &job.traces)
        .filter(|trace| trace.stage != Stage::Checksum)
        .map(|trace| trace.wall)
        .sum()
}

/// `SimplifyConfig` variants spelled as literals, so the `const` arm table
/// can reference them.
const SIMPLIFY_OFF: SimplifyConfig = SimplifyConfig {
    preprocess: false,
    inprocess: false,
};
const PREPROCESS: SimplifyConfig = SimplifyConfig {
    preprocess: true,
    inprocess: false,
};
const INPROCESS: SimplifyConfig = SimplifyConfig {
    preprocess: false,
    inprocess: true,
};
const FULL: SimplifyConfig = SimplifyConfig {
    preprocess: true,
    inprocess: true,
};

const MEMO: EngineReuse = EngineReuse {
    memo: true,
    incremental: false,
    portfolio: false,
    simplify: SIMPLIFY_OFF,
};

struct Arm {
    name: &'static str,
    reuse: EngineReuse,
}

/// `raw` is the no-reuse no-simplify reference; `memo` is the blast-memo
/// reuse layer `lv-sweep` now defaults on, clause-identical to `raw` — the
/// baseline the headline speedup is measured against. The simplify arms
/// layer the two simplification passes on top of it, and `full_stack` shows
/// the whole PR-6 + PR-10 stack for context (its incremental sessions
/// freeze the blast variables, so preprocessing is deliberately tame
/// there).
const ARMS: &[Arm] = &[
    Arm {
        name: "raw",
        reuse: EngineReuse {
            memo: false,
            incremental: false,
            portfolio: false,
            simplify: SIMPLIFY_OFF,
        },
    },
    Arm {
        name: "memo",
        reuse: MEMO,
    },
    Arm {
        name: "memo_preprocess",
        reuse: EngineReuse {
            simplify: PREPROCESS,
            ..MEMO
        },
    },
    Arm {
        name: "memo_inprocess",
        reuse: EngineReuse {
            simplify: INPROCESS,
            ..MEMO
        },
    },
    Arm {
        name: "memo_simplify",
        reuse: EngineReuse {
            simplify: FULL,
            ..MEMO
        },
    },
    Arm {
        name: "full_stack",
        reuse: EngineReuse {
            memo: true,
            incremental: true,
            portfolio: true,
            simplify: FULL,
        },
    },
];

fn engine_for(reuse: EngineReuse) -> VerificationEngine {
    VerificationEngine::new(
        EngineConfig::full(pipeline())
            .with_threads(1)
            .with_reuse(reuse),
    )
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let jobs = jobs_for(if quick { Some(QUICK_KERNELS) } else { None });

    let runs: Vec<(&'static str, BatchReport)> = ARMS
        .iter()
        .map(|arm| (arm.name, engine_for(arm.reuse).run_batch(&jobs)))
        .collect();
    // Hard identity pin: simplification must not change a single verdict or
    // checksum class relative to the raw arm — not on a benchmark run, not
    // ever. (Stages may improve under reuse/simplify, as in `smt_reuse`.)
    let raw = &runs[0].1;
    for (name, run) in &runs[1..] {
        for (f, r) in raw.jobs.iter().zip(&run.jobs) {
            assert_eq!(
                (&f.label, f.verdict, f.checksum),
                (&r.label, r.verdict, r.checksum),
                "arm `{}` changed a verdict for {}",
                name,
                f.label
            );
        }
    }
    // The simplify arms actually simplified; the non-simplify arms report
    // exactly zero.
    assert!(runs[0].1.simplify_totals().is_zero());
    assert!(runs[1].1.simplify_totals().is_zero());
    for (name, run) in &runs[2..] {
        assert!(
            !run.simplify_totals().is_zero(),
            "arm `{}` reported no simplification work",
            name
        );
    }

    let memo_symbolic = symbolic_wall(&runs[1].1);
    println!(
        "\n=== smt_simplify: {} jobs ({} kernels x rule-based + {} completions) ===",
        jobs.len(),
        jobs.len() / (1 + COMPLETIONS_PER_KERNEL),
        COMPLETIONS_PER_KERNEL
    );
    let mut arm_json = Vec::new();
    for (name, run) in &runs {
        let symbolic = symbolic_wall(run);
        let totals = run.simplify_totals();
        println!(
            "{:<18} symbolic {:>12?} total {:>12?} ({:.2}x vs memo) — {} vars eliminated, {} subsumed, {} strengthened, {}us preprocessing",
            name,
            symbolic,
            run.wall,
            memo_symbolic.as_secs_f64() / symbolic.as_secs_f64().max(1e-9),
            totals.vars_eliminated,
            totals.clauses_subsumed,
            totals.clauses_strengthened,
            totals.preprocess_micros,
        );
        arm_json.push(format!(
            "{{\"arm\":\"{}\",\"symbolic_wall_us\":{},\"total_wall_us\":{},\
             \"vars_eliminated\":{},\"clauses_subsumed\":{},\"clauses_strengthened\":{},\
             \"preprocess_us\":{}}}",
            name,
            symbolic.as_micros(),
            run.wall.as_micros(),
            totals.vars_eliminated,
            totals.clauses_subsumed,
            totals.clauses_strengthened,
            totals.preprocess_micros,
        ));
    }
    let best_symbolic = runs[2..5]
        .iter()
        .map(|(_, run)| symbolic_wall(run))
        .min()
        .expect("simplify arms exist");
    let speedup = memo_symbolic.as_secs_f64() / best_symbolic.as_secs_f64().max(1e-9);
    println!(
        "best simplify arm: {:.2}x symbolic-stage speedup over the memo reuse baseline",
        speedup
    );

    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_10.json", pkg),
            Err(_) => "BENCH_10.json".to_string(),
        });
    let json = format!(
        "{{\"bench\":\"smt_simplify\",\
         \"compares\":\"blast-memo reuse (the lv-sweep default) vs memo + SatELite-style \
         preprocessing vs memo + LBD inprocessing vs both vs the full stack, \
         identical verdicts\",\
         \"jobs\":{},\"arms\":[{}],\"symbolic_speedup_x\":{:.2}}}\n",
        jobs.len(),
        arm_json.join(","),
        speedup,
    );
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // Timed loops always run the quick slice so local full runs stay
    // benchmark-friendly.
    let loop_jobs = jobs_for(Some(QUICK_KERNELS));
    let memo_engine = engine_for(ARMS[1].reuse);
    let simplify_engine = engine_for(ARMS[4].reuse);
    c.bench_function("smt_memo_baseline", |b| {
        b.iter(|| memo_engine.run_batch(&loop_jobs))
    });
    c.bench_function("smt_full_simplify", |b| {
        b.iter(|| simplify_engine.run_batch(&loop_jobs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
