//! Regenerates Figure 1(c): run-time speedup of the LLM-vectorized s212 over
//! GCC, Clang and ICC.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_core::{figure1, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let config = ExperimentConfig::default();
    let fig = figure1(&config);
    println!(
        "\n=== Figure 1(c): s212 speedup of LLM-vectorized code ===\n{}",
        fig.render()
    );
    c.bench_function("fig1_s212_speedup", |b| b.iter(|| figure1(&config)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
