//! Regenerates Figure 6: run-time speedups of formally verified candidates
//! over GCC, Clang and ICC, grouped by kernel category.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{quick_config, REPRESENTATIVE_KERNELS};
use lv_core::{figure6, table3};

fn bench(c: &mut Criterion) {
    let config = quick_config(REPRESENTATIVE_KERNELS);
    let table = table3(&config);
    let fig = figure6(&config, &table.verdicts);
    println!(
        "\n=== Figure 6: speedups of verified candidates ===\n{}",
        fig.render()
    );
    println!("geomean: {:?}", fig.geomean());
    c.bench_function("fig6_speedup", |b| {
        b.iter(|| figure6(&config, &table.verdicts))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
