//! Ablation: the three verification strategies on the same kernel, showing
//! why the domain-specific optimizations (C-level unrolling, spatial
//! splitting) matter for solver effort — plus a solver-reuse arm running the
//! same check on a warm incremental session, the cross-job regime the
//! engine's scalar-affinity scheduling produces.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_agents::vectorize_correct;
use lv_tv::{
    check_with_alive2_unroll, check_with_c_unroll, check_with_c_unroll_in,
    check_with_spatial_splitting, TvConfig, TvReuse, TvSession,
};

fn bench(c: &mut Criterion) {
    let scalar = lv_tsvc::kernel("s212").unwrap().function();
    let candidate = vectorize_correct(&scalar).unwrap();
    let easy_scalar = lv_tsvc::kernel("s000").unwrap().function();
    let easy_candidate = vectorize_correct(&easy_scalar).unwrap();
    let config = TvConfig::default();

    let mut group = c.benchmark_group("verification_strategies");
    group.sample_size(10);
    group.bench_function("alive2_unroll_s212", |b| {
        b.iter(|| check_with_alive2_unroll(&scalar, &candidate, &config))
    });
    group.bench_function("c_unroll_s212", |b| {
        b.iter(|| check_with_c_unroll(&scalar, &candidate, &config))
    });
    // The reuse arm amortizes blasting and the scalar-side solver state
    // across repeat checks of the same scalar kernel — the steady state a
    // multi-candidate batch reaches after its first candidate.
    let mut session = TvSession::with_reuse(TvReuse::full());
    check_with_c_unroll_in(&scalar, &candidate, &config, &mut session);
    group.bench_function("c_unroll_s212_warm_reuse", |b| {
        b.iter(|| check_with_c_unroll_in(&scalar, &candidate, &config, &mut session))
    });
    group.bench_function("spatial_splitting_s000", |b| {
        b.iter(|| check_with_spatial_splitting(&easy_scalar, &easy_candidate, &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
