//! Ablation: the three verification strategies on the same kernel, showing
//! why the domain-specific optimizations (C-level unrolling, spatial
//! splitting) matter for solver effort.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_agents::vectorize_correct;
use lv_tv::{
    check_with_alive2_unroll, check_with_c_unroll, check_with_spatial_splitting, TvConfig,
};

fn bench(c: &mut Criterion) {
    let scalar = lv_tsvc::kernel("s212").unwrap().function();
    let candidate = vectorize_correct(&scalar).unwrap();
    let easy_scalar = lv_tsvc::kernel("s000").unwrap().function();
    let easy_candidate = vectorize_correct(&easy_scalar).unwrap();
    let config = TvConfig::default();

    let mut group = c.benchmark_group("verification_strategies");
    group.sample_size(10);
    group.bench_function("alive2_unroll_s212", |b| {
        b.iter(|| check_with_alive2_unroll(&scalar, &candidate, &config))
    });
    group.bench_function("c_unroll_s212", |b| {
        b.iter(|| check_with_c_unroll(&scalar, &candidate, &config))
    });
    group.bench_function("spatial_splitting_s000", |b| {
        b.iter(|| check_with_spatial_splitting(&easy_scalar, &easy_candidate, &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
