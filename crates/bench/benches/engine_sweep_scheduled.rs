//! Profile-guided stage scheduling on the TSVC sweep: run the full batch
//! under the default Algorithm 1 order, persist its telemetry as a
//! `CrossRunProfile` journal, derive the per-category stage schedule from
//! the *reloaded* journal (no pilot slice), and re-run the batch under it —
//! verdicts must be bit-identical, and the wall-time gap is the win the
//! schedule buys by not burning the Alive2 budget on kernel shapes it never
//! concludes.
//!
//! The budgets are the shard-sweep example's (Alive2 capped at 1k
//! conflicts): under them the conditional kernels exhaust Alive2 and fall
//! through, so the derived schedule demotes it for that category — which is
//! exactly the ROADMAP's "reorder cascade stages per kernel category"
//! telemetry item. Results are printed and written to `BENCH_5.json`
//! (override with `BENCH_OUT`); `LV_BENCH_QUICK=1` shrinks the workload to
//! a category-covering slice for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_core::{
    CrossRunProfile, EngineConfig, FsyncPolicy, Job, PipelineConfig, StageSchedule,
    VerificationEngine,
};
use lv_interp::ChecksumConfig;
use lv_tv::{SolverBudget, TvConfig};
use std::time::{Duration, Instant};

/// The shard-sweep example's reduced budgets: small enough that conditional
/// kernels exhaust Alive2, which is the regime where reordering pays.
fn scheduled_pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: TvConfig {
            alive2_budget: SolverBudget {
                max_conflicts: 1_000,
                max_clauses: 200_000,
            },
            cunroll_budget: SolverBudget {
                max_conflicts: 10_000,
                max_clauses: 1_000_000,
            },
            spatial_budget: SolverBudget {
                max_conflicts: 4_000,
                max_clauses: 500_000,
            },
            alive2_chunks: 1,
            ..TvConfig::default()
        },
    }
}

fn jobs_for(names: Option<&[&str]>) -> Vec<Job> {
    lv_tsvc::KERNELS
        .iter()
        .filter(|kernel| names.is_none_or(|names| names.contains(&kernel.name)))
        .filter_map(|kernel| {
            let scalar = kernel.function();
            let candidate = lv_agents::vectorize_correct(&scalar).ok()?;
            Some(Job::new(kernel.name, scalar, candidate))
        })
        .collect()
}

/// A category-covering slice for quick (CI smoke) runs.
const QUICK_KERNELS: &[&str] = &[
    "s000", "s112", "vsumr", "s313", "s2711", "s441", "s443", "s212", "s453",
];

struct Comparison {
    jobs: usize,
    schedule: String,
    default_wall: Duration,
    scheduled_wall: Duration,
}

fn compare(jobs: &[Job]) -> (Comparison, VerificationEngine, VerificationEngine) {
    let default_engine =
        VerificationEngine::new(EngineConfig::full(scheduled_pipeline()).with_threads(1));
    let start = Instant::now();
    let default_run = default_engine.run_batch(jobs);
    let default_wall = start.elapsed();

    // Persist the run's telemetry and derive the schedule from the reloaded
    // journal — the cross-run path, not an in-memory shortcut.
    let profile_path = std::env::temp_dir().join(format!(
        "lv-engine-sweep-scheduled-{}.profile.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&profile_path);
    CrossRunProfile::from_batch(jobs, &default_run.jobs)
        .append_to(&profile_path, FsyncPolicy::OnCompact)
        .expect("profile append");
    let profile = CrossRunProfile::load(&profile_path).expect("profile reload");
    let _ = std::fs::remove_file(&profile_path);
    let schedule = StageSchedule::from_profile(&profile);
    assert!(
        !schedule.is_default(),
        "these budgets must produce a non-default derived schedule"
    );

    let scheduled_engine = VerificationEngine::new(
        EngineConfig::full(scheduled_pipeline())
            .with_threads(1)
            .with_schedule(schedule.clone()),
    );
    let start = Instant::now();
    let scheduled_run = scheduled_engine.run_batch(jobs);
    let scheduled_wall = start.elapsed();

    for (d, s) in default_run.jobs.iter().zip(&scheduled_run.jobs) {
        assert_eq!(
            (&d.label, d.verdict, d.checksum),
            (&s.label, s.verdict, s.checksum),
            "the schedule changed a verdict for {}",
            d.label
        );
    }

    (
        Comparison {
            jobs: jobs.len(),
            schedule: schedule.spec(),
            default_wall,
            scheduled_wall,
        },
        default_engine,
        scheduled_engine,
    )
}

fn bench(c: &mut Criterion) {
    let quick = std::env::var("LV_BENCH_QUICK").is_ok();
    let jobs = jobs_for(if quick { Some(QUICK_KERNELS) } else { None });
    let (row, default_engine, scheduled_engine) = compare(&jobs);

    println!(
        "\n=== engine_sweep_scheduled: {} TSVC jobs ===\n\
         derived schedule: {}\n\
         default order:   {:?}\n\
         profile-guided:  {:?} ({:.2}x)",
        row.jobs,
        row.schedule,
        row.default_wall,
        row.scheduled_wall,
        row.default_wall.as_secs_f64() / row.scheduled_wall.as_secs_f64().max(1e-9),
    );

    let out =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(pkg) => format!("{}/../../BENCH_5.json", pkg),
            Err(_) => "BENCH_5.json".to_string(),
        });
    let json = format!(
        "{{\"bench\":\"engine_sweep_scheduled\",\
         \"compares\":\"default Algorithm 1 stage order vs schedule derived from a persisted \
         cross-run profile (bit-identical verdicts)\",\
         \"jobs\":{},\"schedule\":\"{}\",\
         \"default_wall_us\":{},\"scheduled_wall_us\":{},\"speedup_x\":{:.2}}}\n",
        row.jobs,
        row.schedule,
        row.default_wall.as_micros(),
        row.scheduled_wall.as_micros(),
        row.default_wall.as_secs_f64() / row.scheduled_wall.as_secs_f64().max(1e-9),
    );
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {}", out);

    // The timed loops run the quick slice either way, so local full runs
    // still finish in benchmark-friendly time.
    let loop_jobs = jobs_for(Some(QUICK_KERNELS));
    c.bench_function("engine_sweep_default_order", |b| {
        b.iter(|| default_engine.run_batch(&loop_jobs))
    });
    c.bench_function("engine_sweep_scheduled", |b| {
        b.iter(|| scheduled_engine.run_batch(&loop_jobs))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
