//! The parallel batch engine on the full TSVC sweep: verifies that
//! `threads = N` produces verdicts identical to `threads = 1`, reports the
//! wall-clock win of the worker pool, measures the verdict cache's hit-path
//! speedup over re-verification, and quantifies the adaptive-budget win
//! (fixed vs telemetry-tuned solver budgets; visible on a multi-core
//! runner).

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{sweep_jobs, sweep_tv_config};
use lv_core::{
    AdaptiveBudgetPolicy, EngineConfig, NoopObserver, PipelineConfig, VerdictCache,
    VerificationEngine,
};
use lv_interp::ChecksumConfig;
use std::sync::Arc;

fn sweep_pipeline() -> PipelineConfig {
    PipelineConfig {
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        tv: sweep_tv_config(),
    }
}

fn bench(c: &mut Criterion) {
    let jobs = sweep_jobs();
    let sequential = VerificationEngine::new(EngineConfig::full(sweep_pipeline()).with_threads(1));
    let parallel = VerificationEngine::new(EngineConfig::full(sweep_pipeline()).with_threads(0));

    let base = sequential.run_batch(&jobs);
    let fanned = parallel.run_batch(&jobs);
    for (s, p) in base.jobs.iter().zip(&fanned.jobs) {
        assert_eq!(
            (&s.verdict, &s.stage, &s.detail),
            (&p.verdict, &p.stage, &p.detail),
            "thread count changed the verdict for {}",
            s.label
        );
    }
    println!(
        "\n=== engine sweep: {} TSVC jobs ===\nthreads=1: {:?}\nthreads={}: {:?} ({:.2}x)",
        jobs.len(),
        base.wall,
        fanned.threads,
        fanned.wall,
        base.wall.as_secs_f64() / fanned.wall.as_secs_f64().max(1e-9),
    );

    c.bench_function("engine_sweep_threads1", |b| {
        b.iter(|| sequential.run_batch(&jobs))
    });
    c.bench_function("engine_sweep_threadsN", |b| {
        b.iter(|| parallel.run_batch(&jobs))
    });

    // Warm-cache path: the first batch fills the cache, the timed loop is
    // all hits (hash + lookup, zero checksum/SMT work).
    let cache = Arc::new(VerdictCache::in_memory());
    let cached = VerificationEngine::new(
        EngineConfig::full(sweep_pipeline())
            .with_threads(1)
            .with_cache(cache.clone()),
    );
    let warmup = cached.run_batch(&jobs);
    assert_eq!(warmup.cache_misses, jobs.len());
    for (s, w) in base.jobs.iter().zip(&warmup.jobs) {
        assert_eq!(
            (&s.verdict, &s.stage, &s.detail),
            (&w.verdict, &w.stage, &w.detail),
            "the cache-filling run changed the verdict for {}",
            s.label
        );
    }
    c.bench_function("engine_sweep_warm_cache", |b| {
        b.iter(|| {
            let warm = cached.run_batch(&jobs);
            assert_eq!(warm.cache_hits, jobs.len());
            warm
        })
    });

    // Adaptive-budget path: a pilot slice runs under the fixed budgets, the
    // remainder under budgets tightened from the pilot's funnel. The verdict
    // set may legitimately differ from the fixed-budget run (tightening can
    // turn a slow proof into Inconclusive), which is exactly the trade-off
    // this variant measures against `engine_sweep_threads1`.
    let adaptive = VerificationEngine::new(
        EngineConfig::full(sweep_pipeline())
            .with_threads(1)
            .with_adaptive(AdaptiveBudgetPolicy::default()),
    );
    let tuned_run = adaptive.run_batch_adaptive(&jobs, &NoopObserver);
    assert_eq!(tuned_run.report.jobs.len(), jobs.len());
    println!(
        "adaptive: pilot {} jobs, alive2 budget {} -> {} conflicts, cunroll {} -> {}, \
         wall {:?} (fixed-budget threads=1 wall {:?})",
        tuned_run.pilot_jobs,
        tuned_run.base.alive2_budget.max_conflicts,
        tuned_run.tuned.alive2_budget.max_conflicts,
        tuned_run.base.cunroll_budget.max_conflicts,
        tuned_run.tuned.cunroll_budget.max_conflicts,
        tuned_run.report.wall,
        base.wall,
    );
    c.bench_function("engine_sweep_adaptive", |b| {
        b.iter(|| adaptive.run_batch_adaptive(&jobs, &NoopObserver))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(3);
    targets = bench
}
criterion_main!(benches);
