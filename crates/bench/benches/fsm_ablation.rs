//! Regenerates the Section 4.4 evaluation: the multi-agent FSM versus plain
//! single-shot sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use lv_bench::{quick_config, REPRESENTATIVE_KERNELS};
use lv_core::fsm_evaluation;

fn bench(c: &mut Criterion) {
    let eval = fsm_evaluation(&quick_config(REPRESENTATIVE_KERNELS));
    println!(
        "\n=== Section 4.4: multi-agent FSM evaluation ===\n{}",
        eval.render()
    );
    let tiny = quick_config(&["s000", "s2711", "s453"]);
    c.bench_function("fsm_ablation", |b| b.iter(|| fsm_evaluation(&tiny)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
