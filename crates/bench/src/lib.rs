//! # lv-bench — benchmark support code
//!
//! The Criterion benchmarks in `benches/` regenerate every table and figure
//! of the paper. This small library holds the shared configuration so all
//! benches run on the same kernel subset and random seed.

#![warn(missing_docs)]

use lv_core::ExperimentConfig;
use lv_interp::ChecksumConfig;

/// A reduced-cost experiment configuration used inside the timed benchmark
/// loops (the full-suite runs are done once, outside the measurement).
pub fn quick_config(kernels: &[&str]) -> ExperimentConfig {
    ExperimentConfig {
        kernel_names: Some(kernels.iter().map(|s| s.to_string()).collect()),
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

/// The full-suite configuration used to print the paper-shaped tables.
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig::default()
}

/// A representative kernel subset covering every category; used by the timed
/// benchmark loops to keep wall-clock time reasonable.
pub const REPRESENTATIVE_KERNELS: &[&str] = &[
    "s000", "s112", "s212", "s221", "s2711", "s274", "s278", "vsumr", "s3111", "s453",
];
