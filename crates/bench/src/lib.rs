//! # lv-bench — benchmark support code
//!
//! The Criterion benchmarks in `benches/` regenerate every table and figure
//! of the paper; since the experiment drivers run on `lv_core`'s parallel
//! [`VerificationEngine`](lv_core::VerificationEngine), every bench
//! exercises the same batched code path as the tables. This small library
//! holds the shared configuration so all benches run on the same kernel
//! subset and random seed, plus the job-list builder for the engine sweep
//! bench.

#![warn(missing_docs)]

use lv_core::{ExperimentConfig, Job};
use lv_interp::ChecksumConfig;
use lv_tv::{SolverBudget, TvConfig};

/// A reduced-cost experiment configuration used inside the timed benchmark
/// loops (the full-suite runs are done once, outside the measurement).
pub fn quick_config(kernels: &[&str]) -> ExperimentConfig {
    ExperimentConfig {
        kernel_names: Some(kernels.iter().map(|s| s.to_string()).collect()),
        checksum: ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

/// The full-suite configuration used to print the paper-shaped tables.
pub fn full_config() -> ExperimentConfig {
    ExperimentConfig::default()
}

/// A representative kernel subset covering every category; used by the timed
/// benchmark loops to keep wall-clock time reasonable.
pub const REPRESENTATIVE_KERNELS: &[&str] = &[
    "s000", "s112", "s212", "s221", "s2711", "s274", "s278", "vsumr", "s3111", "s453",
];

/// A [`TvConfig`] with reduced solver budgets and a one-chunk window, so a
/// full-suite symbolic sweep finishes in benchmark-friendly time while still
/// exercising every cascade stage.
pub fn sweep_tv_config() -> TvConfig {
    TvConfig {
        alive2_budget: SolverBudget {
            max_conflicts: 5_000,
            max_clauses: 200_000,
        },
        cunroll_budget: SolverBudget {
            max_conflicts: 50_000,
            max_clauses: 1_000_000,
        },
        spatial_budget: SolverBudget {
            max_conflicts: 20_000,
            max_clauses: 500_000,
        },
        alive2_chunks: 1,
        ..TvConfig::default()
    }
}

/// One verification job per TSVC kernel the rule-based vectorizer supports:
/// the correct candidate, so the whole cascade (not just the checksum
/// filter) is exercised. This is the workload of the engine sweep bench and
/// of the engine-vs-sequential equivalence tests.
pub fn sweep_jobs() -> Vec<Job> {
    lv_tsvc::KERNELS
        .iter()
        .filter_map(|kernel| {
            let scalar = kernel.function();
            let candidate = lv_agents::vectorize_correct(&scalar).ok()?;
            Some(Job::new(kernel.name, scalar, candidate))
        })
        .collect()
}
