//! CIR-feature kernel categorization for schedule selection.
//!
//! The verification funnel's kill/conflict profile differs sharply by kernel
//! shape: dependence-free loops are usually settled by the cheap unrolling
//! strategies, reductions tend to need C-level unrolling, and conditional
//! kernels often fall through to spatial splitting. [`categorize`] collapses
//! the [`DependenceReport`](crate::DependenceReport) of a kernel into one of
//! four coarse [`KernelCategory`] buckets, which is the key the engine's
//! per-category stage schedule (`lv_core::engine::StageSchedule`) and the
//! persisted cross-run profile (`lv_core::profile`) are indexed by.
//!
//! The categorization is a pure function of the scalar kernel's AST, so the
//! same kernel lands in the same bucket in every process of a sharded sweep
//! — which is what lets a schedule override participate in the engine
//! configuration fingerprint without breaking cross-process verdict-cache
//! exchange.

use crate::dependence::analyze_function;
use lv_cir::ast::Function;
use std::fmt;

/// The coarse kernel shape buckets a [`categorize`] call sorts kernels into.
///
/// The buckets mirror how the paper's Table 3 funnel behaves per TSVC
/// category, collapsed to the distinctions the dependence analysis can make
/// reliably from the CIR alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum KernelCategory {
    /// No loop-carried dependence, no reduction, no control flow: the
    /// trivially vectorizable element-wise loops.
    DependenceFree,
    /// Loops whose only loop-carried behavior is a scalar reduction.
    Reduction,
    /// Loops with `if`/ternary/`goto` control flow in the body.
    Conditional,
    /// Everything else: genuine loop-carried dependences, recurrences,
    /// opaque subscripts, or kernels with no recognizable loop.
    Other,
}

impl KernelCategory {
    /// All categories, in stable (fingerprint/report) order.
    pub fn all() -> [KernelCategory; 4] {
        [
            KernelCategory::DependenceFree,
            KernelCategory::Reduction,
            KernelCategory::Conditional,
            KernelCategory::Other,
        ]
    }

    /// Stable serialization tag (exchange files, CLI).
    pub fn tag(self) -> &'static str {
        match self {
            KernelCategory::DependenceFree => "dependence-free",
            KernelCategory::Reduction => "reduction",
            KernelCategory::Conditional => "conditional",
            KernelCategory::Other => "other",
        }
    }

    /// Parses a [`KernelCategory::tag`].
    pub fn from_tag(tag: &str) -> Result<KernelCategory, String> {
        match tag {
            "dependence-free" => Ok(KernelCategory::DependenceFree),
            "reduction" => Ok(KernelCategory::Reduction),
            "conditional" => Ok(KernelCategory::Conditional),
            "other" => Ok(KernelCategory::Other),
            other => Err(format!("unknown kernel category tag `{}`", other)),
        }
    }

    /// One stable byte per category, for configuration fingerprints.
    pub fn fingerprint_byte(self) -> u8 {
        match self {
            KernelCategory::DependenceFree => 1,
            KernelCategory::Reduction => 2,
            KernelCategory::Conditional => 3,
            KernelCategory::Other => 4,
        }
    }
}

impl fmt::Display for KernelCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Buckets a kernel by its dependence report.
///
/// Control flow wins over everything (a guarded reduction schedules like a
/// conditional kernel — control flow is what decides which symbolic strategy
/// can even model it), then pure reductions, then trivially vectorizable
/// loops; anything the analysis cannot place cleanly is [`KernelCategory::Other`].
pub fn categorize(func: &Function) -> KernelCategory {
    let report = analyze_function(func);
    if report.has_control_flow || report.has_goto {
        KernelCategory::Conditional
    } else if report.only_reductions() {
        KernelCategory::Reduction
    } else if report.trivially_vectorizable() {
        KernelCategory::DependenceFree
    } else {
        KernelCategory::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn cat(src: &str) -> KernelCategory {
        categorize(&parse_function(src).unwrap())
    }

    #[test]
    fn canonical_shapes_bucket_as_expected() {
        assert_eq!(
            cat("void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }"),
            KernelCategory::DependenceFree
        );
        assert_eq!(
            cat("void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }"),
            KernelCategory::Reduction
        );
        assert_eq!(
            cat("void s2711(int n, int *a, int *b) { for (int i = 0; i < n; i++) { if (b[i] != 0) { a[i] = a[i] + b[i]; } } }"),
            KernelCategory::Conditional
        );
        assert_eq!(
            cat("void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }"),
            KernelCategory::Other
        );
        // No loop at all: nothing to schedule around.
        assert_eq!(
            cat("void f(int n, int *a) { a[0] = n; }"),
            KernelCategory::Other
        );
    }

    #[test]
    fn guarded_reduction_is_conditional() {
        assert_eq!(
            cat("void s3111(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { if (a[i] > 0) { s += a[i]; } } out[0] = s; }"),
            KernelCategory::Conditional
        );
    }

    #[test]
    fn tags_round_trip_and_stay_stable() {
        for category in KernelCategory::all() {
            assert_eq!(KernelCategory::from_tag(category.tag()), Ok(category));
        }
        assert!(KernelCategory::from_tag("nope").is_err());
        let bytes: Vec<u8> = KernelCategory::all()
            .iter()
            .map(|c| c.fingerprint_byte())
            .collect();
        assert_eq!(bytes, vec![1, 2, 3, 4], "fingerprint bytes are pinned");
        assert_eq!(KernelCategory::Reduction.to_string(), "reduction");
    }

    #[test]
    fn categorization_is_stable_over_the_suite_shapes() {
        // Every category tag is distinct; the bucket order used by reports
        // matches `all()`.
        let mut tags: Vec<&str> = KernelCategory::all().iter().map(|c| c.tag()).collect();
        tags.dedup();
        assert_eq!(tags.len(), 4);
    }
}
