//! # lv-analysis — loop and dependence analysis
//!
//! The LLM-Vectorizer pipeline consumes dependence information at three
//! points: the agent prompt includes Clang-style remarks explaining why the
//! loop is hard to vectorize, the baseline compiler models decide whether
//! auto-vectorization is legal, and the translation validator's spatial
//! splitting optimization requires proof that no loop-carried dependence
//! exists. This crate provides all three:
//!
//! * [`loops`] — canonical loop extraction ([`loop_nest`],
//!   [`CanonicalLoop`]);
//! * [`access`] — array-access and scalar-update extraction with affine
//!   subscript recognition ([`collect_accesses`]);
//! * [`dependence`] — flow/anti/output dependence analysis with distances
//!   ([`analyze_function`], [`DependenceReport`]);
//! * [`category`] — coarse kernel-shape buckets derived from the dependence
//!   report ([`categorize`], [`KernelCategory`]), the key the verification
//!   engine's per-category stage schedule is indexed by;
//! * [`remarks`] — compiler-style remark rendering for the agent prompt
//!   ([`remarks_text`]).
//!
//! # Examples
//!
//! ```
//! use lv_analysis::analyze_function;
//! use lv_cir::parse_function;
//!
//! let s212 = parse_function(
//!     "void s212(int n, int *a, int *b, int *c, int *d) {
//!          for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; }
//!      }",
//! )?;
//! let report = analyze_function(&s212);
//! assert!(report.has_loop_carried());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod category;
pub mod dependence;
pub mod loops;
pub mod remarks;

pub use access::{
    collect_accesses, AccessKind, AffineIndex, ArrayAccess, BodyAccesses, ScalarUpdate,
};
pub use category::{categorize, KernelCategory};
pub use dependence::{analyze_function, analyze_loop, DepKind, Dependence, DependenceReport};
pub use loops::{canonicalize_for, loop_nest, CanonicalLoop, LoopNest, StepKind};
pub use remarks::{remarks_for, remarks_text, Remark};
