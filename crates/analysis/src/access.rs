//! Array-access and scalar-update extraction from loop bodies.
//!
//! The dependence analysis (and the spatial-splitting eligibility check in
//! `lv-tv`) needs to know, for every array, which indices are read and which
//! are written, and whether the subscripts are affine functions of the
//! induction variable.

use lv_cir::ast::{BinOp, Block, Expr, Stmt, UnOp};
use serde::{Deserialize, Serialize};

/// Whether an access reads or writes the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The element is read.
    Read,
    /// The element is written.
    Write,
}

/// An affine subscript `coeff * iv + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineIndex {
    /// Multiplier of the induction variable.
    pub coeff: i64,
    /// Constant offset.
    pub offset: i64,
}

/// A single array access found in a loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArrayAccess {
    /// The array (pointer parameter) name.
    pub array: String,
    /// Read or write.
    pub kind: AccessKind,
    /// The subscript expression as written.
    pub index: Expr,
    /// The subscript as an affine function of the induction variable, when it
    /// is one. `None` means the dependence analysis must be conservative.
    pub affine: Option<AffineIndex>,
    /// `true` if the access appears under an `if` (or after a `goto` guard),
    /// i.e. it does not execute unconditionally on every iteration.
    pub conditional: bool,
}

/// A scalar (non-array) variable updated inside the loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalarUpdate {
    /// The variable name.
    pub name: String,
    /// `true` if the update has the shape of a reduction (`s += e`, `s -= e`,
    /// `s *= e` where `e` does not read `s`).
    pub is_reduction: bool,
    /// `true` if the update reads the previous value of the variable in some
    /// non-reduction way (a genuine cross-iteration recurrence such as
    /// `im1 = i` followed by a use of `im1`, or `j++` used as an index).
    pub is_recurrence: bool,
}

/// Everything extracted from one loop body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BodyAccesses {
    /// All array accesses in source order.
    pub accesses: Vec<ArrayAccess>,
    /// Scalar variables written in the body (excluding the induction variable).
    pub scalar_updates: Vec<ScalarUpdate>,
    /// `true` if the body contains `if`/ternary control flow.
    pub has_branches: bool,
    /// `true` if the body contains `goto`.
    pub has_goto: bool,
    /// Names of scalars that are read in the body before (or without) being
    /// written, other than the induction variable — these are live-in values.
    pub live_in_scalars: Vec<String>,
    /// Names of scalars whose *value* is consumed somewhere other than the
    /// implicit read of their own compound assignment (`s += e` alone does
    /// not put `s` here, but `a[i] = s * b[i]` does). This is what separates
    /// a plain reduction accumulator from a cross-iteration recurrence.
    pub value_read_scalars: Vec<String>,
}

impl BodyAccesses {
    /// All accesses of the given array.
    pub fn of_array(&self, array: &str) -> Vec<&ArrayAccess> {
        self.accesses.iter().filter(|a| a.array == array).collect()
    }

    /// Names of all arrays touched in the body, in first-use order.
    pub fn arrays(&self) -> Vec<String> {
        let mut names = Vec::new();
        for access in &self.accesses {
            if !names.contains(&access.array) {
                names.push(access.array.clone());
            }
        }
        names
    }

    /// Arrays that are written at least once.
    pub fn written_arrays(&self) -> Vec<String> {
        let mut names = Vec::new();
        for access in &self.accesses {
            if access.kind == AccessKind::Write && !names.contains(&access.array) {
                names.push(access.array.clone());
            }
        }
        names
    }
}

/// Tries to express `index` as an affine function of `iv`.
///
/// Returns `None` for subscripts that mention other variables (`a[j]`, `a[b[i]]`)
/// or non-linear arithmetic.
pub fn affine_of(index: &Expr, iv: &str) -> Option<AffineIndex> {
    match index {
        Expr::IntLit(v) => Some(AffineIndex {
            coeff: 0,
            offset: *v,
        }),
        Expr::Var(name) if name == iv => Some(AffineIndex {
            coeff: 1,
            offset: 0,
        }),
        Expr::Var(_) => None,
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => {
            let inner = affine_of(expr, iv)?;
            Some(AffineIndex {
                coeff: -inner.coeff,
                offset: -inner.offset,
            })
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = affine_of(lhs, iv);
            let r = affine_of(rhs, iv);
            match op {
                BinOp::Add => {
                    let (l, r) = (l?, r?);
                    Some(AffineIndex {
                        coeff: l.coeff + r.coeff,
                        offset: l.offset + r.offset,
                    })
                }
                BinOp::Sub => {
                    let (l, r) = (l?, r?);
                    Some(AffineIndex {
                        coeff: l.coeff - r.coeff,
                        offset: l.offset - r.offset,
                    })
                }
                BinOp::Mul => {
                    let (l, r) = (l?, r?);
                    // One side must be a constant for the result to stay affine.
                    if l.coeff == 0 {
                        Some(AffineIndex {
                            coeff: l.offset * r.coeff,
                            offset: l.offset * r.offset,
                        })
                    } else if r.coeff == 0 {
                        Some(AffineIndex {
                            coeff: l.coeff * r.offset,
                            offset: l.offset * r.offset,
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Collects array accesses and scalar updates from a loop body.
pub fn collect_accesses(body: &Block, iv: &str) -> BodyAccesses {
    let mut out = BodyAccesses::default();
    let mut written_scalars: Vec<String> = Vec::new();
    collect_block(body, iv, false, &mut out, &mut written_scalars);
    out
}

fn collect_block(
    block: &Block,
    iv: &str,
    conditional: bool,
    out: &mut BodyAccesses,
    written_scalars: &mut Vec<String>,
) {
    for stmt in &block.stmts {
        collect_stmt(stmt, iv, conditional, out, written_scalars);
    }
}

fn collect_stmt(
    stmt: &Stmt,
    iv: &str,
    conditional: bool,
    out: &mut BodyAccesses,
    written_scalars: &mut Vec<String>,
) {
    match stmt {
        Stmt::Decl { init, name, .. } => {
            if let Some(init) = init {
                collect_expr(init, iv, conditional, false, out, written_scalars);
            }
            written_scalars.push(name.clone());
        }
        Stmt::Expr(e) => collect_expr(e, iv, conditional, false, out, written_scalars),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.has_branches = true;
            collect_expr(cond, iv, conditional, false, out, written_scalars);
            collect_block(then_branch, iv, true, out, written_scalars);
            if let Some(else_branch) = else_branch {
                collect_block(else_branch, iv, true, out, written_scalars);
            }
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                collect_stmt(init, iv, conditional, out, written_scalars);
            }
            if let Some(cond) = cond {
                collect_expr(cond, iv, conditional, false, out, written_scalars);
            }
            if let Some(step) = step {
                collect_expr(step, iv, conditional, false, out, written_scalars);
            }
            collect_block(body, iv, conditional, out, written_scalars);
        }
        Stmt::While { cond, body } => {
            collect_expr(cond, iv, conditional, false, out, written_scalars);
            collect_block(body, iv, conditional, out, written_scalars);
        }
        Stmt::Return(Some(e)) => collect_expr(e, iv, conditional, false, out, written_scalars),
        Stmt::Goto(_) => out.has_goto = true,
        Stmt::Block(b) => collect_block(b, iv, conditional, out, written_scalars),
        Stmt::Label(_) | Stmt::Break | Stmt::Continue | Stmt::Return(None) | Stmt::Empty => {}
    }
}

fn collect_expr(
    expr: &Expr,
    iv: &str,
    conditional: bool,
    is_store_target: bool,
    out: &mut BodyAccesses,
    written_scalars: &mut Vec<String>,
) {
    match expr {
        Expr::IntLit(_) => {}
        Expr::Var(name) => {
            if !is_store_target && name != iv {
                if !out.value_read_scalars.contains(name) {
                    out.value_read_scalars.push(name.clone());
                }
                if !written_scalars.contains(name) && !out.live_in_scalars.contains(name) {
                    out.live_in_scalars.push(name.clone());
                }
            }
        }
        Expr::Index { base, index } => {
            collect_expr(index, iv, conditional, false, out, written_scalars);
            if let Some(array) = base.as_var() {
                out.accesses.push(ArrayAccess {
                    array: array.to_string(),
                    kind: if is_store_target {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    index: (**index).clone(),
                    affine: affine_of(index, iv),
                    conditional,
                });
            } else {
                collect_expr(base, iv, conditional, false, out, written_scalars);
            }
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => {
            collect_expr(expr, iv, conditional, is_store_target, out, written_scalars)
        }
        Expr::AddrOf(inner) => {
            // `&a[i]` passed to a load intrinsic is a read of a[i..]; passed
            // to a store it is a write. The caller (Call handling) decides;
            // here we treat the address computation itself as neither.
            collect_expr(
                inner,
                iv,
                conditional,
                is_store_target,
                out,
                written_scalars,
            );
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, iv, conditional, false, out, written_scalars);
            collect_expr(rhs, iv, conditional, false, out, written_scalars);
        }
        Expr::Assign { op, target, value } => {
            // Compound assignments to array elements read the element as well
            // as writing it; for scalar targets the implicit self-read is
            // handled below so that it is not mistaken for a value use.
            if op.binop().is_some() && matches!(target.as_ref(), Expr::Index { .. }) {
                collect_expr(target, iv, conditional, false, out, written_scalars);
            }
            collect_expr(value, iv, conditional, false, out, written_scalars);
            match target.as_ref() {
                Expr::Var(name) => {
                    if op.binop().is_some()
                        && !written_scalars.contains(name)
                        && !out.live_in_scalars.contains(name)
                        && name != iv
                    {
                        out.live_in_scalars.push(name.clone());
                    }
                    let reads_self = op.binop().is_some() || expr_reads_var(value, name);
                    let is_reduction = op.binop().is_some() && !expr_reads_var(value, name);
                    record_scalar_update(out, name, is_reduction, reads_self && !is_reduction);
                    written_scalars.push(name.clone());
                }
                Expr::Index { .. } => {
                    collect_expr(target, iv, conditional, true, out, written_scalars);
                }
                _ => {}
            }
        }
        Expr::Call { callee, args } => {
            // Vector memory intrinsics: the pointer argument describes an
            // 8-element access starting at the pointed-to element.
            let (ptr_arg, kind) = match callee.as_str() {
                "_mm256_loadu_si256" | "_mm256_maskload_epi32" => (Some(0), AccessKind::Read),
                "_mm256_storeu_si256" | "_mm256_maskstore_epi32" => (Some(0), AccessKind::Write),
                _ => (None, AccessKind::Read),
            };
            for (i, arg) in args.iter().enumerate() {
                if ptr_arg == Some(i) {
                    if let Some((array, index)) = pointer_target(arg) {
                        out.accesses.push(ArrayAccess {
                            array,
                            kind,
                            affine: affine_of(&index, iv),
                            index,
                            conditional,
                        });
                        continue;
                    }
                }
                collect_expr(arg, iv, conditional, false, out, written_scalars);
            }
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            out.has_branches = true;
            collect_expr(cond, iv, conditional, false, out, written_scalars);
            collect_expr(then_expr, iv, true, false, out, written_scalars);
            collect_expr(else_expr, iv, true, false, out, written_scalars);
        }
    }
}

fn record_scalar_update(
    out: &mut BodyAccesses,
    name: &str,
    is_reduction: bool,
    is_recurrence: bool,
) {
    if let Some(existing) = out.scalar_updates.iter_mut().find(|u| u.name == name) {
        existing.is_reduction |= is_reduction;
        existing.is_recurrence |= is_recurrence;
    } else {
        out.scalar_updates.push(ScalarUpdate {
            name: name.to_string(),
            is_reduction,
            is_recurrence,
        });
    }
}

fn expr_reads_var(expr: &Expr, name: &str) -> bool {
    let mut found = false;
    lv_cir::visit::for_each_expr(expr, &mut |e| {
        if let Expr::Var(v) = e {
            if v == name {
                found = true;
            }
        }
    });
    found
}

/// Extracts `(array, index)` from a pointer expression of one of the shapes
/// `(__m256i *)&a[i]`, `&a[i]`, `(__m256i *)(a + i)`, `a + i`, or `a`.
pub fn pointer_target(expr: &Expr) -> Option<(String, Expr)> {
    match expr {
        Expr::Cast { expr, .. } => pointer_target(expr),
        Expr::AddrOf(inner) => match inner.as_ref() {
            Expr::Index { base, index } => {
                base.as_var().map(|a| (a.to_string(), (**index).clone()))
            }
            Expr::Var(name) => Some((name.clone(), Expr::lit(0))),
            _ => None,
        },
        Expr::Binary {
            op: BinOp::Add,
            lhs,
            rhs,
        } => lhs
            .as_var()
            .map(|a| (a.to_string(), (**rhs).clone()))
            .or_else(|| rhs.as_var().map(|a| (a.to_string(), (**lhs).clone()))),
        Expr::Var(name) => Some((name.clone(), Expr::lit(0))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::loop_nest;
    use lv_cir::parse_function;

    fn analyze(src: &str) -> BodyAccesses {
        let func = parse_function(src).unwrap();
        let nest = loop_nest(&func);
        let l = nest.loops.first().expect("loop");
        collect_accesses(&l.body, &l.iv)
    }

    #[test]
    fn affine_forms() {
        assert_eq!(
            affine_of(&lv_cir::parse_expr("i + 1").unwrap(), "i"),
            Some(AffineIndex {
                coeff: 1,
                offset: 1
            })
        );
        assert_eq!(
            affine_of(&lv_cir::parse_expr("2 * i - 3").unwrap(), "i"),
            Some(AffineIndex {
                coeff: 2,
                offset: -3
            })
        );
        assert_eq!(affine_of(&lv_cir::parse_expr("j").unwrap(), "i"), None);
        assert_eq!(affine_of(&lv_cir::parse_expr("i * i").unwrap(), "i"), None);
        assert_eq!(
            affine_of(&lv_cir::parse_expr("5").unwrap(), "i"),
            Some(AffineIndex {
                coeff: 0,
                offset: 5
            })
        );
    }

    #[test]
    fn s212_accesses() {
        let body = analyze(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
        let a = body.of_array("a");
        // a[i] is read (compound assign) and written, a[i+1] is read.
        assert_eq!(a.len(), 3);
        assert!(a.iter().any(|x| x.kind == AccessKind::Write
            && x.affine
                == Some(AffineIndex {
                    coeff: 1,
                    offset: 0
                })));
        assert!(a.iter().any(|x| x.kind == AccessKind::Read
            && x.affine
                == Some(AffineIndex {
                    coeff: 1,
                    offset: 1
                })));
        assert!(!body.has_branches);
        assert_eq!(
            body.written_arrays(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn reduction_detection() {
        let body = analyze(
            "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
        );
        // `s` is not updated in this loop body? It is: s += a[i].
        let s = body
            .scalar_updates
            .iter()
            .find(|u| u.name == "s")
            .expect("s update");
        assert!(s.is_reduction);
        assert!(!s.is_recurrence);
    }

    #[test]
    fn recurrence_detection_s453_style() {
        let body = analyze(
            "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }",
        );
        let s = body.scalar_updates.iter().find(|u| u.name == "s").unwrap();
        // `s += 2` is formally a reduction shape, but s is also *read* by the
        // multiply, which the dependence layer will flag; here we only check
        // the update shape is recorded.
        assert!(s.is_reduction);
        assert!(body.live_in_scalars.contains(&"s".to_string()));
    }

    #[test]
    fn conditional_accesses_are_marked() {
        let body = analyze(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        );
        let c = body.of_array("c");
        assert_eq!(c.len(), 1);
        assert!(c[0].conditional);
        // a[j] has a non-affine subscript.
        let a_writes: Vec<_> = body
            .of_array("a")
            .into_iter()
            .filter(|x| x.kind == AccessKind::Write)
            .collect();
        assert!(a_writes.iter().all(|x| x.affine.is_none()));
        assert!(body.has_branches);
    }

    #[test]
    fn vector_intrinsic_accesses() {
        let body = analyze(
            "void v(int n, int *a, int *b) { for (int i = 0; i + 8 <= n; i += 8) { __m256i x = _mm256_loadu_si256((__m256i *)&b[i]); _mm256_storeu_si256((__m256i *)(a + i), x); } }",
        );
        let b = body.of_array("b");
        assert_eq!(b[0].kind, AccessKind::Read);
        assert_eq!(
            b[0].affine,
            Some(AffineIndex {
                coeff: 1,
                offset: 0
            })
        );
        let a = body.of_array("a");
        assert_eq!(a[0].kind, AccessKind::Write);
        assert_eq!(
            a[0].affine,
            Some(AffineIndex {
                coeff: 1,
                offset: 0
            })
        );
    }

    #[test]
    fn goto_is_detected() {
        let body = analyze(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L1; } a[i] = 1; L1: a[i] = 2; } }",
        );
        assert!(body.has_goto);
        assert!(body.has_branches);
    }

    #[test]
    fn pointer_target_shapes() {
        let shapes = ["(__m256i *)&a[i]", "&a[i]", "(__m256i *)(a + i)", "a + i"];
        for s in shapes {
            let (arr, idx) = pointer_target(&lv_cir::parse_expr(s).unwrap()).unwrap();
            assert_eq!(arr, "a");
            assert_eq!(idx, Expr::var("i"), "shape {}", s);
        }
        let (arr, idx) = pointer_target(&lv_cir::parse_expr("a").unwrap()).unwrap();
        assert_eq!(arr, "a");
        assert_eq!(idx, Expr::lit(0));
    }
}
