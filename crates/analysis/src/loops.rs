//! Canonical loop extraction.
//!
//! Section 3.1 of the paper assumes loops in the canonical form
//! `for (i = start; i < end; i += step) body` (with the obvious variations
//! `<=`, `!=`, decrementing steps). This module extracts that canonical form
//! from the AST for use by the dependence analysis, the baseline compiler
//! models and the translation validator's loop-alignment step.

use lv_cir::ast::{AssignOp, BinOp, Block, Expr, Function, Stmt};
use serde::{Deserialize, Serialize};

/// The loop step: either a compile-time constant (possibly negative) or a
/// symbolic expression. The paper's alignment analysis "does not handle cases
/// where step1 is not a constant literal"; ours mirrors that restriction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// `i += c` or `i -= c` or `i++` (constant, signed).
    Constant(i64),
    /// A step that is not a constant literal.
    Symbolic(Expr),
}

impl StepKind {
    /// The constant step value, if known.
    pub fn as_constant(&self) -> Option<i64> {
        match self {
            StepKind::Constant(c) => Some(*c),
            StepKind::Symbolic(_) => None,
        }
    }
}

/// A `for` loop in canonical form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CanonicalLoop {
    /// The induction variable name.
    pub iv: String,
    /// Whether the induction variable is declared in the loop header
    /// (`for (int i = ...)`) rather than before the loop.
    pub declares_iv: bool,
    /// The initial value expression.
    pub start: Expr,
    /// The comparison operator of the loop condition (`<`, `<=`, `!=`, `>`, `>=`).
    pub cond_op: BinOp,
    /// The loop bound expression (right-hand side of the condition).
    pub bound: Expr,
    /// The step.
    pub step: StepKind,
    /// The loop body.
    pub body: Block,
}

impl CanonicalLoop {
    /// Returns `true` if this loop counts upward with a constant step.
    pub fn is_forward(&self) -> bool {
        matches!(self.step, StepKind::Constant(c) if c > 0)
    }

    /// The constant step, defaulting to 1 for symbolic steps (callers that
    /// need precision should match on [`StepKind`] instead).
    pub fn step_or_one(&self) -> i64 {
        self.step.as_constant().unwrap_or(1)
    }
}

/// Information about the loops of a function.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    /// Top-level canonical loops in source order (most kernels have exactly
    /// one; vectorized candidates have a main loop plus an epilogue).
    pub loops: Vec<CanonicalLoop>,
    /// For each top-level loop, its directly nested canonical loops.
    pub inner: Vec<Vec<CanonicalLoop>>,
    /// `true` if any loop (or statement) was not recognized as canonical.
    pub has_unrecognized: bool,
}

impl LoopNest {
    /// The single top-level loop, when there is exactly one.
    pub fn single(&self) -> Option<&CanonicalLoop> {
        if self.loops.len() == 1 {
            self.loops.first()
        } else {
            None
        }
    }

    /// The innermost loop of the first top-level loop, when the function is a
    /// simple nest (`for { for { ... } }`).
    pub fn innermost(&self) -> Option<&CanonicalLoop> {
        match self.loops.first() {
            Some(outer) => match self.inner.first().and_then(|v| v.first()) {
                Some(inner) => Some(inner),
                None => Some(outer),
            },
            None => None,
        }
    }

    /// Returns `true` if the first top-level loop contains a nested loop.
    pub fn is_nested(&self) -> bool {
        self.inner.first().is_some_and(|v| !v.is_empty())
    }
}

/// Tries to put a `for` statement into canonical form.
pub fn canonicalize_for(stmt: &Stmt) -> Option<CanonicalLoop> {
    let Stmt::For {
        init,
        cond,
        step,
        body,
    } = stmt
    else {
        return None;
    };

    // Induction variable and start value.
    let (iv, start, declares_iv) = match init.as_deref() {
        Some(Stmt::Decl {
            name,
            init: Some(start),
            ..
        }) => (name.clone(), start.clone(), true),
        Some(Stmt::Expr(Expr::Assign {
            op: AssignOp::Assign,
            target,
            value,
        })) => match target.as_var() {
            Some(name) => (name.to_string(), (**value).clone(), false),
            None => return None,
        },
        // `for (; i < n; ...)` — epilogue loops reuse an existing variable;
        // the start is simply "wherever i already is", which we encode as the
        // variable itself.
        None => {
            let (iv, _, _) = step_info(step.as_ref()?)?;
            (iv.clone(), Expr::var(iv), false)
        }
        _ => return None,
    };

    // Condition.
    let cond = cond.as_ref()?;
    let Expr::Binary { op, lhs, rhs } = cond else {
        return None;
    };
    if !op.is_comparison() {
        return None;
    }
    // Normalize so the induction variable is on the left.
    let (cond_op, bound) = if lhs.as_var() == Some(iv.as_str()) {
        (*op, (**rhs).clone())
    } else if rhs.as_var() == Some(iv.as_str()) {
        (flip_comparison(*op), (**lhs).clone())
    } else {
        // Conditions like `i + 8 <= n` (common in vectorized code): treat the
        // left side as `iv + k` and fold the constant into the bound.
        match (lhs.as_ref(), op) {
            (
                Expr::Binary {
                    op: BinOp::Add,
                    lhs: l,
                    rhs: r,
                },
                BinOp::Le | BinOp::Lt,
            ) if l.as_var() == Some(iv.as_str()) => {
                let k = r.as_int_lit()?;
                (*op, Expr::bin(BinOp::Sub, (**rhs).clone(), Expr::lit(k)))
            }
            _ => return None,
        }
    };

    // Step.
    let (step_iv, step_kind, _) = step_info(step.as_ref()?)?;
    if step_iv != iv {
        return None;
    }

    Some(CanonicalLoop {
        iv,
        declares_iv,
        start,
        cond_op,
        bound,
        step: step_kind,
        body: body.clone(),
    })
}

/// Extracts `(iv, step, is_increment)` from a step expression such as `i++`,
/// `i += 4`, `i -= k` or `i = i + 1`.
fn step_info(step: &Expr) -> Option<(String, StepKind, bool)> {
    match step {
        Expr::Assign {
            op: AssignOp::AddAssign,
            target,
            value,
        } => {
            let iv = target.as_var()?.to_string();
            match value.as_int_lit() {
                Some(c) => Some((iv, StepKind::Constant(c), true)),
                None => Some((iv, StepKind::Symbolic((**value).clone()), true)),
            }
        }
        Expr::Assign {
            op: AssignOp::SubAssign,
            target,
            value,
        } => {
            let iv = target.as_var()?.to_string();
            match value.as_int_lit() {
                Some(c) => Some((iv, StepKind::Constant(-c), true)),
                None => Some((iv, StepKind::Symbolic((**value).clone()), true)),
            }
        }
        Expr::Assign {
            op: AssignOp::Assign,
            target,
            value,
        } => {
            let iv = target.as_var()?.to_string();
            // `i = i + c` or `i = i - c`.
            if let Expr::Binary { op, lhs, rhs } = value.as_ref() {
                if lhs.as_var() == Some(iv.as_str()) {
                    if let Some(c) = rhs.as_int_lit() {
                        let c = match op {
                            BinOp::Add => c,
                            BinOp::Sub => -c,
                            _ => return None,
                        };
                        return Some((iv, StepKind::Constant(c), true));
                    }
                }
            }
            None
        }
        _ => None,
    }
}

fn flip_comparison(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// Extracts the loop structure of a function: all top-level canonical loops
/// and, for each, its directly nested canonical loops.
pub fn loop_nest(func: &Function) -> LoopNest {
    let mut nest = LoopNest::default();
    for stmt in &func.body.stmts {
        if stmt.is_loop() {
            match canonicalize_for(stmt) {
                Some(canonical) => {
                    let mut inner = Vec::new();
                    collect_inner_loops(&canonical.body, &mut inner, &mut nest.has_unrecognized);
                    nest.loops.push(canonical);
                    nest.inner.push(inner);
                }
                None => nest.has_unrecognized = true,
            }
        }
    }
    nest
}

fn collect_inner_loops(body: &Block, out: &mut Vec<CanonicalLoop>, unrecognized: &mut bool) {
    for stmt in &body.stmts {
        match stmt {
            Stmt::For { .. } => match canonicalize_for(stmt) {
                Some(c) => out.push(c),
                None => *unrecognized = true,
            },
            Stmt::While { .. } => *unrecognized = true,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_inner_loops(then_branch, out, unrecognized);
                if let Some(e) = else_branch {
                    collect_inner_loops(e, out, unrecognized);
                }
            }
            Stmt::Block(b) => collect_inner_loops(b, out, unrecognized),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn first_loop(src: &str) -> CanonicalLoop {
        let func = parse_function(src).unwrap();
        loop_nest(&func).loops.into_iter().next().expect("a loop")
    }

    #[test]
    fn canonical_simple_loop() {
        let l = first_loop("void f(int n, int *a) { for (int i = 0; i < n; i++) { a[i] = 0; } }");
        assert_eq!(l.iv, "i");
        assert!(l.declares_iv);
        assert_eq!(l.start, Expr::lit(0));
        assert_eq!(l.cond_op, BinOp::Lt);
        assert_eq!(l.bound, Expr::var("n"));
        assert_eq!(l.step, StepKind::Constant(1));
        assert!(l.is_forward());
    }

    #[test]
    fn canonical_strided_and_decrementing() {
        let l =
            first_loop("void f(int n, int *a) { for (int i = 0; i < n; i += 2) { a[i] = 0; } }");
        assert_eq!(l.step, StepKind::Constant(2));
        let l =
            first_loop("void f(int n, int *a) { for (int i = n - 1; i >= 0; i--) { a[i] = 0; } }");
        assert_eq!(l.step, StepKind::Constant(-1));
        assert_eq!(l.cond_op, BinOp::Ge);
        assert!(!l.is_forward());
    }

    #[test]
    fn canonical_complex_bound() {
        let l = first_loop(
            "void f(int n, int *a) { for (int i = 0; i < n - 1 - (n - 1) % 8; i += 8) { a[i] = 0; } }",
        );
        assert_eq!(l.step, StepKind::Constant(8));
        assert!(matches!(l.bound, Expr::Binary { .. }));
    }

    #[test]
    fn canonical_assignment_init_and_reversed_condition() {
        let l =
            first_loop("void f(int n, int *a) { int i; for (i = 2; n > i; i++) { a[i] = 0; } }");
        assert!(!l.declares_iv);
        assert_eq!(l.start, Expr::lit(2));
        assert_eq!(l.cond_op, BinOp::Lt);
        assert_eq!(l.bound, Expr::var("n"));
    }

    #[test]
    fn canonical_vector_style_condition() {
        let l = first_loop(
            "void f(int n, int *a) { int i; for (i = 0; i + 8 <= n; i += 8) { a[i] = 0; } }",
        );
        assert_eq!(l.step, StepKind::Constant(8));
        // Bound is folded to `n - 8`.
        assert_eq!(l.bound, Expr::bin(BinOp::Sub, Expr::var("n"), Expr::lit(8)));
    }

    #[test]
    fn epilogue_loop_without_init() {
        let func = parse_function(
            "void f(int n, int *a) { int i; for (i = 0; i + 8 <= n; i += 8) { a[i] = 0; } for (; i < n; i++) { a[i] = 0; } }",
        )
        .unwrap();
        let nest = loop_nest(&func);
        assert_eq!(nest.loops.len(), 2);
        assert_eq!(nest.loops[1].start, Expr::var("i"));
        assert!(!nest.has_unrecognized);
    }

    #[test]
    fn symbolic_step_is_recognized_as_symbolic() {
        let l = first_loop(
            "void f(int n, int k, int *a) { for (int i = 0; i < n; i += k) { a[i] = 0; } }",
        );
        assert!(matches!(l.step, StepKind::Symbolic(_)));
        assert_eq!(l.step_or_one(), 1);
    }

    #[test]
    fn nested_loops_are_collected() {
        let func = parse_function(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { for (int j = 0; j < n; j++) { a[j] = i; } } }",
        )
        .unwrap();
        let nest = loop_nest(&func);
        assert!(nest.is_nested());
        assert_eq!(nest.inner[0][0].iv, "j");
        assert_eq!(nest.innermost().unwrap().iv, "j");
    }

    #[test]
    fn while_loop_is_unrecognized() {
        let func = parse_function(
            "void f(int n, int *a) { int i = 0; while (i < n) { a[i] = 0; i += 1; } }",
        )
        .unwrap();
        let nest = loop_nest(&func);
        assert!(nest.loops.is_empty());
        // A while loop cannot be canonicalized, so downstream analyses must
        // be conservative.
        assert!(nest.has_unrecognized);
    }

    #[test]
    fn single_and_innermost_helpers() {
        let func =
            parse_function("void f(int n, int *a) { for (int i = 0; i < n; i++) { a[i] = 0; } }")
                .unwrap();
        let nest = loop_nest(&func);
        assert!(nest.single().is_some());
        assert_eq!(nest.innermost().unwrap().iv, "i");
        assert!(!nest.is_nested());
    }
}
