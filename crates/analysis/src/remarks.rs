//! Compiler-style vectorization remarks.
//!
//! The multi-agent FSM (Figure 3 of the paper) feeds the vectorizer agent
//! "dependence analysis information from the Clang compiler, highlighting why
//! Clang cannot vectorize the loop". This module renders our
//! [`DependenceReport`] in that style so the synthetic LLM receives the same
//! kind of hints the real one did.

use crate::dependence::{DepKind, DependenceReport};

/// A single remark, in the spirit of `-Rpass-analysis=loop-vectorize` output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Remark {
    /// Short category tag (e.g. `loop-vectorize`).
    pub pass: &'static str,
    /// The message body.
    pub message: String,
}

impl std::fmt::Display for Remark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "remark: [{}] {}", self.pass, self.message)
    }
}

/// Renders the dependence report as a list of compiler-style remarks.
pub fn remarks_for(report: &DependenceReport) -> Vec<Remark> {
    let mut remarks = Vec::new();
    let push = |remarks: &mut Vec<Remark>, message: String| {
        remarks.push(Remark {
            pass: "loop-vectorize",
            message,
        })
    };

    if !report.loop_found {
        push(
            &mut remarks,
            "no canonical for-loop found; nothing to vectorize".to_string(),
        );
        return remarks;
    }

    if let Some(iv) = &report.induction_var {
        match report.step {
            Some(step) => push(
                &mut remarks,
                format!("loop induction variable `{}` advances by {}", iv, step),
            ),
            None => push(
                &mut remarks,
                format!(
                    "loop induction variable `{}` has a non-constant step; dependence distances cannot be computed",
                    iv
                ),
            ),
        }
    }

    for dep in &report.dependences {
        if !dep.loop_carried {
            continue;
        }
        let message = match dep.kind {
            DepKind::Unknown => format!(
                "cannot determine dependence for array `{}`: subscript is not an affine function of the induction variable; assuming a loop-carried dependence",
                dep.array
            ),
            kind => format!(
                "loop-carried {} dependence on `{}` between subscripts `{}` and `{}`{}",
                kind,
                dep.array,
                dep.src_subscript,
                dep.dst_subscript,
                dep.distance
                    .map(|d| format!(" with distance {}", d))
                    .unwrap_or_default()
            ),
        };
        push(&mut remarks, message);
    }

    for name in &report.reductions {
        push(
            &mut remarks,
            format!("scalar `{}` is a reduction accumulator; vectorization requires a horizontal reduction epilogue", name),
        );
    }
    for name in &report.recurrences {
        push(
            &mut remarks,
            format!("scalar `{}` carries a value across iterations (recurrence); naive per-lane updates will be incorrect", name),
        );
    }
    if report.has_goto {
        push(
            &mut remarks,
            "loop body contains goto statements; the control flow must be converted to data flow (masks/blends) before vectorizing".to_string(),
        );
    } else if report.has_control_flow {
        push(
            &mut remarks,
            "loop body contains conditional control flow; if-conversion with compare/blend is required".to_string(),
        );
    }
    if report.nested {
        push(
            &mut remarks,
            "loop is nested; only the innermost loop should be vectorized, keeping the outer loop structure unchanged".to_string(),
        );
    }

    if remarks.len() == 1 && !report.has_loop_carried() {
        push(
            &mut remarks,
            "no loop-carried dependences detected; the loop is vectorizable with a stride-8 strip-mined loop and a scalar epilogue".to_string(),
        );
    }

    remarks
}

/// Joins remarks into the single feedback string handed to the agent prompt.
pub fn remarks_text(report: &DependenceReport) -> String {
    remarks_for(report)
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dependence::analyze_function;
    use lv_cir::parse_function;

    fn text(src: &str) -> String {
        remarks_text(&analyze_function(&parse_function(src).unwrap()))
    }

    #[test]
    fn clean_loop_reports_vectorizable() {
        let t = text(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        );
        assert!(t.contains("no loop-carried dependences"), "{}", t);
    }

    #[test]
    fn s212_mentions_anti_dependence() {
        let t = text(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
        assert!(t.contains("anti"), "{}", t);
        assert!(t.contains("`a`"), "{}", t);
    }

    #[test]
    fn reduction_and_goto_remarks() {
        let t = text(
            "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
        );
        assert!(t.contains("reduction accumulator"), "{}", t);

        let t = text(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
        );
        assert!(t.contains("goto"), "{}", t);
    }

    #[test]
    fn no_loop_remark() {
        let t = text("void f(int n, int *a) { a[0] = n; }");
        assert!(t.contains("no canonical for-loop"), "{}", t);
    }

    #[test]
    fn opaque_subscript_remark() {
        let t = text(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        );
        assert!(t.contains("not an affine function"), "{}", t);
        assert!(t.contains("recurrence"), "{}", t);
    }
}
