//! Data-dependence analysis over one canonical loop.
//!
//! The analysis mirrors what the paper extracts from Clang and feeds to the
//! vectorizer agent: per-array flow/anti/output dependences with distances
//! (when subscripts are affine), conservative "unknown" dependences
//! otherwise, plus scalar reductions and recurrences.

use crate::access::{AccessKind, ArrayAccess, BodyAccesses, ScalarUpdate};
use crate::loops::{CanonicalLoop, LoopNest, StepKind};
use lv_cir::ast::Function;
use lv_cir::printer::print_expr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The classic dependence kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Read-after-write (true/flow dependence).
    Flow,
    /// Write-after-read (anti dependence).
    Anti,
    /// Write-after-write (output dependence).
    Output,
    /// The analysis could not decide (non-affine subscripts); compilers treat
    /// this as a dependence of unknown direction.
    Unknown,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow (read-after-write)",
            DepKind::Anti => "anti (write-after-read)",
            DepKind::Output => "output (write-after-write)",
            DepKind::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

/// One dependence between two accesses of the same array.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dependence {
    /// The array involved.
    pub array: String,
    /// The dependence kind.
    pub kind: DepKind,
    /// Iteration distance (`> 0` means the sink executes that many iterations
    /// after the source), when the subscripts are affine with equal
    /// coefficients. `None` for unknown dependences.
    pub distance: Option<i64>,
    /// `true` if the dependence crosses iterations (distance ≠ 0 or unknown).
    pub loop_carried: bool,
    /// Pretty-printed source subscript (the earlier access in program order).
    pub src_subscript: String,
    /// Pretty-printed sink subscript.
    pub dst_subscript: String,
}

impl fmt::Display for Dependence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dependence on `{}` between {}[{}] and {}[{}]{}",
            self.kind,
            self.array,
            self.array,
            self.src_subscript,
            self.array,
            self.dst_subscript,
            match self.distance {
                Some(d) => format!(" (distance {})", d),
                None => String::new(),
            }
        )
    }
}

/// The complete dependence report for a kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependenceReport {
    /// `true` if a canonical loop was found at all.
    pub loop_found: bool,
    /// The induction variable of the analyzed loop.
    pub induction_var: Option<String>,
    /// Constant loop step, when known.
    pub step: Option<i64>,
    /// All array dependences found.
    pub dependences: Vec<Dependence>,
    /// Scalars updated as reductions (`s += expr`).
    pub reductions: Vec<String>,
    /// Scalars updated as genuine cross-iteration recurrences.
    pub recurrences: Vec<String>,
    /// Arrays whose subscripts the analysis could not model.
    pub opaque_arrays: Vec<String>,
    /// `true` if the body contains `if`/ternary control flow.
    pub has_control_flow: bool,
    /// `true` if the body contains `goto`.
    pub has_goto: bool,
    /// `true` if the analyzed loop is the inner loop of a nest.
    pub nested: bool,
    /// `true` when some loop or subscript could not be canonicalized.
    pub conservative: bool,
}

impl DependenceReport {
    /// Returns `true` if any loop-carried dependence (array or scalar
    /// recurrence) was found or had to be assumed.
    pub fn has_loop_carried(&self) -> bool {
        self.dependences.iter().any(|d| d.loop_carried)
            || !self.recurrences.is_empty()
            || self.conservative
    }

    /// Returns `true` if the only loop-carried dependences are scalar
    /// reductions — the pattern compilers handle specially.
    pub fn only_reductions(&self) -> bool {
        !self.reductions.is_empty()
            && self.recurrences.is_empty()
            && self.dependences.iter().all(|d| !d.loop_carried)
    }

    /// Returns `true` if the loop is trivially vectorizable: no loop-carried
    /// dependences, no recurrences, no unknown subscripts.
    pub fn trivially_vectorizable(&self) -> bool {
        self.loop_found
            && !self.conservative
            && self.recurrences.is_empty()
            && self.reductions.is_empty()
            && self.dependences.iter().all(|d| !d.loop_carried)
    }

    /// Loop-carried dependences only.
    pub fn loop_carried(&self) -> Vec<&Dependence> {
        self.dependences.iter().filter(|d| d.loop_carried).collect()
    }
}

/// Analyzes the (innermost) loop of a function.
///
/// For nested loops only the inner loop is analyzed, matching both the paper's
/// verification strategy (Section 3.1, "only the inner loop needs to be
/// vectorized") and what the baseline vectorizers target.
pub fn analyze_function(func: &Function) -> DependenceReport {
    let nest: LoopNest = crate::loops::loop_nest(func);
    let Some(inner) = nest.innermost() else {
        return DependenceReport {
            loop_found: false,
            conservative: nest.has_unrecognized,
            ..DependenceReport::default()
        };
    };
    let mut report = analyze_loop(
        inner,
        &crate::access::collect_accesses(&inner.body, &inner.iv),
    );
    report.nested = nest.is_nested();
    report.conservative |= nest.has_unrecognized;
    report
}

/// Analyzes one canonical loop given its extracted accesses.
pub fn analyze_loop(l: &CanonicalLoop, body: &BodyAccesses) -> DependenceReport {
    let mut report = DependenceReport {
        loop_found: true,
        induction_var: Some(l.iv.clone()),
        step: l.step.as_constant(),
        has_control_flow: body.has_branches,
        has_goto: body.has_goto,
        conservative: matches!(l.step, StepKind::Symbolic(_)),
        ..DependenceReport::default()
    };

    for update in &body.scalar_updates {
        classify_scalar(update, body, &mut report);
    }

    for array in body.arrays() {
        let accesses = body.of_array(&array);
        analyze_array(&array, &accesses, &mut report);
    }

    report
}

fn classify_scalar(update: &ScalarUpdate, body: &BodyAccesses, report: &mut DependenceReport) {
    // A reduction-shaped update whose value is *also* consumed elsewhere in
    // the body (e.g. s453's `s += 2; a[i] = s * b[i];`) is a recurrence: the
    // value consumed depends on the iteration number. A pure accumulator
    // (`s += a[i]` and nothing else) is a reduction.
    let value_consumed = body.value_read_scalars.contains(&update.name);
    let push_recurrence = |report: &mut DependenceReport| {
        if !report.recurrences.contains(&update.name) {
            report.recurrences.push(update.name.clone());
        }
    };
    if update.is_recurrence {
        push_recurrence(report);
    } else if update.is_reduction {
        if value_consumed {
            push_recurrence(report);
        } else if !report.reductions.contains(&update.name) {
            report.reductions.push(update.name.clone());
        }
    } else if value_consumed {
        // Plain assignment to a scalar whose value is read elsewhere in the
        // body (e.g. s291's `im1 = i` feeding `b[im1]`): a recurrence.
        push_recurrence(report);
    }
}

fn analyze_array(array: &str, accesses: &[&ArrayAccess], report: &mut DependenceReport) {
    let writes: Vec<&&ArrayAccess> = accesses
        .iter()
        .filter(|a| a.kind == AccessKind::Write)
        .collect();
    if writes.is_empty() {
        return;
    }
    if accesses.iter().any(|a| a.affine.is_none()) {
        if !report.opaque_arrays.contains(&array.to_string()) {
            report.opaque_arrays.push(array.to_string());
        }
        report.dependences.push(Dependence {
            array: array.to_string(),
            kind: DepKind::Unknown,
            distance: None,
            loop_carried: true,
            src_subscript: accesses
                .first()
                .map(|a| print_expr(&a.index))
                .unwrap_or_default(),
            dst_subscript: writes
                .first()
                .map(|a| print_expr(&a.index))
                .unwrap_or_default(),
        });
        return;
    }

    for (wi, write) in accesses.iter().enumerate() {
        if write.kind != AccessKind::Write {
            continue;
        }
        let w = write.affine.expect("checked above");
        for (oi, other) in accesses.iter().enumerate() {
            if oi == wi {
                continue;
            }
            let o = other.affine.expect("checked above");
            // Output dependences are only counted once per pair.
            if other.kind == AccessKind::Write && oi < wi {
                continue;
            }
            if w.coeff != o.coeff {
                // Different strides: be conservative.
                report.dependences.push(Dependence {
                    array: array.to_string(),
                    kind: DepKind::Unknown,
                    distance: None,
                    loop_carried: true,
                    src_subscript: print_expr(&other.index),
                    dst_subscript: print_expr(&write.index),
                });
                continue;
            }
            if w.coeff == 0 {
                // Both subscripts constant: same cell every iteration.
                if w.offset == o.offset {
                    let kind = if other.kind == AccessKind::Write {
                        DepKind::Output
                    } else {
                        DepKind::Flow
                    };
                    report.dependences.push(Dependence {
                        array: array.to_string(),
                        kind,
                        distance: Some(1),
                        loop_carried: true,
                        src_subscript: print_expr(&other.index),
                        dst_subscript: print_expr(&write.index),
                    });
                }
                continue;
            }
            // Iteration distance from the write to the conflicting access:
            // the write at iteration i touches c*i + ow; the access at
            // iteration i + k touches the same element when k = (ow - oa)/c.
            let delta = w.offset - o.offset;
            if delta % w.coeff != 0 {
                // The accesses can never touch the same element.
                continue;
            }
            let distance = delta / w.coeff;
            if distance == 0 {
                // Same-iteration dependence: not loop-carried, irrelevant for
                // vectorization legality (statement order within the body
                // handles it).
                continue;
            }
            let kind = if other.kind == AccessKind::Write {
                DepKind::Output
            } else if distance > 0 {
                // The conflicting read happens in a *later* iteration than the
                // write: the value flows forward (read-after-write).
                DepKind::Flow
            } else {
                // The read happens first; the write overtakes it later
                // (write-after-read). s212 is the canonical example.
                DepKind::Anti
            };
            report.dependences.push(Dependence {
                array: array.to_string(),
                kind,
                distance: Some(distance),
                loop_carried: true,
                src_subscript: print_expr(&write.index),
                dst_subscript: print_expr(&other.index),
            });
        }
    }

    // A single write with a constant subscript conflicts with itself on every
    // iteration (e.g. `a[0] = i`): record the output dependence even though
    // there is no second access to pair it with.
    for write in &writes {
        if write.affine.map(|a| a.coeff) == Some(0) {
            report.dependences.push(Dependence {
                array: array.to_string(),
                kind: DepKind::Output,
                distance: Some(1),
                loop_carried: true,
                src_subscript: print_expr(&write.index),
                dst_subscript: print_expr(&write.index),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_cir::parse_function;

    fn analyze(src: &str) -> DependenceReport {
        analyze_function(&parse_function(src).unwrap())
    }

    #[test]
    fn s000_has_no_dependences() {
        let r = analyze(
            "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
        );
        assert!(r.loop_found);
        assert!(r.trivially_vectorizable());
        assert!(!r.has_loop_carried());
        assert_eq!(r.step, Some(1));
    }

    #[test]
    fn s212_has_anti_dependence() {
        let r = analyze(
            "void s212(int n, int *a, int *b, int *c, int *d) { for (int i = 0; i < n - 1; i++) { a[i] *= c[i]; b[i] += a[i + 1] * d[i]; } }",
        );
        assert!(r.has_loop_carried());
        let a_deps: Vec<_> = r
            .dependences
            .iter()
            .filter(|d| d.array == "a" && d.loop_carried)
            .collect();
        assert!(
            a_deps
                .iter()
                .any(|d| d.kind == DepKind::Anti && d.distance == Some(-1)),
            "expected an anti dependence with distance -1, got {:?}",
            a_deps
        );
        assert!(!r.trivially_vectorizable());
    }

    #[test]
    fn flow_dependence_recurrence() {
        // a[i] = a[i-1] + 1 is a true loop-carried flow dependence.
        let r = analyze(
            "void f(int n, int *a) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1; } }",
        );
        assert!(r
            .dependences
            .iter()
            .any(|d| d.kind == DepKind::Flow && d.distance == Some(1)));
        assert!(r.has_loop_carried());
    }

    #[test]
    fn reduction_is_classified() {
        let r = analyze(
            "void vsumr(int n, int *a, int *out) { int s = 0; for (int i = 0; i < n; i++) { s += a[i]; } out[0] = s; }",
        );
        assert_eq!(r.reductions, vec!["s".to_string()]);
        assert!(r.recurrences.is_empty());
        assert!(r.only_reductions());
    }

    #[test]
    fn s453_scalar_recurrence() {
        let r = analyze(
            "void s453(int *a, int *b, int n) { int s = 0; for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }",
        );
        assert!(
            r.recurrences.contains(&"s".to_string()),
            "s should be a recurrence, report: {:?}",
            r
        );
        assert!(!r.only_reductions());
    }

    #[test]
    fn s124_is_opaque_with_control_flow() {
        let r = analyze(
            "void s124(int *a, int *b, int *c, int *d, int *e, int n) { int j; j = -1; for (int i = 0; i < n; i++) { if (b[i] > 0) { j += 1; a[j] = b[i] + d[i] * e[i]; } else { j += 1; a[j] = c[i] + d[i] * e[i]; } } }",
        );
        assert!(r.has_control_flow);
        assert!(r.opaque_arrays.contains(&"a".to_string()));
        assert!(r.has_loop_carried());
    }

    #[test]
    fn goto_and_control_flow_flags() {
        let r = analyze(
            "void s278(int n, int *a, int *b, int *c, int *d, int *e) { for (int i = 0; i < n; i++) { if (a[i] > 0) { goto L20; } b[i] = -b[i] + d[i] * e[i]; goto L30; L20: c[i] = -c[i] + d[i] * e[i]; L30: a[i] = b[i] + c[i] * d[i]; } }",
        );
        assert!(r.has_goto);
        assert!(r.has_control_flow);
    }

    #[test]
    fn nested_loops_analyze_inner() {
        let r = analyze(
            "void f(int n, int *a) { for (int j = 0; j < n; j++) { for (int i = 0; i < n; i++) { a[i] = a[i] + 1; } } }",
        );
        assert!(r.nested);
        assert_eq!(r.induction_var.as_deref(), Some("i"));
    }

    #[test]
    fn symbolic_step_is_conservative() {
        let r = analyze(
            "void f(int n, int k, int *a) { for (int i = 0; i < n; i += k) { a[i] = 0; } }",
        );
        assert!(r.conservative);
        assert!(r.has_loop_carried());
    }

    #[test]
    fn no_loop_reported() {
        let r = analyze("void f(int n, int *a) { a[0] = n; }");
        assert!(!r.loop_found);
        assert!(!r.trivially_vectorizable());
    }

    #[test]
    fn output_dependence_same_cell() {
        let r = analyze("void f(int n, int *a) { for (int i = 0; i < n; i++) { a[0] = i; } }");
        assert!(r
            .dependences
            .iter()
            .any(|d| d.kind == DepKind::Output && d.loop_carried));
    }

    #[test]
    fn different_strides_are_conservative() {
        let r = analyze(
            "void f(int n, int *a) { for (int i = 0; i < n; i++) { a[2 * i] = a[i] + 1; } }",
        );
        assert!(r
            .dependences
            .iter()
            .any(|d| d.kind == DepKind::Unknown && d.loop_carried));
    }

    #[test]
    fn display_is_informative() {
        let r = analyze(
            "void f(int n, int *a) { for (int i = 1; i < n; i++) { a[i] = a[i - 1] + 1; } }",
        );
        let text = r.dependences[0].to_string();
        assert!(text.contains("dependence on `a`"), "{}", text);
    }
}
