//! Pins the journal's zero-allocation append guarantee: once the reusable
//! record scratch buffer is warm, appending a record — streaming its JSON
//! payload through the `serde` shim's `Emitter`, checksumming, framing,
//! and flushing through the long-lived buffered file handle — must not
//! touch the heap. This is the per-job flush path of every shard worker;
//! the whole point of the journal over rewrite-per-job is that a flush is
//! O(record), and "no intermediate document or `String`" is what keeps the
//! constant small.
//!
//! The test installs a counting global allocator; it must stay the only
//! test in this binary so no concurrent test pollutes the counter.

use lv_core::journal::{replay, FsyncPolicy, JournalWriter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn journal_appends_allocate_nothing_once_warm() {
    let dir = std::env::temp_dir().join(format!("lv-journal-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("appends.journal");
    let _ = std::fs::remove_file(&path);

    let mut journal = JournalWriter::create(&path, FsyncPolicy::OnCompact, |e| {
        e.begin_object()?;
        e.field_str("journal", "alloc-test")?;
        e.field_int("version", 1)?;
        e.end_object()
    })
    .unwrap();

    // Pre-built record fields, shaped like a real cache entry (hashes,
    // tags, a detail string with characters that need escaping).
    let detail = "solver exhausted its budget \"after\"\n3 conflicts";
    let append = |journal: &mut JournalWriter, i: u64| {
        journal
            .append(|e| {
                e.begin_object()?;
                e.field_hex("scalar", i)?;
                e.field_hex("candidate", i.wrapping_mul(0x9e37_79b9_7f4a_7c15))?;
                e.field_hex("config", 42)?;
                e.field_str("verdict", "equivalent")?;
                e.field_str("stage", "cunroll")?;
                e.field_str("detail", detail)?;
                e.key("checksum")?;
                e.null()?;
                e.end_object()
            })
            .unwrap();
    };

    // Warm-up: sizes the scratch buffer and any lazy I/O state.
    append(&mut journal, 0);

    // The counter is global, so a test-harness thread scheduled during one
    // of the write syscalls can pollute a measurement round with a stray
    // allocation. A real regression allocates on *every* append and can
    // never produce a clean round, so retry a few times and require one
    // round of appends to be allocation-free.
    let mut appended = 0u64;
    let mut cleanest = u64::MAX;
    for round in 0..5 {
        let before = ALLOCATIONS.load(Ordering::Relaxed);
        for i in 1..=1_000u64 {
            append(&mut journal, appended + i);
        }
        appended += 1_000;
        let after = ALLOCATIONS.load(Ordering::Relaxed);
        cleanest = cleanest.min(after - before);
        if cleanest == 0 {
            break;
        }
        eprintln!(
            "round {}: {} stray allocations, retrying",
            round,
            after - before
        );
    }
    assert_eq!(cleanest, 0, "journal appends performed heap allocations");

    // The allocation-free records are real records: replay them all.
    drop(journal);
    let replayed = replay(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert!(!replayed.torn);
    assert_eq!(replayed.records.len(), appended as usize + 1);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir_all(&dir);
}
