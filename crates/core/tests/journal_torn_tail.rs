//! Torn-tail recovery, exhaustively: a journal truncated at **every byte
//! offset** of its final record must load as exactly the preceding records
//! — no panic, no error, no silently mis-parsed partial record — for both
//! journal kinds (verdict cache and shard report). Also pins that
//! compacting a journal yields the byte-identical snapshot a snapshot-mode
//! cache would persist.

use lv_core::cache::{CacheKey, CachedVerdict, VerdictCache};
use lv_core::journal::FsyncPolicy;
use lv_core::pipeline::{Equivalence, Stage};
use lv_core::shard::{ShardReportFile, ShardReportJournal};
use lv_core::{JobReport, StageTrace};
use lv_interp::ChecksumClass;
use std::path::PathBuf;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lv-torn-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
    (0..3u64)
        .map(|i| {
            (
                CacheKey {
                    scalar: i,
                    candidate: 100 + i,
                    config: 7,
                },
                CachedVerdict {
                    verdict: Equivalence::Equivalent,
                    stage: Stage::CUnroll,
                    detail: format!("entry {} with \"quotes\"\nand a newline", i),
                    checksum: Some(ChecksumClass::Plausible),
                },
            )
        })
        .collect()
}

/// Byte offset where the final record (line) of `text` starts.
fn final_record_start(text: &str) -> usize {
    let body = text.strip_suffix('\n').expect("journals end with newline");
    body.rfind('\n').map(|i| i + 1).unwrap_or(0)
}

#[test]
fn cache_journal_truncated_at_every_offset_of_its_final_record_loads_the_prefix() {
    let dir = temp_dir("cache");
    let path = dir.join("verdicts.journal.json");
    let entries = sample_entries();
    {
        let cache = VerdictCache::open_journal(&path, FsyncPolicy::OnCompact).unwrap();
        for (key, verdict) in &entries {
            cache.insert(*key, verdict.clone());
        }
    }
    let full = std::fs::read_to_string(&path).unwrap();
    let final_start = final_record_start(&full);
    assert!(final_start > 0, "journal must have multiple records");

    let torn = dir.join("torn.json");
    for cut in final_start..full.len() {
        std::fs::write(&torn, &full[..cut]).unwrap();
        let loaded = VerdictCache::open(&torn)
            .unwrap_or_else(|e| panic!("cut at {}/{} must load: {}", cut, full.len(), e));
        assert_eq!(
            loaded.len(),
            2,
            "cut at {} must keep exactly the two complete records",
            cut
        );
        for (key, verdict) in &entries[..2] {
            assert_eq!(loaded.get(key).as_ref(), Some(verdict), "cut at {}", cut);
        }
        assert_eq!(loaded.get(&entries[2].0), None, "cut at {}", cut);
    }
    // The untruncated journal loads everything.
    let loaded = VerdictCache::open(&path).unwrap();
    assert_eq!(loaded.len(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reopening_a_torn_cache_journal_truncates_and_appends_cleanly() {
    let dir = temp_dir("reopen");
    let path = dir.join("verdicts.journal.json");
    let entries = sample_entries();
    {
        let cache = VerdictCache::open_journal(&path, FsyncPolicy::OnCompact).unwrap();
        for (key, verdict) in &entries {
            cache.insert(*key, verdict.clone());
        }
    }
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() - 4]).unwrap();

    // Re-open for append: the torn record is truncated on disk, and the
    // re-inserted entry is re-journaled.
    let cache = VerdictCache::open_journal(&path, FsyncPolicy::OnCompact).unwrap();
    assert_eq!(cache.len(), 2, "torn record dropped on reopen");
    cache.insert(entries[2].0, entries[2].1.clone());
    drop(cache);
    let reloaded = VerdictCache::open(&path).unwrap();
    assert_eq!(reloaded.len(), 3, "appends continue past the truncation");
    for (key, verdict) in &entries {
        assert_eq!(reloaded.get(key).as_ref(), Some(verdict));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compacted_journal_is_byte_identical_to_the_snapshot_persist() {
    let dir = temp_dir("compact");
    let journal_path = dir.join("journaled.json");
    let snapshot_path = dir.join("snapshot.json");
    let entries = sample_entries();

    let journaled = VerdictCache::open_journal(&journal_path, FsyncPolicy::OnCompact).unwrap();
    let snapshot = VerdictCache::open(&snapshot_path).unwrap();
    for (key, verdict) in &entries {
        journaled.insert(*key, verdict.clone());
        snapshot.insert(*key, verdict.clone());
    }
    assert!(journaled.is_journaling());
    journaled.compact_journal().unwrap();
    assert!(!journaled.is_journaling(), "compaction closes the journal");
    snapshot.persist().unwrap();

    let compacted_bytes = std::fs::read_to_string(&journal_path).unwrap();
    let snapshot_bytes = std::fs::read_to_string(&snapshot_path).unwrap();
    assert_eq!(
        compacted_bytes, snapshot_bytes,
        "compact_journal must write the canonical snapshot byte-for-byte"
    );
    // And the compacted file round-trips through the snapshot parser.
    let reloaded = VerdictCache::open(&journal_path).unwrap();
    assert_eq!(reloaded.len(), entries.len());

    // A snapshot converted back to journal mode keeps its contents and can
    // keep appending (the upgrade path for a warm rewrite-mode cache).
    let upgraded = VerdictCache::open_journal(&journal_path, FsyncPolicy::OnCompact).unwrap();
    assert_eq!(upgraded.len(), entries.len());
    assert!(upgraded.is_journaling());
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_report(label: &str) -> JobReport {
    JobReport {
        label: label.to_string(),
        verdict: Equivalence::Equivalent,
        stage: Stage::CUnroll,
        detail: "proof with \"quotes\"\nand newlines".to_string(),
        checksum: Some(ChecksumClass::Plausible),
        traces: vec![StageTrace {
            stage: Stage::Checksum,
            conclusive: false,
            wall: Duration::from_micros(1234),
            conflicts: 5,
            clauses: 99,
            name_mismatch: false,
            escalated: false,
        }],
        wall: Duration::from_micros(9876),
        cache_hit: false,
        reuse: Default::default(),
        simplify: Default::default(),
    }
}

#[test]
fn report_journal_truncated_at_every_offset_of_its_final_record_loads_the_prefix() {
    let dir = temp_dir("report");
    let path = dir.join("shard-0.report.json");
    {
        let mut journal =
            ShardReportJournal::create(&path, 0, 2, 0xabcd, FsyncPolicy::OnCompact).unwrap();
        journal.append(4, &sample_report("s112")).unwrap();
        journal.append(9, &sample_report("s243")).unwrap();
        assert_eq!(
            journal.bytes_written(),
            std::fs::metadata(&path).unwrap().len(),
            "bytes_written tracks the file length"
        );
    }
    let full = std::fs::read_to_string(&path).unwrap();
    let final_start = final_record_start(&full);

    let torn = dir.join("torn.report.json");
    for cut in final_start..full.len() {
        std::fs::write(&torn, &full[..cut]).unwrap();
        let loaded = ShardReportFile::load(&torn)
            .unwrap_or_else(|e| panic!("cut at {}/{} must load: {}", cut, full.len(), e));
        assert_eq!((loaded.shard, loaded.shards), (0, 2), "cut at {}", cut);
        assert_eq!(loaded.fingerprint, 0xabcd, "cut at {}", cut);
        assert_eq!(loaded.entries.len(), 1, "cut at {}", cut);
        let (index, report) = &loaded.entries[0];
        assert_eq!(*index, 4);
        assert_eq!(report.label, "s112");
        assert_eq!(report.traces.len(), 1);
    }
    // The untruncated journal loads both entries, and re-rendering it as a
    // snapshot produces the same document a snapshot-mode report would.
    let loaded = ShardReportFile::load(&path).unwrap();
    assert_eq!(loaded.entries.len(), 2);
    let as_snapshot = dir.join("as-snapshot.json");
    loaded.write(&as_snapshot).unwrap();
    let reloaded = ShardReportFile::load(&as_snapshot).unwrap();
    assert_eq!(reloaded.render(), loaded.render());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A report journal torn inside its *header* (a crash at creation) has no
/// shard metadata: loading reports a malformed file — which the coordinator
/// treats like a missing report — rather than panicking or inventing data.
#[test]
fn report_journal_torn_at_the_header_is_malformed_not_a_panic() {
    let dir = temp_dir("torn-header");
    let path = dir.join("shard-0.report.json");
    {
        let mut journal =
            ShardReportJournal::create(&path, 0, 2, 0xabcd, FsyncPolicy::OnCompact).unwrap();
        journal.append(0, &sample_report("s000")).unwrap();
    }
    let full = std::fs::read_to_string(&path).unwrap();
    let header_len = full.find('\n').unwrap() + 1;
    let torn = dir.join("torn.json");
    for cut in 1..header_len {
        std::fs::write(&torn, &full[..cut]).unwrap();
        assert!(
            ShardReportFile::load(&torn).is_err(),
            "cut at {} leaves no usable header and must be an error",
            cut
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
