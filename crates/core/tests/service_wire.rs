//! Wire-protocol codec torture tests (the service-side mirror of
//! `snapshot_torn.rs`): truncating a frame at every byte offset and
//! flipping a bit at every byte offset must each yield a *typed*
//! [`WireError`] — never a wrong message, a dropped verdict, or a panic.

use lv_core::journal::crc32;
use lv_core::service::wire::{
    check_magic, decode_message_frame, encode_frame, encode_message, read_frame, read_message,
    Message, ServiceStatus, VerdictFrame, WireError, MAX_FRAME_BYTES,
};
use lv_core::service::ServiceError;
use lv_core::{CachedVerdict, Equivalence, Stage};

/// One message of every wire variant, with representative payloads.
fn sample_messages() -> Vec<Message> {
    vec![
        Message::Hello { version: 1 },
        Message::Submit {
            label: "s000".to_string(),
            scalar: "void s000(float * a, float * b) { }".to_string(),
            candidate: "void s000(float * a, float * b) { }".to_string(),
        },
        Message::SubmitGenerate {
            label: "s453".to_string(),
            scalar: "void s453(float * a, float * b) { }".to_string(),
            k: 8,
            seed: 0xC0FFEE,
        },
        Message::Run { count: 3 },
        Message::Status,
        Message::Shutdown,
        Message::ServerHello {
            version: 1,
            fingerprint: 0xdead_beef_1234_5678,
        },
        Message::Verdict(VerdictFrame {
            index: 7,
            label: "s112".to_string(),
            cache_hit: true,
            verdict: CachedVerdict {
                verdict: Equivalence::Equivalent,
                stage: Stage::Alive2,
                detail: "proved over 3 chunk(s)".to_string(),
                checksum: None,
            },
        }),
        Message::Done { count: 3 },
        Message::StatusReport(ServiceStatus {
            connections: 1,
            received: 20,
            completed: 19,
            dedupe_hits: 7,
            stages: 41,
            generation_queued: 5,
            generated: 12,
            vars_eliminated: 310,
            clauses_subsumed: 44,
            clauses_strengthened: 9,
        }),
        Message::Error {
            detail: "job 's1': unparsable scalar".to_string(),
        },
        Message::ShutdownAck,
    ]
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_frame(&mut buf, payload);
    buf
}

#[test]
fn every_variant_round_trips() {
    for message in sample_messages() {
        let bytes = encode_message(&message);
        let decoded = decode_message_frame(&bytes).expect("round-trip");
        assert_eq!(decoded, message);
    }
}

#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    for message in sample_messages() {
        let bytes = encode_message(&message);
        for len in 0..bytes.len() {
            let result = decode_message_frame(&bytes[..len]);
            assert!(
                result.is_err(),
                "{:?} truncated to {} byte(s) decoded to {:?}",
                message,
                len,
                result
            );
        }
    }
}

#[test]
fn single_byte_corruption_at_every_offset_is_a_typed_error() {
    // Without recomputing the CRC, no single corrupted byte — in the
    // length prefix, the payload (tag included), or the checksum itself —
    // may survive decoding. A flip that shrinks the recorded length is the
    // interesting case: the CRC is then read from inside the payload, and
    // the frame must still fail (checksum mismatch or trailing bytes),
    // never decode to a different message.
    for message in sample_messages() {
        let bytes = encode_message(&message);
        for offset in 0..bytes.len() {
            for flip in [0x01u8, 0x80] {
                let mut corrupt = bytes.clone();
                corrupt[offset] ^= flip;
                let result = decode_message_frame(&corrupt);
                assert!(
                    result.is_err(),
                    "{:?} with byte {} ^ {:#04x} decoded to {:?}",
                    message,
                    offset,
                    flip,
                    result
                );
            }
        }
    }
}

#[test]
fn typed_errors_name_the_failure() {
    // Empty input: not even a length prefix.
    assert_eq!(
        decode_message_frame(&[]),
        Err(WireError::Truncated { needed: 4, have: 0 })
    );

    // A length prefix past the frame cap is rejected before any read.
    let mut oversized = ((MAX_FRAME_BYTES as u32) + 1).to_le_bytes().to_vec();
    oversized.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        decode_message_frame(&oversized),
        Err(WireError::Oversized { .. })
    ));

    // An unknown tag inside a perfectly framed payload.
    assert_eq!(
        decode_message_frame(&frame(&[0x7f])),
        Err(WireError::UnknownTag(0x7f))
    );

    // A valid message payload with garbage appended inside the frame.
    let mut padded = Vec::new();
    Message::Status.encode_payload(&mut padded);
    padded.push(0xaa);
    assert_eq!(
        decode_message_frame(&frame(&padded)),
        Err(WireError::TrailingBytes(1))
    );

    // A valid frame with garbage appended after it.
    let mut extra = encode_message(&Message::Status);
    extra.extend_from_slice(&[1, 2, 3]);
    assert_eq!(
        decode_message_frame(&extra),
        Err(WireError::TrailingBytes(3))
    );

    // A corrupted checksum is reported with both values.
    let good = encode_message(&Message::Shutdown);
    let mut bad_crc = good.clone();
    let last = bad_crc.len() - 1;
    bad_crc[last] ^= 0xff;
    assert!(matches!(
        decode_message_frame(&bad_crc),
        Err(WireError::FrameCrc { .. })
    ));

    // The wrong magic is typed too.
    assert!(check_magic(b"LVSV").is_ok());
    assert_eq!(check_magic(b"LVSX"), Err(WireError::BadMagic(*b"LVSX")));
}

#[test]
fn malformed_field_values_are_typed_even_under_a_valid_crc() {
    // Locate the cache-hit flag byte by diffing two encodings that differ
    // only in it, then force it to an out-of-domain value and reframe with
    // a *correct* CRC: the decoder must still reject the payload.
    let verdict = CachedVerdict {
        verdict: Equivalence::Inconclusive,
        stage: Stage::Splitting,
        detail: String::new(),
        checksum: None,
    };
    let make = |cache_hit: bool| {
        let mut payload = Vec::new();
        Message::Verdict(VerdictFrame {
            index: 0,
            label: "k".to_string(),
            cache_hit,
            verdict: verdict.clone(),
        })
        .encode_payload(&mut payload);
        payload
    };
    let hit = make(true);
    let miss = make(false);
    assert_eq!(hit.len(), miss.len());
    let flag = (0..hit.len())
        .find(|&i| hit[i] != miss[i])
        .expect("encodings differ in the flag byte");
    let mut payload = hit.clone();
    payload[flag] = 2;
    assert!(matches!(
        decode_message_frame(&frame(&payload)),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn stream_reader_distinguishes_clean_close_from_torn_frame() {
    // A clean EOF at a frame boundary is `None` — the peer hung up between
    // messages, not inside one.
    let mut empty: &[u8] = &[];
    assert!(matches!(read_message(&mut empty), Ok(None)));

    // EOF inside a frame (a killed client) is a typed truncation error at
    // every cut point, never a silently dropped or invented message.
    let bytes = encode_message(&Message::Run { count: 9 });
    for len in 1..bytes.len() {
        let mut cut: &[u8] = &bytes[..len];
        let result = read_message(&mut cut);
        assert!(
            matches!(
                result,
                Err(ServiceError::Wire(WireError::Truncated { .. }))
                    | Err(ServiceError::Wire(WireError::FrameCrc { .. }))
            ),
            "cut at {} gave {:?}",
            len,
            result
        );
    }

    // read_frame returns the raw payload with the checksum verified.
    let payload = b"not a message, just a payload".to_vec();
    let mut framed: &[u8] = &frame(&payload)[..];
    // (Sanity: the framing helper and the journal CRC agree.)
    let recorded = u32::from_le_bytes(
        frame(&payload)[4 + payload.len()..][..4]
            .try_into()
            .unwrap(),
    );
    assert_eq!(recorded, crc32(&payload));
    assert_eq!(read_frame(&mut framed).unwrap(), Some(payload));
}
