//! Corruption robustness of the binary snapshot, exhaustively: a small
//! snapshot truncated at **every byte offset** and flipped at **every byte
//! offset** must fail to load with a typed [`SnapshotError`] — no panic,
//! and never a wrong verdict — mirroring `journal_torn_tail.rs` for the
//! journal forms. Every region of the file is CRC-covered, so there is no
//! offset at which a flip can survive.
//!
//! Targeted corruptions (with the covering CRC re-computed so validation
//! reaches the deeper check) pin the *specific* error classes: bad magic,
//! bad version, non-ascending index, out-of-bounds payload offset, bad
//! bloom block, and a structurally invalid record.

use lv_core::cache::{CacheKey, CacheSnapshot, CachedVerdict, SnapshotError};
use lv_core::pipeline::{Equivalence, Stage};
use lv_core::VerdictCache;
use lv_interp::ChecksumClass;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lv-snap-torn-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn sample_entries() -> Vec<(CacheKey, CachedVerdict)> {
    (0..4u64)
        .map(|i| {
            (
                CacheKey {
                    scalar: i,
                    candidate: 100 + i,
                    config: 7,
                },
                CachedVerdict {
                    verdict: if i % 2 == 0 {
                        Equivalence::Equivalent
                    } else {
                        Equivalence::NotEquivalent
                    },
                    stage: Stage::CUnroll,
                    detail: format!("entry {}", i),
                    checksum: Some(ChecksumClass::Plausible),
                },
            )
        })
        .collect()
}

fn render(bloom: bool) -> Vec<u8> {
    let dir = temp_dir(if bloom { "render-bloom" } else { "render" });
    let path = dir.join("snap.lvcs");
    CacheSnapshot::write_file(&path, &sample_entries(), bloom, false).expect("write");
    let bytes = std::fs::read(&path).expect("read back");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// CRC-32 (IEEE, reflected) — recomputed locally so targeted corruptions
/// can re-cover a patched region and reach the deeper validation step.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

fn put_u32(buf: &mut [u8], offset: usize, value: u32) {
    buf[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

#[test]
fn truncation_at_every_byte_offset_is_a_typed_error_never_a_wrong_verdict() {
    for bloom in [false, true] {
        let doc = render(bloom);
        let full = CacheSnapshot::from_bytes(doc.clone()).expect("intact snapshot loads");
        assert_eq!(full.len(), sample_entries().len());
        for len in 0..doc.len() {
            let torn = doc[..len].to_vec();
            let result = CacheSnapshot::from_bytes(torn);
            assert!(
                result.is_err(),
                "bloom={}: truncation to {} of {} bytes must not load",
                bloom,
                len,
                doc.len()
            );
        }
    }
}

#[test]
fn a_flip_at_every_byte_offset_is_a_typed_error() {
    for bloom in [false, true] {
        let doc = render(bloom);
        for offset in 0..doc.len() {
            let mut bad = doc.clone();
            bad[offset] ^= 0xff;
            let result = CacheSnapshot::from_bytes(bad);
            assert!(
                result.is_err(),
                "bloom={}: a flipped byte at offset {} must not load",
                bloom,
                offset
            );
        }
    }
}

#[test]
fn open_surfaces_corruption_as_io_invalid_data() {
    let dir = temp_dir("open");
    let path = dir.join("snap.lvcs");
    let mut doc = render(true);
    let mid = doc.len() / 2;
    doc[mid] ^= 0xff;
    std::fs::write(&path, &doc).unwrap();
    // Both entry points — the raw snapshot open and the tiered cache open —
    // must reject the file, not serve partial state.
    let err = CacheSnapshot::open(&path).expect_err("snapshot open must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let err = VerdictCache::open(&path).expect_err("cache open must fail");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn targeted_corruptions_produce_the_specific_error_class() {
    let doc = render(true);

    // Magic.
    let mut bad = doc.clone();
    bad[0] = b'X';
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::BadMagic
    );

    // Header byte flip without repairing the CRC.
    let mut bad = doc.clone();
    bad[8] ^= 0x01; // entry count
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::HeaderCrc
    );

    // Version bump *with* the header CRC repaired: the version check itself
    // must fire.
    let mut bad = doc.clone();
    put_u32(&mut bad, 4, 999);
    let crc = crc32(&bad[..52]);
    put_u32(&mut bad, 52, crc);
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::BadVersion(999)
    );

    // A corrupted index stride without repairing the index CRC.
    let mut bad = doc.clone();
    bad[56] ^= 0xff;
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::IndexCrc
    );

    // Two index strides swapped with the index CRC repaired: the
    // strictly-ascending check must fire.
    let mut bad = doc.clone();
    let (a, b) = (56, 56 + 32);
    for i in 0..32 {
        bad.swap(a + i, b + i);
    }
    let count = sample_entries().len();
    let index_end = 56 + count * 32;
    let crc = crc32(&bad[56..index_end]);
    put_u32(&mut bad, index_end, crc);
    assert!(matches!(
        CacheSnapshot::from_bytes(bad),
        Err(SnapshotError::Index(_))
    ));

    // A flipped bloom bit without repairing the bloom CRC.
    let bloom_off = index_end + 4;
    let mut bad = doc.clone();
    bad[bloom_off + 8] ^= 0x01; // first bit-array byte
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::BloomCrc
    );

    // A payload byte flip without repairing the payload CRC.
    let mut bad = doc.clone();
    let payload_crc_off = bad.len() - 4;
    bad[payload_crc_off - 1] ^= 0xff;
    assert_eq!(
        CacheSnapshot::from_bytes(bad).unwrap_err(),
        SnapshotError::PayloadCrc
    );

    // An out-of-range verdict tag with the payload CRC repaired: the
    // structural record validation must fire. Entry 0's payload starts at
    // the payload region's base and its first byte is the verdict tag.
    let payload_off = u64::from_le_bytes(doc[32..40].try_into().unwrap()) as usize;
    let payload_len = u64::from_le_bytes(doc[40..48].try_into().unwrap()) as usize;
    let mut bad = doc.clone();
    bad[payload_off] = 7; // no such verdict tag
    let crc = crc32(&bad[payload_off..payload_off + payload_len]);
    put_u32(&mut bad, payload_off + payload_len, crc);
    assert!(matches!(
        CacheSnapshot::from_bytes(bad),
        Err(SnapshotError::Record { index: 0, .. })
    ));

    // Truncated payload region (header intact): typed truncation.
    let torn = doc[..doc.len() - 5].to_vec();
    assert!(matches!(
        CacheSnapshot::from_bytes(torn),
        Err(SnapshotError::Truncated { .. })
    ));
}

#[test]
fn errors_render_actionable_messages() {
    let doc = render(true);
    let mut bad = doc.clone();
    put_u32(&mut bad, 4, 2);
    let crc = crc32(&bad[..52]);
    put_u32(&mut bad, 52, crc);
    let err = CacheSnapshot::from_bytes(bad).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("version 2"), "{}", message);
    assert!(message.contains("delete the file"), "{}", message);
}
