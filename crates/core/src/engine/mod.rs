//! The parallel batch verification engine, split into three layers:
//!
//! * [`stage`] — one cascade stage as a [`VerificationStrategy`] trait
//!   object ([`ChecksumStage`] wrapping the checksum filter, one
//!   [`SymbolicStage`] per [`lv_tv::SymbolicStrategy`]). A stage checks one
//!   `(scalar, candidate)` pair and knows nothing about ordering or
//!   parallelism;
//! * [`schedule`] — the cascade *order* as data: a [`StageSchedule`] is the
//!   default Algorithm 1 order plus per-kernel-category overrides that
//!   permute only the symbolic stages (checksum pinned first), keyed by the
//!   CIR-feature categorizer in [`lv_analysis::categorize`]. The default
//!   schedule is bit-identical to the fixed cascade — same execution, same
//!   [`EngineConfig::semantic_fingerprint`], same cache keys — while
//!   effective overrides fingerprint distinctly (the resolved per-category
//!   orders are hashed in) and still produce bit-identical *verdicts*, since
//!   every symbolic stage is sound. [`StageSchedule::from_profile`] derives
//!   the overrides from a persisted [`crate::profile::CrossRunProfile`];
//! * [`pool`] — the atomic work-queue worker pool ([`parallel_map`] and the
//!   batch runner core): workers pull jobs from a shared cursor, each owning
//!   one reusable SMT session ([`lv_tv::TvSession`]) for its whole lifetime,
//!   and results are returned in job order regardless of scheduling.
//!
//! Every job is deterministic given its inputs and each worker session is
//! reset to a just-constructed state between queries, so a batch produces
//! bit-identical verdicts regardless of the thread count — `threads = N` is
//! purely a wall-clock optimization over `threads = 1`, which in turn equals
//! the one-shot [`crate::check_equivalence`].
//!
//! On top of the worker pool the engine is *observable*, *cached*, and
//! optionally *self-tuning*:
//!
//! * [`VerificationEngine::run_batch_observed`] streams job/stage/verdict
//!   events to a [`BatchObserver`] as workers make progress;
//! * a configured [`VerdictCache`] is consulted per job *before any stage
//!   runs*, keyed by `(scalar, candidate, config)` content hashes; hits run
//!   zero stages and are counted in [`BatchReport::cache_hits`];
//! * [`VerificationEngine::run_batch_adaptive`] runs a pilot slice under the
//!   configured budgets, derives tightened per-stage [`lv_tv::SolverBudget`]s
//!   from the pilot's [`crate::FunnelReport`], and runs the remainder under
//!   them (opt-in via [`EngineConfig::adaptive`]; off by default so verdicts
//!   stay bit-identical to the sequential path). With a persisted
//!   [`crate::profile::CrossRunProfile`] the pilot slice becomes
//!   unnecessary: [`StageSchedule::from_profile`] and
//!   [`AdaptiveBudgetPolicy::derive_from_profile`](crate::AdaptiveBudgetPolicy::derive_from_profile)
//!   derive the stage order and budgets for the *next* run from every
//!   previous run's telemetry.
//!
//! Orthogonal to all of the above, [`EngineReuse`] switches on the cross-job
//! SMT reuse layers (all off by default):
//!
//! * **blast memo** — each worker's solver memoizes the blasted CNF of
//!   structurally repeated queries and replays the recorded clause stream
//!   instead of re-blasting. Clause-identical by construction, so reports
//!   stay bit-identical to the fresh path;
//! * **incremental per-scalar sessions** — the pool switches to
//!   scalar-affinity scheduling: all candidates of one
//!   scalar kernel run consecutively on one worker, whose session keeps the
//!   scalar-side solver state warm under assumption-based queries. Learned
//!   clauses can let a budget-capped query *conclude* where a fresh solver
//!   ran out, so the concluding stage may improve — this layer therefore
//!   perturbs [`EngineConfig::semantic_fingerprint`], while verdict classes
//!   and checksums stay identical and reports remain bit-identical across
//!   thread counts (the grouped pool pins each group's query sequence);
//! * **portfolio budget racing** — every symbolic stage is wrapped in a
//!   [`PortfolioStage`] that first races a tight budget
//!   (`configured / `[`PORTFOLIO_TIGHT_DIVISOR`]) and escalates to the full
//!   budget only on an inconclusive tight run. Same verdicts by
//!   construction; escalations are counted per stage and per job.
//!
//! Per-job reuse activity lands in [`JobReport::reuse`]
//! ([`ReuseCounters`]), aggregates via [`BatchReport::reuse_totals`], and
//! feeds the funnel report and the persisted cross-run profile. Clause-
//! database simplification ([`EngineReuse::simplify`]) reports through the
//! parallel [`SimplifyCounters`] path ([`JobReport::simplify`],
//! [`BatchReport::simplify_totals`]).

pub mod pool;
pub mod schedule;
pub mod stage;

pub use pool::{job_channel, parallel_map, JobProducer, JobSource};
pub use schedule::{StageSchedule, SYMBOLIC_STAGES};
pub use stage::{
    ChecksumStage, PortfolioStage, StrategyOutcome, SymbolicStage, VerificationStrategy,
    WorkerState, PORTFOLIO_TIGHT_DIVISOR,
};

use crate::cache::{CacheKey, CachedVerdict, VerdictCache};
use crate::funnel::{AdaptiveBudgetPolicy, FunnelReport};
use crate::observer::{BatchObserver, IndexMapObserver, NoopObserver, OffsetObserver};
use crate::pipeline::{Equivalence, EquivalenceReport, PipelineConfig, Stage};
use lv_analysis::KernelCategory;
use lv_cir::ast::Function;
use lv_cir::hash::{structural_hash, structural_hash_in_env, Fnv64};
use lv_interp::ChecksumClass;
use lv_tv::{SimplifyConfig, SymbolicStrategy, TvConfig, TvReuse, TvSessionStats};
use std::sync::Arc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Which cross-job SMT reuse mechanisms the engine runs with. All off by
/// default — the engine then behaves (and fingerprints) exactly as before
/// the reuse subsystem existed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineReuse {
    /// Blasted-CNF memoization inside each worker's solver: structurally
    /// repeated queries replay their recorded clause stream instead of
    /// re-blasting. Clause-identical by construction, so verdicts (and the
    /// configuration fingerprint) are unchanged.
    pub memo: bool,
    /// Incremental per-scalar solving: same-scalar jobs are grouped onto one
    /// worker (scalar-affinity scheduling), whose session keeps the scalar's
    /// SMT context and per-strategy SAT instances warm across the group's
    /// candidates. Deterministic at any thread count (whole groups are
    /// claimed atomically and run in job order), but warm-instance solves
    /// are not formally clause-identical to fresh ones near budget limits,
    /// so this is the one knob that perturbs
    /// [`EngineConfig::semantic_fingerprint`].
    pub incremental: bool,
    /// Portfolio budget racing: each symbolic stage first runs under a
    /// conflict budget tightened by [`PORTFOLIO_TIGHT_DIVISOR`], escalating
    /// to the full budget only on an inconclusive attempt. Verdict-identical
    /// (see [`PortfolioStage`]); escalations are counted in
    /// [`StageTrace::escalated`] and the reuse counters.
    pub portfolio: bool,
    /// Clause-database simplification inside each worker's solver:
    /// SatELite-style preprocessing before every search and/or inprocessing
    /// hooks (LBD-driven learned-clause reduction, clause minimization)
    /// inside the CDCL loop. Simplification may conclude queries the raw
    /// budget would have exhausted, so like `incremental` it perturbs
    /// [`EngineConfig::semantic_fingerprint`] when enabled.
    pub simplify: SimplifyConfig,
}

impl EngineReuse {
    /// Every *reuse* mechanism on — the configuration the reuse benchmarks
    /// race against the fresh-solve baseline. Simplification stays off;
    /// enable it separately via the `simplify` field (`--simplify` on the
    /// CLI).
    pub fn full() -> EngineReuse {
        EngineReuse {
            memo: true,
            incremental: true,
            portfolio: true,
            simplify: SimplifyConfig::default(),
        }
    }

    /// `true` if any mechanism is enabled.
    pub fn any(self) -> bool {
        self.memo || self.incremental || self.portfolio || self.simplify.any()
    }

    /// The session-level subset handed to each worker's
    /// [`lv_tv::TvSession`].
    pub fn tv(self) -> TvReuse {
        TvReuse {
            memo: self.memo,
            incremental: self.incremental,
            simplify: self.simplify,
        }
    }
}

/// Cross-job SMT reuse counters, aggregated per job and per batch. All zero
/// when [`EngineReuse`] is off (or for cache hits, which run no solver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseCounters {
    /// Blasted-CNF memo replays.
    pub blast_hits: u64,
    /// Memo lookups that fell back to a fresh blast.
    pub blast_misses: u64,
    /// Queries solved on a warm incremental instance under an assumption.
    pub assumption_reuses: u64,
    /// Portfolio stages whose tight attempt was inconclusive and re-ran
    /// under the full budget.
    pub escalations: u64,
}

impl ReuseCounters {
    /// Adds `other` into this counter set.
    pub fn absorb(&mut self, other: ReuseCounters) {
        self.blast_hits += other.blast_hits;
        self.blast_misses += other.blast_misses;
        self.assumption_reuses += other.assumption_reuses;
        self.escalations += other.escalations;
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == ReuseCounters::default()
    }
}

/// Clause-database simplification counters, aggregated per job and per
/// batch. All zero when [`EngineReuse::simplify`] is off (or for cache
/// hits, which run no solver).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyCounters {
    /// Variables removed by pure-literal rule or bounded variable
    /// elimination during preprocessing.
    pub vars_eliminated: u64,
    /// Clauses deleted by subsumption (preprocessing) plus learned clauses
    /// deleted by inprocessing DB reduction.
    pub clauses_subsumed: u64,
    /// Clauses shortened by self-subsuming resolution (preprocessing) plus
    /// literals dropped by inprocessing clause minimization.
    pub clauses_strengthened: u64,
    /// High-water mark of the flat clause arena, in bytes.
    pub arena_bytes: u64,
    /// Wall time spent in preprocessing, in microseconds.
    pub preprocess_micros: u64,
}

impl SimplifyCounters {
    /// Adds `other` into this counter set. `arena_bytes` is a high-water
    /// mark, so it takes the max rather than summing.
    pub fn absorb(&mut self, other: SimplifyCounters) {
        self.vars_eliminated += other.vars_eliminated;
        self.clauses_subsumed += other.clauses_subsumed;
        self.clauses_strengthened += other.clauses_strengthened;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.preprocess_micros += other.preprocess_micros;
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SimplifyCounters::default()
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// The stages to run, in base order. Defaults to Algorithm 1's full
    /// cascade; the [`StageSchedule`] may reorder the symbolic stages per
    /// kernel category.
    pub cascade: Vec<Stage>,
    /// Per-kernel-category stage ordering. The default is Algorithm 1's
    /// fixed order for every category — bit-identical execution and
    /// fingerprint to the pre-schedule engine.
    pub schedule: StageSchedule,
    /// Stage configurations (checksum harness + symbolic budgets).
    pub pipeline: PipelineConfig,
    /// Verdict cache consulted per job before any stage runs. `None`
    /// disables caching.
    pub cache: Option<Arc<VerdictCache>>,
    /// Opt-in adaptive budget tuning, applied by
    /// [`VerificationEngine::run_batch_adaptive`]. `None` (the default)
    /// keeps the configured budgets and bit-identical verdicts.
    pub adaptive: Option<AdaptiveBudgetPolicy>,
    /// Opt-in cross-job SMT reuse (blast memo, incremental per-scalar
    /// solving with scalar-affinity scheduling, portfolio budget racing).
    /// Off by default.
    pub reuse: EngineReuse,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cascade: vec![
                Stage::Checksum,
                Stage::Alive2,
                Stage::CUnroll,
                Stage::Splitting,
            ],
            schedule: StageSchedule::algorithm1(),
            pipeline: PipelineConfig::default(),
            cache: None,
            adaptive: None,
            reuse: EngineReuse::default(),
        }
    }
}

impl EngineConfig {
    /// The full Algorithm 1 cascade with the given stage configurations.
    pub fn full(pipeline: PipelineConfig) -> EngineConfig {
        EngineConfig {
            pipeline,
            ..EngineConfig::default()
        }
    }

    /// A checksum-only cascade (the Table 2 / Figure 5 experiments).
    pub fn checksum_only(checksum: lv_interp::ChecksumConfig) -> EngineConfig {
        EngineConfig {
            cascade: vec![Stage::Checksum],
            pipeline: PipelineConfig {
                checksum,
                ..PipelineConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    /// Returns this configuration with the given worker count.
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// Returns this configuration with a verdict cache attached.
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> EngineConfig {
        self.cache = Some(cache);
        self
    }

    /// Returns this configuration with adaptive budget tuning enabled.
    pub fn with_adaptive(mut self, policy: AdaptiveBudgetPolicy) -> EngineConfig {
        self.adaptive = Some(policy);
        self
    }

    /// Returns this configuration with the given stage schedule.
    pub fn with_schedule(mut self, schedule: StageSchedule) -> EngineConfig {
        self.schedule = schedule;
        self
    }

    /// Returns this configuration with the given reuse mechanisms enabled.
    pub fn with_reuse(mut self, reuse: EngineReuse) -> EngineConfig {
        self.reuse = reuse;
        self
    }

    /// A stable fingerprint of everything that can influence a verdict: the
    /// cascade stage list (order matters — it decides which stage answers
    /// first), the *effective* per-category schedule overrides (resolved
    /// against the cascade; the default schedule contributes nothing, so
    /// default-schedule fingerprints are bit-identical to the pre-schedule
    /// engine), the checksum harness configuration, and the symbolic
    /// budgets.
    ///
    /// This is the `config` component of every [`CacheKey`]. Thread count,
    /// the cache itself, and the adaptive *policy* are deliberately
    /// excluded: none of them changes the verdict a given budget
    /// configuration produces (an adaptive run caches its tuned-phase
    /// verdicts under the tuned configuration's own fingerprint).
    pub fn semantic_fingerprint(&self) -> u64 {
        let mut fnv = Fnv64::new();
        fnv.write_u64(self.cascade.len() as u64);
        for stage in &self.cascade {
            fnv.write_u8(schedule::stage_fingerprint_byte(*stage));
        }
        fnv.write_u64(self.pipeline.checksum.fingerprint());
        fnv.write_u64(self.pipeline.tv.fingerprint());
        self.schedule.fingerprint_into(&self.cascade, &mut fnv);
        // Of the reuse knobs, only incremental solving perturbs the
        // fingerprint: memo replays are clause-identical and portfolio
        // racing is verdict-identical by construction (see [`EngineReuse`]),
        // but a warm incremental instance is not formally guaranteed to
        // reach the same verdict as a fresh solve at the budget boundary, so
        // its verdicts must not share cache keys with fresh-solve runs.
        // Writing nothing for the default keeps reuse-off fingerprints
        // bit-identical to the pre-reuse engine.
        if self.reuse.incremental {
            fnv.write_u8(0x52); // 'R'
        }
        // Simplification may conclude queries the raw budget would have
        // exhausted (fewer clauses to search, learned-DB reduction), so each
        // enabled layer perturbs the fingerprint. Off keeps it byte-stable.
        if self.reuse.simplify.any() {
            fnv.write_u8(0x53); // 'S'
            fnv.write_u8(
                u8::from(self.reuse.simplify.preprocess)
                    | (u8::from(self.reuse.simplify.inprocess) << 1),
            );
        }
        fnv.finish()
    }
}

/// One unit of work: check `candidate` against `scalar`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label for reports (kernel name, optionally with a completion index).
    pub label: String,
    /// The scalar reference kernel.
    pub scalar: Function,
    /// The vectorization candidate.
    pub candidate: Function,
}

impl Job {
    /// A job with the given label.
    pub fn new(label: impl Into<String>, scalar: Function, candidate: Function) -> Job {
        Job {
            label: label.into(),
            scalar,
            candidate,
        }
    }
}

/// Telemetry for one cascade stage of one job.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// The stage that ran.
    pub stage: Stage,
    /// Whether this stage produced the job's final verdict.
    pub conclusive: bool,
    /// Wall time the stage took.
    pub wall: Duration,
    /// SAT conflicts spent (always 0 for the checksum stage).
    pub conflicts: u64,
    /// CNF clauses built (always 0 for the checksum stage).
    pub clauses: u64,
    /// `true` on a checksum-stage trace whose candidate renamed its array
    /// parameters away from the scalar's — the harness bound disjoint arrays
    /// and the comparison was vacuous (telemetry only; the verdict is
    /// unchanged). Always `false` for symbolic stages.
    pub name_mismatch: bool,
    /// `true` when a [`PortfolioStage`]'s tight-budget attempt was
    /// inconclusive and the stage escalated to the full budget. Always
    /// `false` without [`EngineReuse::portfolio`].
    pub escalated: bool,
}

/// The result of one job, with telemetry.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's label.
    pub label: String,
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it (the last stage run, if none concluded).
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade includes the checksum stage.
    pub checksum: Option<ChecksumClass>,
    /// Per-stage telemetry, in execution order. A conclusive stage is always
    /// last — stages after an early exit never run, which is how tests pin
    /// Algorithm 1's short-circuit ordering. Empty for cache hits, which run
    /// no stages at all.
    pub traces: Vec<StageTrace>,
    /// Total wall time for the job.
    pub wall: Duration,
    /// `true` when the verdict came from the [`VerdictCache`] and no stage
    /// ran.
    pub cache_hit: bool,
    /// Cross-job SMT reuse activity attributed to this job (deltas of the
    /// worker session's counters around the job, plus this job's portfolio
    /// escalations). All zero when reuse is off or the job was a cache hit.
    pub reuse: ReuseCounters,
    /// Clause-database simplification activity attributed to this job
    /// (deltas of the worker session's counters around the job). All zero
    /// when [`EngineReuse::simplify`] is off or the job was a cache hit.
    pub simplify: SimplifyCounters,
}

impl JobReport {
    /// Collapses the report into the pipeline's three-field form.
    pub fn equivalence_report(&self) -> EquivalenceReport {
        EquivalenceReport {
            verdict: self.verdict,
            stage: self.stage,
            detail: self.detail.clone(),
        }
    }
}

/// The result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per job, in job order (independent of scheduling).
    pub jobs: Vec<JobReport>,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Jobs answered from the verdict cache without running any stage.
    pub cache_hits: usize,
    /// Jobs that ran their cascade and stored the verdict (always `0` when
    /// the engine has no cache).
    pub cache_misses: usize,
}

impl BatchReport {
    /// Total SAT conflicts spent across all jobs and stages.
    pub fn total_conflicts(&self) -> u64 {
        self.jobs
            .iter()
            .flat_map(|j| &j.traces)
            .map(|t| t.conflicts)
            .sum()
    }

    /// Total stage executions across all jobs — `0` for a fully cached
    /// batch, which is how tests pin "a warm cache runs neither checksum nor
    /// SMT stages".
    pub fn stage_runs(&self) -> usize {
        self.jobs.iter().map(|j| j.traces.len()).sum()
    }

    /// Count of jobs whose final verdict is `verdict`.
    pub fn count(&self, verdict: Equivalence) -> usize {
        self.jobs.iter().filter(|j| j.verdict == verdict).count()
    }

    /// Total cross-job SMT reuse activity over the batch (all zero when
    /// [`EngineReuse`] is off).
    pub fn reuse_totals(&self) -> ReuseCounters {
        let mut totals = ReuseCounters::default();
        for job in &self.jobs {
            totals.absorb(job.reuse);
        }
        totals
    }

    /// Total clause-database simplification activity over the batch (all
    /// zero when [`EngineReuse::simplify`] is off).
    pub fn simplify_totals(&self) -> SimplifyCounters {
        let mut totals = SimplifyCounters::default();
        for job in &self.jobs {
            totals.absorb(job.simplify);
        }
        totals
    }

    /// The telemetry funnel over this batch's stage traces.
    pub fn funnel(&self) -> FunnelReport {
        FunnelReport::from_jobs(&self.jobs)
    }
}

/// The result of [`VerificationEngine::run_batch_adaptive`]: the merged
/// batch plus what the tuning did.
#[derive(Debug, Clone)]
pub struct AdaptiveBatchReport {
    /// The merged report over all jobs, in job order.
    pub report: BatchReport,
    /// How many leading jobs formed the pilot (run under base budgets).
    pub pilot_jobs: usize,
    /// The configured budgets the pilot ran under.
    pub base: TvConfig,
    /// The derived budgets the remainder ran under. Equal to `base` when the
    /// engine has no adaptive policy or the pilot produced no evidence.
    pub tuned: TvConfig,
    /// The pilot's funnel — the evidence the tuning was derived from.
    pub funnel: FunnelReport,
}

/// The parallel batch verification engine.
pub struct VerificationEngine {
    threads: usize,
    /// One strategy instance per base-cascade stage, in cascade order.
    strategies: Vec<Box<dyn VerificationStrategy>>,
    /// The base execution order: `0..strategies.len()`.
    identity_order: Vec<usize>,
    /// Per-category execution orders (indices into `strategies`) for
    /// categories whose resolved schedule differs from the base cascade.
    /// Empty for the default schedule — jobs then skip categorization
    /// entirely, so default-schedule batches are bit-identical (down to
    /// wall-clock behavior) to the pre-schedule engine.
    category_orders: Vec<(KernelCategory, Vec<usize>)>,
    cache: Option<Arc<VerdictCache>>,
    /// [`EngineConfig::semantic_fingerprint`] of the source configuration,
    /// precomputed once — it is part of every cache key.
    config_fingerprint: u64,
    /// The source configuration, kept so the adaptive path can rebuild a
    /// tuned engine. `None` for caller-assembled cascades.
    config: Option<EngineConfig>,
    /// Cross-job SMT reuse configuration: decides worker-session reuse, the
    /// scheduling mode (scalar affinity when incremental), and whether
    /// symbolic stages were built as portfolios.
    reuse: EngineReuse,
}

impl VerificationEngine {
    /// Builds an engine from a configuration, instantiating one strategy per
    /// cascade stage and precomputing the per-category execution orders.
    pub fn new(config: EngineConfig) -> VerificationEngine {
        let symbolic = |strategy: SymbolicStrategy| -> Box<dyn VerificationStrategy> {
            if config.reuse.portfolio {
                Box::new(PortfolioStage::new(strategy, config.pipeline.tv.clone()))
            } else {
                Box::new(SymbolicStage::new(strategy, config.pipeline.tv.clone()))
            }
        };
        let strategies: Vec<Box<dyn VerificationStrategy>> = config
            .cascade
            .iter()
            .map(|stage| -> Box<dyn VerificationStrategy> {
                match stage {
                    Stage::Checksum => {
                        Box::new(ChecksumStage::new(config.pipeline.checksum.clone()))
                    }
                    Stage::Alive2 => symbolic(SymbolicStrategy::Alive2Unroll),
                    Stage::CUnroll => symbolic(SymbolicStrategy::CUnroll),
                    Stage::Splitting => symbolic(SymbolicStrategy::SpatialSplitting),
                }
            })
            .collect();
        // Resolve each effective override into indices of `strategies`: the
        // resolved order is a permutation of the cascade, so every stage in
        // it names exactly one cascade position.
        let category_orders = config
            .schedule
            .resolved_overrides(&config.cascade)
            .into_iter()
            .map(|(category, order)| {
                let mut remaining: Vec<usize> = (0..config.cascade.len()).collect();
                let indices = order
                    .iter()
                    .map(|stage| {
                        let slot = remaining
                            .iter()
                            .position(|&i| config.cascade[i] == *stage)
                            .expect("resolved order is a permutation of the cascade");
                        remaining.remove(slot)
                    })
                    .collect();
                (category, indices)
            })
            .collect();
        VerificationEngine {
            threads: config.threads,
            identity_order: (0..strategies.len()).collect(),
            strategies,
            category_orders,
            cache: config.cache.clone(),
            config_fingerprint: config.semantic_fingerprint(),
            reuse: config.reuse,
            config: Some(config),
        }
    }

    /// An engine with a caller-assembled cascade. Such an engine has no
    /// configuration fingerprint, so it never caches, and
    /// [`VerificationEngine::run_batch_adaptive`] degenerates to a plain
    /// batch.
    pub fn with_strategies(
        threads: usize,
        strategies: Vec<Box<dyn VerificationStrategy>>,
    ) -> VerificationEngine {
        VerificationEngine {
            threads,
            identity_order: (0..strategies.len()).collect(),
            strategies,
            category_orders: Vec::new(),
            cache: None,
            config_fingerprint: 0,
            config: None,
            reuse: EngineReuse::default(),
        }
    }

    /// The worker count a batch of `jobs` jobs would use.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        pool::resolve_threads(self.threads, jobs)
    }

    /// Runs the cascade on a single pair, reusing nothing (the
    /// [`crate::check_equivalence`] path). Consults the verdict cache like
    /// any batched job.
    pub fn check_one(&self, scalar: &Function, candidate: &Function) -> JobReport {
        let mut worker = WorkerState::default();
        self.run_job(
            0,
            &Job::new(scalar.name.clone(), scalar.clone(), candidate.clone()),
            &mut worker,
            &NoopObserver,
        )
    }

    /// Verifies a batch of jobs on the worker pool.
    ///
    /// Results are returned in job order. Verdicts, stages, and details are
    /// identical for every thread count; only `wall` varies.
    pub fn run_batch(&self, jobs: &[Job]) -> BatchReport {
        self.run_batch_observed(jobs, &NoopObserver)
    }

    /// [`VerificationEngine::run_batch`], streaming progress to `observer`.
    ///
    /// Callbacks fire from worker threads in completion order; the reports
    /// in the returned batch are still in job order, bit-identical to an
    /// unobserved run.
    pub fn run_batch_observed(&self, jobs: &[Job], observer: &dyn BatchObserver) -> BatchReport {
        let threads = self.resolved_threads(jobs.len());
        let start = Instant::now();
        let init = || WorkerState::with_reuse(self.reuse.tv());
        let run = |index: usize, job: &Job, worker: &mut WorkerState| {
            self.run_job(index, job, worker, observer)
        };
        let reports = if self.reuse.incremental {
            // Scalar affinity: same-scalar jobs run consecutively on one
            // worker so its warm per-scalar session actually gets hit, and a
            // whole group is claimed atomically so the query sequence each
            // warm instance sees — hence every verdict — is identical at any
            // thread count.
            let groups = scalar_groups(jobs);
            pool::parallel_map_grouped(threads, jobs, &groups, init, run)
        } else {
            pool::parallel_map_with(threads, jobs, init, run)
        };
        let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
        let cache_misses = if self.cache.is_some() {
            reports.len() - cache_hits
        } else {
            0
        };
        BatchReport {
            jobs: reports,
            wall: start.elapsed(),
            threads,
            cache_hits,
            cache_misses,
        }
    }

    /// Verifies a stream of jobs as they arrive, without materializing the
    /// batch up front — the overlapped generation→verification intake.
    ///
    /// See [`VerificationEngine::run_stream_observed`].
    pub fn run_stream(&self, source: &JobSource<Job>) -> BatchReport {
        self.run_stream_observed(source, &NoopObserver)
    }

    /// [`VerificationEngine::run_stream`], streaming progress to
    /// `observer`.
    ///
    /// Workers claim `(index, job)` pairs from the bounded `source` (see
    /// [`job_channel`]) as a producer — typically seeded
    /// parallel candidate generation — pushes them, so verification starts
    /// before generation finishes. Each job runs through the identical
    /// [`run_job`](Self::run_batch) path as the batch entry points, and the
    /// returned [`BatchReport`] is assembled in ascending job-index order,
    /// so verdicts are bit-identical to `run_batch` over the same jobs in
    /// index order, at any worker count and any arrival order (pinned at
    /// worker counts 1/2/8 by the pipeline property tests). Indices need
    /// not be dense — the service streams sparse post-dedupe slots — but
    /// must be unique.
    ///
    /// One scheduling mode cannot stream: incremental per-scalar reuse
    /// requires whole scalar groups claimed atomically, which needs the
    /// full job list. With [`EngineReuse::incremental`] set, the source is
    /// drained first and the batch path runs — correctness is preserved,
    /// overlap is not.
    pub fn run_stream_observed(
        &self,
        source: &JobSource<Job>,
        observer: &dyn BatchObserver,
    ) -> BatchReport {
        let start = Instant::now();
        if self.reuse.incremental {
            // Scalar-affinity grouping needs every job up front: drain,
            // order, and fall back to the grouped batch path (remapping
            // observer indices back to the stream's).
            let mut pairs: Vec<(usize, Job)> = std::iter::from_fn(|| source.next()).collect();
            pairs.sort_by_key(|(index, _)| *index);
            let indices: Vec<usize> = pairs.iter().map(|(index, _)| *index).collect();
            let jobs: Vec<Job> = pairs.into_iter().map(|(_, job)| job).collect();
            let remap = IndexMapObserver::new(observer, &indices);
            let mut report = self.run_batch_observed(&jobs, &remap);
            report.wall = start.elapsed();
            return report;
        }
        let threads = pool::resolve_threads(self.threads, usize::MAX);
        let init = || WorkerState::with_reuse(self.reuse.tv());
        let collected: Mutex<Vec<(usize, JobReport)>> = Mutex::new(Vec::new());
        if threads <= 1 {
            let mut worker = init();
            while let Some((index, job)) = source.next() {
                let report = self.run_job(index, &job, &mut worker, observer);
                collected.lock().unwrap().push((index, report));
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| {
                        let mut worker = init();
                        while let Some((index, job)) = source.next() {
                            let report = self.run_job(index, &job, &mut worker, observer);
                            collected.lock().unwrap().push((index, report));
                        }
                    });
                }
            });
        }
        let mut pairs = collected.into_inner().unwrap();
        pairs.sort_by_key(|(index, _)| *index);
        assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "duplicate job index in the stream"
        );
        let reports: Vec<JobReport> = pairs.into_iter().map(|(_, report)| report).collect();
        let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
        let cache_misses = if self.cache.is_some() {
            reports.len() - cache_hits
        } else {
            0
        };
        BatchReport {
            jobs: reports,
            wall: start.elapsed(),
            threads,
            cache_hits,
            cache_misses,
        }
    }

    /// Runs a batch with telemetry-driven budget tuning: a pilot slice runs
    /// under the configured budgets, the [`AdaptiveBudgetPolicy`] derives
    /// tightened budgets from the pilot's funnel, and the remaining jobs run
    /// under them.
    ///
    /// Requires [`EngineConfig::adaptive`]; without it (or for a
    /// caller-assembled cascade) this is exactly
    /// [`Self::run_batch_observed`] with the whole batch as the pilot, so
    /// drivers can call it unconditionally.
    pub fn run_batch_adaptive(
        &self,
        jobs: &[Job],
        observer: &dyn BatchObserver,
    ) -> AdaptiveBatchReport {
        let policy = self.config.as_ref().and_then(|c| c.adaptive.clone());
        let (Some(config), Some(policy)) = (&self.config, policy) else {
            let report = self.run_batch_observed(jobs, observer);
            let funnel = report.funnel();
            let base = self
                .config
                .as_ref()
                .map_or_else(TvConfig::default, |c| c.pipeline.tv.clone());
            return AdaptiveBatchReport {
                report,
                pilot_jobs: jobs.len(),
                base: base.clone(),
                tuned: base,
                funnel,
            };
        };

        let pilot_len = policy.pilot_len(jobs.len());
        // The pilot must produce real stage evidence even when a warm cache
        // could answer it: a trace-less funnel would silently fall back to
        // base budgets, making a warm adaptive run diverge from the cold run
        // that filled the cache. Running the pilot through a cache-less twin
        // re-derives the identical tuned budgets, so the remainder hits the
        // tuned-fingerprint entries the cold run stored.
        let pilot = if config.cache.is_some() {
            let uncached = VerificationEngine::new(EngineConfig {
                cache: None,
                ..config.clone()
            });
            uncached.run_batch_observed(&jobs[..pilot_len], observer)
        } else {
            self.run_batch_observed(&jobs[..pilot_len], observer)
        };
        let funnel = pilot.funnel();
        let base = config.pipeline.tv.clone();
        let tuned = policy.derive(&funnel, &base);

        let mut merged = pilot;
        if pilot_len < jobs.len() {
            let mut tuned_config = config.clone();
            tuned_config.adaptive = None; // the tuning is already applied
            tuned_config.pipeline.tv = tuned.clone();
            let tuned_engine = VerificationEngine::new(tuned_config);
            let rest = tuned_engine.run_batch_observed(
                &jobs[pilot_len..],
                &OffsetObserver::new(observer, pilot_len),
            );
            merged.jobs.extend(rest.jobs);
            merged.wall += rest.wall;
            merged.threads = merged.threads.max(rest.threads);
            merged.cache_hits += rest.cache_hits;
            merged.cache_misses += rest.cache_misses;
        }
        AdaptiveBatchReport {
            report: merged,
            pilot_jobs: pilot_len,
            base,
            tuned,
            funnel,
        }
    }

    /// The cache key of one job under this engine's configuration, or `None`
    /// when the engine has no cache.
    fn cache_key(&self, job: &Job) -> Option<CacheKey> {
        self.cache.as_ref()?;
        Some(job_cache_key(job, self.config_fingerprint))
    }

    /// The stage execution order for `job`: the base cascade order unless
    /// the schedule has an effective override for the job's kernel category.
    /// Categorization runs only when overrides exist, so a default-schedule
    /// engine pays nothing.
    fn stage_order(&self, job: &Job) -> &[usize] {
        if self.category_orders.is_empty() {
            return &self.identity_order;
        }
        let category = lv_analysis::categorize(&job.scalar);
        self.category_orders
            .iter()
            .find(|(c, _)| *c == category)
            .map_or(&self.identity_order, |(_, order)| order)
    }

    /// Runs the cascade on one job, collecting per-stage telemetry. The
    /// verdict cache is consulted first — a hit returns before any stage
    /// (checksum included) runs.
    fn run_job(
        &self,
        index: usize,
        job: &Job,
        worker: &mut WorkerState,
        observer: &dyn BatchObserver,
    ) -> JobReport {
        let job_start = Instant::now();
        observer.job_started(index, job);

        let key = self.cache_key(job);
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            if let Some(hit) = cache.get(&key) {
                let report = JobReport {
                    label: job.label.clone(),
                    verdict: hit.verdict,
                    stage: hit.stage,
                    detail: hit.detail,
                    checksum: hit.checksum,
                    traces: Vec::new(),
                    wall: job_start.elapsed(),
                    cache_hit: true,
                    reuse: ReuseCounters::default(),
                    simplify: SimplifyCounters::default(),
                };
                observer.job_finished(index, &report);
                return report;
            }
        }

        worker.checksum = None;
        worker.name_mismatch = false;
        let reuse_before = worker.session.reuse_stats();
        let simplify_before = worker.session.simplify_stats();
        let order = self.stage_order(job);
        let mut traces = Vec::with_capacity(order.len());
        // If no stage concludes, report the last stage that ran (Alive2 with
        // an empty reason for an empty cascade, mirroring the sequential
        // pipeline's initializer).
        let mut last_stage = Stage::Alive2;
        let mut last_reason = String::new();
        let mut conclusion: Option<(Equivalence, Stage, String)> = None;

        for &slot in order {
            let strategy = &self.strategies[slot];
            let stats_before = worker.session.stats;
            worker.escalated = false;
            let stage_start = Instant::now();
            let outcome = strategy.verify(&job.scalar, &job.candidate, worker);
            let wall = stage_start.elapsed();
            let spent = effort_delta(stats_before, worker.session.stats);
            let conclusive = matches!(outcome, StrategyOutcome::Conclusive { .. });
            traces.push(StageTrace {
                stage: strategy.stage(),
                conclusive,
                wall,
                conflicts: spent.0,
                clauses: spent.1,
                name_mismatch: strategy.stage() == Stage::Checksum && worker.name_mismatch,
                escalated: worker.escalated,
            });
            observer.stage_finished(index, job, traces.last().expect("just pushed"));
            match outcome {
                StrategyOutcome::Conclusive { verdict, detail } => {
                    conclusion = Some((verdict, strategy.stage(), detail));
                    break;
                }
                StrategyOutcome::Continue { reason } => {
                    last_stage = strategy.stage();
                    last_reason = reason;
                }
            }
        }

        let (verdict, stage, detail) =
            conclusion.unwrap_or((Equivalence::Inconclusive, last_stage, last_reason));
        let reuse_after = worker.session.reuse_stats();
        let reuse = ReuseCounters {
            blast_hits: reuse_after.blast_hits - reuse_before.blast_hits,
            blast_misses: reuse_after.blast_misses - reuse_before.blast_misses,
            assumption_reuses: reuse_after.assumption_reuses - reuse_before.assumption_reuses,
            escalations: traces.iter().filter(|t| t.escalated).count() as u64,
        };
        let simplify_after = worker.session.simplify_stats();
        let simplify = SimplifyCounters {
            vars_eliminated: simplify_after
                .vars_eliminated
                .saturating_sub(simplify_before.vars_eliminated),
            clauses_subsumed: simplify_after
                .clauses_subsumed
                .saturating_sub(simplify_before.clauses_subsumed),
            clauses_strengthened: simplify_after
                .clauses_strengthened
                .saturating_sub(simplify_before.clauses_strengthened),
            // High-water mark, not a monotone sum: report the level reached
            // by the time this job finished.
            arena_bytes: simplify_after.arena_bytes,
            preprocess_micros: simplify_after
                .preprocess_micros
                .saturating_sub(simplify_before.preprocess_micros),
        };
        let report = JobReport {
            label: job.label.clone(),
            verdict,
            stage,
            detail,
            checksum: worker.checksum,
            traces,
            wall: job_start.elapsed(),
            cache_hit: false,
            reuse,
            simplify,
        };
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.insert(
                key,
                CachedVerdict {
                    verdict: report.verdict,
                    stage: report.stage,
                    detail: report.detail.clone(),
                    checksum: report.checksum,
                },
            );
        }
        observer.job_finished(index, &report);
        report
    }
}

/// The verdict-cache key of `job` under a configuration fingerprint — the
/// single definition shared by the engine's per-job lookup and the shard
/// coordinator's report-to-cache reconstruction, so the two can never drift
/// apart and mis-key (or spuriously conflict on) the same verdict.
///
/// The candidate is hashed in the scalar's parameter-name environment
/// ([`structural_hash_in_env`]): the checksum harness and the refinement
/// check bind arrays by parameter name, so a candidate whose parameters are
/// renamed away from the scalar's is a *different* verification problem and
/// must not share a key with the name-matched spelling.
pub(crate) fn job_cache_key(job: &Job, config_fingerprint: u64) -> CacheKey {
    CacheKey {
        scalar: structural_hash(&job.scalar),
        candidate: structural_hash_in_env(
            &job.candidate,
            job.scalar.params.iter().map(|p| p.name.as_str()),
        ),
        config: config_fingerprint,
    }
}

/// Partitions job indices into scalar-affinity groups: jobs sharing a scalar
/// kernel (by [`structural_hash`]) form one group, groups ordered by first
/// appearance and members in ascending job order. This is the work-unit
/// shape [`pool::parallel_map_grouped`] schedules for incremental reuse.
fn scalar_groups(jobs: &[Job]) -> Vec<Vec<usize>> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut group_of: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for (index, job) in jobs.iter().enumerate() {
        let hash = structural_hash(&job.scalar);
        match group_of.entry(hash) {
            std::collections::hash_map::Entry::Occupied(e) => groups[*e.get()].push(index),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(groups.len());
                groups.push(vec![index]);
            }
        }
    }
    groups
}

fn effort_delta(before: TvSessionStats, after: TvSessionStats) -> (u64, u64) {
    (
        after.conflicts - before.conflicts,
        after.clauses - before.clauses,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_agents::vectorize_correct;
    use lv_cir::parse_function;
    use lv_interp::ChecksumConfig;
    use std::sync::atomic::Ordering;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S000_WRONG: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }";

    fn quick_pipeline() -> PipelineConfig {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn engine_verifies_a_correct_candidate() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
        // The checksum stage ran first and passed; a symbolic stage concluded.
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(!report.traces[0].conclusive);
        assert!(report.traces.last().unwrap().conclusive);
    }

    #[test]
    fn checksum_refutation_short_circuits_the_cascade() {
        let scalar = parse_function(S000).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &wrong);
        assert_eq!(report.verdict, Equivalence::NotEquivalent);
        assert_eq!(report.stage, Stage::Checksum);
        // Early exit: exactly one trace, no symbolic stage ran, no SAT work.
        assert_eq!(report.traces.len(), 1);
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(report.traces[0].conclusive);
        assert_eq!(report.traces[0].conflicts, 0);
    }

    #[test]
    fn batch_reports_preserve_job_order_for_any_thread_count() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let candidate = if i % 2 == 0 {
                    good.clone()
                } else {
                    wrong.clone()
                };
                Job::new(format!("job{}", i), scalar.clone(), candidate)
            })
            .collect();
        let sequential =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(1))
                .run_batch(&jobs);
        let parallel =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(4))
                .run_batch(&jobs);
        assert_eq!(parallel.threads, 4);
        for (s, p) in sequential.jobs.iter().zip(&parallel.jobs) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.verdict, p.verdict);
            assert_eq!(s.stage, p.stage);
            assert_eq!(s.detail, p.detail);
        }
        assert_eq!(sequential.count(Equivalence::Equivalent), 4);
        assert_eq!(sequential.count(Equivalence::NotEquivalent), 4);
    }

    #[test]
    fn checksum_only_cascade_reports_inconclusive_for_plausible() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::checksum_only(ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        }));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Inconclusive);
        assert_eq!(
            report.stage,
            Stage::Checksum,
            "last stage that actually ran"
        );
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
    }

    #[test]
    fn renamed_array_params_are_flagged_but_verdicts_unchanged() {
        let scalar = parse_function(S000).unwrap();
        // Same body, arrays renamed: the harness binds arrays by name, so
        // the checksum comparison is vacuous — the stage must record the
        // mismatch in its trace (and warn) without changing its outcome.
        let renamed = parse_function(
            "void s000(int n, int *x, int *y) { for (int i = 0; i < n; i++) { x[i] = y[i] + 1; } }",
        )
        .unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &renamed);
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(report.traces[0].name_mismatch, "mismatch must be flagged");
        assert_eq!(
            report.checksum,
            Some(ChecksumClass::Plausible),
            "diagnostic only: the vacuous pass is preserved, not reclassified"
        );
        let funnel = crate::FunnelReport::from_jobs(std::slice::from_ref(&report));
        assert_eq!(funnel.stage(Stage::Checksum).unwrap().name_mismatches, 1);
        assert!(
            funnel.render().contains("disjoint arrays"),
            "{}",
            funnel.render()
        );

        // Name-matched candidates are never flagged, on any stage.
        let good = vectorize_correct(&scalar).unwrap();
        let report = engine.check_one(&scalar, &good);
        assert!(report.traces.iter().all(|t| !t.name_mismatch));
        let funnel = crate::FunnelReport::from_jobs(std::slice::from_ref(&report));
        assert!(funnel.stages.iter().all(|s| s.name_mismatches == 0));
        assert!(!funnel.render().contains("disjoint arrays"));
    }

    #[test]
    fn warm_cache_reruns_with_zero_stage_runs_and_identical_verdicts() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs = vec![
            Job::new("good", scalar.clone(), good),
            Job::new("wrong", scalar.clone(), wrong),
        ];
        let cache = Arc::new(VerdictCache::in_memory());
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));

        let cold = engine.run_batch(&jobs);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 2);
        assert!(cold.stage_runs() > 0);
        assert_eq!(cache.len(), 2);

        let warm = engine.run_batch(&jobs);
        assert_eq!(warm.cache_hits, 2);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.stage_runs(), 0, "no checksum or SMT stage may run");
        assert_eq!(warm.total_conflicts(), 0);
        for (c, w) in cold.jobs.iter().zip(&warm.jobs) {
            assert_eq!(c.verdict, w.verdict);
            assert_eq!(c.stage, w.stage);
            assert_eq!(c.detail, w.detail);
            assert_eq!(c.checksum, w.checksum);
            assert!(!c.cache_hit);
            assert!(w.cache_hit);
        }

        // An engine without the cache reports no hit/miss accounting.
        let uncached = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let batch = uncached.run_batch(&jobs);
        assert_eq!((batch.cache_hits, batch.cache_misses), (0, 0));
    }

    #[test]
    fn config_changes_invalidate_cache_keys() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let jobs = vec![Job::new("good", scalar.clone(), good)];
        let cache = Arc::new(VerdictCache::in_memory());
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));
        engine.run_batch(&jobs);
        assert_eq!(cache.len(), 1);

        // A different checksum configuration is a different verification
        // problem: same jobs, fresh misses, second entry.
        let mut other = quick_pipeline();
        other.checksum.trials = 2;
        let engine2 = VerificationEngine::new(EngineConfig::full(other).with_cache(cache.clone()));
        let batch = engine2.run_batch(&jobs);
        assert_eq!(batch.cache_hits, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn observer_sees_every_job_and_stage() {
        use crate::observer::CountingObserver;
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs = vec![
            Job::new("good", scalar.clone(), good),
            Job::new("wrong", scalar.clone(), wrong),
        ];
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(2));
        let counter = CountingObserver::new();
        let batch = engine.run_batch_observed(&jobs, &counter);
        assert_eq!(counter.finished_count(), 2);
        assert_eq!(counter.started.load(Ordering::Relaxed), 2);
        assert_eq!(
            counter.stage_count(),
            batch.stage_runs(),
            "one callback per executed stage"
        );
        assert_eq!(counter.cache_hit_count(), 0);
    }

    #[test]
    fn adaptive_run_tightens_budgets_and_keeps_verdicts() {
        use crate::funnel::AdaptiveBudgetPolicy;
        use crate::observer::NoopObserver;
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(format!("job{}", i), scalar.clone(), good.clone()))
            .collect();
        let policy = AdaptiveBudgetPolicy {
            min_pilot: 2,
            pilot_fraction: 0.3,
            ..AdaptiveBudgetPolicy::default()
        };
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_adaptive(policy));
        let adaptive = engine.run_batch_adaptive(&jobs, &NoopObserver);
        assert_eq!(adaptive.pilot_jobs, 2);
        assert_eq!(adaptive.report.jobs.len(), 6);
        // Tuning only tightens.
        assert!(
            adaptive.tuned.alive2_budget.max_conflicts <= adaptive.base.alive2_budget.max_conflicts
        );
        assert!(
            adaptive.tuned.cunroll_budget.max_conflicts
                <= adaptive.base.cunroll_budget.max_conflicts
        );
        // Identical jobs stay provable under the tuned budgets.
        assert_eq!(adaptive.report.count(Equivalence::Equivalent), 6);
        for (i, report) in adaptive.report.jobs.iter().enumerate() {
            assert_eq!(report.label, format!("job{}", i), "job order is kept");
        }
        // Without a policy, the adaptive entry point degenerates to a plain
        // batch with everything as the pilot.
        let plain = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = plain.run_batch_adaptive(&jobs, &NoopObserver);
        assert_eq!(report.pilot_jobs, 6);
        assert_eq!(
            report.tuned.alive2_budget.max_conflicts,
            report.base.alive2_budget.max_conflicts
        );
    }

    #[test]
    fn default_schedule_fingerprint_is_unchanged_and_overrides_differ() {
        let base = EngineConfig::full(quick_pipeline());
        let explicit_default =
            EngineConfig::full(quick_pipeline()).with_schedule(StageSchedule::algorithm1());
        assert_eq!(
            base.semantic_fingerprint(),
            explicit_default.semantic_fingerprint(),
            "the default schedule must not perturb the fingerprint"
        );

        let reordered = EngineConfig::full(quick_pipeline()).with_schedule(
            StageSchedule::algorithm1()
                .with_override(
                    KernelCategory::DependenceFree,
                    vec![Stage::Splitting, Stage::Alive2, Stage::CUnroll],
                )
                .unwrap(),
        );
        assert_ne!(
            base.semantic_fingerprint(),
            reordered.semantic_fingerprint(),
            "an effective override is a different verification configuration"
        );

        // Against a checksum-only cascade the same override has no effect,
        // so it must not perturb that fingerprint either.
        let checksum_base = EngineConfig::checksum_only(ChecksumConfig::default());
        let checksum_scheduled = EngineConfig {
            schedule: reordered.schedule.clone(),
            ..EngineConfig::checksum_only(ChecksumConfig::default())
        };
        assert_eq!(
            checksum_base.semantic_fingerprint(),
            checksum_scheduled.semantic_fingerprint()
        );
    }

    #[test]
    fn scheduled_engine_reorders_stages_but_keeps_verdicts() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        assert_eq!(
            lv_analysis::categorize(&scalar),
            KernelCategory::DependenceFree
        );
        let jobs = vec![Job::new("s000", scalar.clone(), good)];

        let default_engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let default_run = default_engine.run_batch(&jobs);

        let schedule = StageSchedule::algorithm1()
            .with_override(
                KernelCategory::DependenceFree,
                vec![Stage::Splitting, Stage::CUnroll, Stage::Alive2],
            )
            .unwrap();
        let scheduled_engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_schedule(schedule));
        let scheduled_run = scheduled_engine.run_batch(&jobs);

        let (d, s) = (&default_run.jobs[0], &scheduled_run.jobs[0]);
        assert_eq!(d.verdict, s.verdict, "verdicts are schedule-invariant");
        assert_eq!(d.verdict, Equivalence::Equivalent);
        // The scheduled run really executed a different order: checksum
        // first (pinned), then Splitting before the default's Alive2.
        assert_eq!(s.traces[0].stage, Stage::Checksum);
        assert_eq!(s.traces[1].stage, Stage::Splitting);
        assert_eq!(d.traces[1].stage, Stage::Alive2);
    }

    /// A candidate that is semantically equal to [`S000`] but structurally
    /// different (commuted addition), so the equivalence proof actually
    /// reaches the SAT core instead of simplifying to a constant.
    const S000_COMMUTED: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = 1 + b[i]; } }";
    const S001: &str =
        "void s001(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 3; } }";
    const S001_COMMUTED: &str =
        "void s001(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = 3 + b[i]; } }";

    #[test]
    fn reuse_engine_matches_baseline_verdicts_at_any_thread_count() {
        let s000 = parse_function(S000).unwrap();
        let s001 = parse_function(S001).unwrap();
        // Two scalar groups, interleaved in batch order so scalar-affinity
        // grouping actually reorders work: per scalar a trivial candidate,
        // a commuted one (real SAT work on the warm session), and a wrong
        // one (killed at checksum).
        let jobs = vec![
            Job::new("s000-good", s000.clone(), vectorize_correct(&s000).unwrap()),
            Job::new("s001-good", s001.clone(), vectorize_correct(&s001).unwrap()),
            Job::new(
                "s000-comm",
                s000.clone(),
                parse_function(S000_COMMUTED).unwrap(),
            ),
            Job::new(
                "s001-comm",
                s001.clone(),
                parse_function(S001_COMMUTED).unwrap(),
            ),
            Job::new(
                "s000-wrong",
                s000.clone(),
                parse_function(S000_WRONG).unwrap(),
            ),
        ];
        let baseline =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(1))
                .run_batch(&jobs);
        let reuse1 = VerificationEngine::new(
            EngineConfig::full(quick_pipeline())
                .with_reuse(EngineReuse::full())
                .with_threads(1),
        )
        .run_batch(&jobs);
        let reuse4 = VerificationEngine::new(
            EngineConfig::full(quick_pipeline())
                .with_reuse(EngineReuse::full())
                .with_threads(4),
        )
        .run_batch(&jobs);
        for (b, r) in baseline.jobs.iter().zip(&reuse1.jobs) {
            assert_eq!(b.label, r.label);
            assert_eq!(b.verdict, r.verdict, "{}", r.label);
            assert_eq!(b.stage, r.stage, "{}", r.label);
            assert_eq!(b.checksum, r.checksum, "{}", r.label);
        }
        // Within the reuse engine, the grouped pool pins every group's
        // query sequence, so reports are fully identical across thread
        // counts — details and traces included.
        for (one, four) in reuse1.jobs.iter().zip(&reuse4.jobs) {
            assert_eq!(one.label, four.label);
            assert_eq!(one.verdict, four.verdict);
            assert_eq!(one.stage, four.stage);
            assert_eq!(one.detail, four.detail);
            assert_eq!(one.traces.len(), four.traces.len());
        }
        // The warm sessions were actually exercised.
        assert!(
            reuse1.reuse_totals().assumption_reuses > 0,
            "incremental sessions saw repeat queries: {:?}",
            reuse1.reuse_totals()
        );
        assert!(baseline.reuse_totals().is_zero());
    }

    #[test]
    fn portfolio_escalates_tight_budget_and_keeps_verdicts() {
        let scalar = parse_function(S000).unwrap();
        let commuted = parse_function(S000_COMMUTED).unwrap();
        // The commuted proof needs a few hundred SAT conflicts; a budget of
        // 1024 makes the tightened first attempt (1024/8 = 128) come back
        // Unknown while the full-budget escalation still concludes.
        let mut pipeline = quick_pipeline();
        pipeline.tv.alive2_budget.max_conflicts = 1024;
        let jobs = vec![Job::new("s000-comm", scalar, commuted)];
        let baseline =
            VerificationEngine::new(EngineConfig::full(pipeline.clone())).run_batch(&jobs);
        let portfolio =
            VerificationEngine::new(EngineConfig::full(pipeline).with_reuse(EngineReuse {
                portfolio: true,
                ..EngineReuse::default()
            }))
            .run_batch(&jobs);
        let (b, p) = (&baseline.jobs[0], &portfolio.jobs[0]);
        assert_eq!(b.verdict, p.verdict);
        assert_eq!(b.verdict, Equivalence::Equivalent);
        assert_eq!(b.stage, p.stage);
        let alive2 = p.traces.iter().find(|t| t.stage == Stage::Alive2).unwrap();
        assert!(alive2.escalated, "the tight attempt must have escalated");
        assert_eq!(portfolio.reuse_totals().escalations, 1);
        assert_eq!(baseline.reuse_totals().escalations, 0);
        let funnel = crate::FunnelReport::from_jobs(&portfolio.jobs);
        assert_eq!(funnel.stage(Stage::Alive2).unwrap().escalations, 1);
        assert_eq!(funnel.reuse.escalations, 1);
    }

    #[test]
    fn reuse_fingerprint_tracks_only_the_incremental_layer() {
        let base = EngineConfig::full(quick_pipeline());
        let memo = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            memo: true,
            ..EngineReuse::default()
        });
        let portfolio = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            portfolio: true,
            ..EngineReuse::default()
        });
        let incremental = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            incremental: true,
            ..EngineReuse::default()
        });
        // Memoization is clause-identical and the portfolio verdict-identical
        // by construction: neither changes the verification problem, so
        // neither may invalidate cached verdicts.
        assert_eq!(base.semantic_fingerprint(), memo.semantic_fingerprint());
        assert_eq!(
            base.semantic_fingerprint(),
            portfolio.semantic_fingerprint()
        );
        // Incremental solving reformulates the query, so it is a different
        // configuration.
        assert_ne!(
            base.semantic_fingerprint(),
            incremental.semantic_fingerprint()
        );
    }

    #[test]
    fn simplify_engine_matches_baseline_verdicts() {
        let s000 = parse_function(S000).unwrap();
        let s001 = parse_function(S001).unwrap();
        // The same mixed workload the reuse identity test sweeps: trivial,
        // commuted (real SAT work), and wrong candidates over two scalars.
        let jobs = vec![
            Job::new("s000-good", s000.clone(), vectorize_correct(&s000).unwrap()),
            Job::new("s001-good", s001.clone(), vectorize_correct(&s001).unwrap()),
            Job::new(
                "s000-comm",
                s000.clone(),
                parse_function(S000_COMMUTED).unwrap(),
            ),
            Job::new(
                "s001-comm",
                s001.clone(),
                parse_function(S001_COMMUTED).unwrap(),
            ),
            Job::new(
                "s000-wrong",
                s000.clone(),
                parse_function(S000_WRONG).unwrap(),
            ),
        ];
        let baseline =
            VerificationEngine::new(EngineConfig::full(quick_pipeline())).run_batch(&jobs);
        // Simplification on top of the default (no-reuse) engine, and on top
        // of the full reuse stack — verdict classes and checksum classes must
        // be identical to the plain run in both compositions.
        let simplified = VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_reuse(
            EngineReuse {
                simplify: SimplifyConfig::full(),
                ..EngineReuse::default()
            },
        ))
        .run_batch(&jobs);
        let reuse_simplified = VerificationEngine::new(
            EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
                simplify: SimplifyConfig::full(),
                ..EngineReuse::full()
            }),
        )
        .run_batch(&jobs);
        for arm in [&simplified, &reuse_simplified] {
            for (b, s) in baseline.jobs.iter().zip(&arm.jobs) {
                assert_eq!(b.label, s.label);
                assert_eq!(b.verdict, s.verdict, "{}", s.label);
                assert_eq!(b.stage, s.stage, "{}", s.label);
                assert_eq!(b.checksum, s.checksum, "{}", s.label);
            }
        }
        // Preprocessing actually ran on the simplify arms and stayed
        // entirely off (counters exactly zero) on the baseline.
        assert!(
            !simplified.simplify_totals().is_zero(),
            "simplify must have done work: {:?}",
            simplified.simplify_totals()
        );
        assert!(!reuse_simplified.simplify_totals().is_zero());
        assert!(baseline.simplify_totals().is_zero());
        assert!(simplified.simplify_totals().preprocess_micros > 0);
    }

    #[test]
    fn simplify_fingerprint_tracks_only_enabled_layers() {
        let base = EngineConfig::full(quick_pipeline());
        let off = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            simplify: SimplifyConfig {
                preprocess: false,
                inprocess: false,
            },
            ..EngineReuse::default()
        });
        let preprocess = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            simplify: SimplifyConfig {
                preprocess: true,
                inprocess: false,
            },
            ..EngineReuse::default()
        });
        let inprocess = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            simplify: SimplifyConfig {
                preprocess: false,
                inprocess: true,
            },
            ..EngineReuse::default()
        });
        let full = EngineConfig::full(quick_pipeline()).with_reuse(EngineReuse {
            simplify: SimplifyConfig::full(),
            ..EngineReuse::default()
        });
        // Simplification off is byte-identical to the base configuration:
        // cached verdicts from pre-simplify runs stay valid.
        assert_eq!(base.semantic_fingerprint(), off.semantic_fingerprint());
        // Each enabled layer combination is its own configuration.
        let prints = [
            preprocess.semantic_fingerprint(),
            inprocess.semantic_fingerprint(),
            full.semantic_fingerprint(),
        ];
        for (i, print) in prints.iter().enumerate() {
            assert_ne!(base.semantic_fingerprint(), *print, "arm {}", i);
            for other in &prints[i + 1..] {
                assert_ne!(print, other);
            }
        }
    }
}
