//! The schedule layer: data-driven cascade stage ordering.
//!
//! Algorithm 1 runs a fixed cascade — checksum, then the three symbolic
//! strategies in one hardcoded order — for every kernel. The telemetry
//! funnel shows the kill/conflict profile differs sharply by kernel shape,
//! so a [`StageSchedule`] lets the order be *data*: the default is exactly
//! Algorithm 1, and per-[`KernelCategory`] overrides permute only the
//! **symbolic** stages (the checksum filter is always pinned first — it is
//! orders of magnitude cheaper than any SMT query, so no profile could ever
//! justify demoting it, and pinning it keeps every refutation it produces
//! identical across schedules).
//!
//! Reordering symbolic stages cannot change a *verdict*: each symbolic
//! strategy is sound (a `Conclusive` answer is correct regardless of which
//! stage produced it), so permuting them only changes which stage answers
//! first and how much budget is burned on the way — the property test in
//! `tests/schedule_soundness.rs` pins this over every permutation. It *does*
//! change the concluding stage and the telemetry, which is why the resolved
//! per-category orders participate in
//! [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint)
//! (a reordered run caches under its own key) while the default schedule
//! contributes nothing and keeps fingerprints bit-identical to the
//! pre-schedule engine.
//!
//! [`StageSchedule::from_profile`] derives the overrides from a persisted
//! [`CrossRunProfile`](crate::profile::CrossRunProfile): per category, the
//! symbolic stages are ordered by observed kill efficiency (verdicts
//! produced per microsecond of stage wall time, compared exactly by
//! cross-multiplication so the derivation is deterministic), with the
//! default order as the tie-break and categories without any conclusive
//! evidence left untouched.

use crate::pipeline::Stage;
use lv_analysis::KernelCategory;
use lv_cir::hash::Fnv64;
use std::collections::BTreeMap;
use std::fmt;

/// The symbolic stages, in Algorithm 1's default order.
pub const SYMBOLIC_STAGES: [Stage; 3] = [Stage::Alive2, Stage::CUnroll, Stage::Splitting];

/// A per-kernel-category cascade stage ordering.
///
/// The default ([`StageSchedule::algorithm1`]) has no overrides and resolves
/// every category to the configured cascade unchanged. An override is a full
/// permutation of [`SYMBOLIC_STAGES`]; resolving it against a cascade
/// rewrites the cascade's symbolic positions in the override's order and
/// leaves every other stage (the checksum filter) where it was.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageSchedule {
    overrides: BTreeMap<KernelCategory, Vec<Stage>>,
}

impl StageSchedule {
    /// The default schedule: Algorithm 1's order for every category.
    pub fn algorithm1() -> StageSchedule {
        StageSchedule::default()
    }

    /// `true` when no category overrides the default order.
    pub fn is_default(&self) -> bool {
        self.overrides.is_empty()
    }

    /// Adds (or replaces) one category's symbolic-stage order. The order
    /// must be a permutation of [`SYMBOLIC_STAGES`] — the checksum stage is
    /// pinned and cannot appear.
    pub fn with_override(
        mut self,
        category: KernelCategory,
        order: Vec<Stage>,
    ) -> Result<StageSchedule, String> {
        validate_symbolic_order(&order)?;
        self.overrides.insert(category, order);
        Ok(self)
    }

    /// The symbolic-stage order configured for `category`, if any.
    pub fn override_for(&self, category: KernelCategory) -> Option<&[Stage]> {
        self.overrides.get(&category).map(Vec::as_slice)
    }

    /// All configured overrides, in stable category order.
    pub fn overrides(&self) -> impl Iterator<Item = (KernelCategory, &[Stage])> {
        self.overrides.iter().map(|(c, o)| (*c, o.as_slice()))
    }

    /// Resolves `category`'s stage order against a concrete cascade: the
    /// cascade's symbolic positions are filled in the override's order
    /// (restricted to the stages the cascade actually contains), every other
    /// stage keeps its position. Without an override the cascade is returned
    /// unchanged — a checksum-only cascade is therefore never affected, and
    /// neither is a cascade that repeats a symbolic stage (the public
    /// [`EngineConfig::cascade`](crate::EngineConfig) field permits that,
    /// and a repeated stage has no unambiguous reordering).
    pub fn resolve(&self, cascade: &[Stage], category: KernelCategory) -> Vec<Stage> {
        let Some(order) = self.overrides.get(&category) else {
            return cascade.to_vec();
        };
        let slots = cascade
            .iter()
            .filter(|stage| SYMBOLIC_STAGES.contains(stage))
            .count();
        let preferred: Vec<Stage> = order
            .iter()
            .copied()
            .filter(|stage| cascade.contains(stage))
            .collect();
        if preferred.len() != slots {
            return cascade.to_vec();
        }
        let mut preferred = preferred.into_iter();
        cascade
            .iter()
            .map(|&stage| {
                if SYMBOLIC_STAGES.contains(&stage) {
                    preferred.next().expect("counted one per symbolic slot")
                } else {
                    stage
                }
            })
            .collect()
    }

    /// The categories whose resolved order differs from the plain cascade,
    /// with their resolved orders — the *effective* overrides. This is what
    /// the configuration fingerprint covers and what the engine precomputes:
    /// an override that cannot change execution (e.g. against a
    /// checksum-only cascade) contributes nothing, keeping the fingerprint
    /// equal to the default schedule's.
    pub fn resolved_overrides(&self, cascade: &[Stage]) -> Vec<(KernelCategory, Vec<Stage>)> {
        self.overrides
            .keys()
            .filter_map(|&category| {
                let resolved = self.resolve(cascade, category);
                (resolved != cascade).then_some((category, resolved))
            })
            .collect()
    }

    /// Hashes the effective overrides into a configuration fingerprint.
    /// A default schedule (or one with no effective overrides) writes
    /// nothing, so such configurations fingerprint bit-identically to the
    /// pre-schedule engine.
    pub(crate) fn fingerprint_into(&self, cascade: &[Stage], fnv: &mut Fnv64) {
        let resolved = self.resolved_overrides(cascade);
        if resolved.is_empty() {
            return;
        }
        fnv.write_u64(resolved.len() as u64);
        for (category, order) in &resolved {
            fnv.write_u8(category.fingerprint_byte());
            fnv.write_u64(order.len() as u64);
            for stage in order {
                fnv.write_u8(stage_fingerprint_byte(*stage));
            }
        }
    }

    /// Derives a schedule from a persisted cross-run profile: per category,
    /// symbolic stages are ordered by descending observed kill efficiency
    /// (see the [module docs](self)); categories with no conclusive symbolic
    /// evidence keep the default order.
    pub fn from_profile(profile: &crate::profile::CrossRunProfile) -> StageSchedule {
        let mut schedule = StageSchedule::algorithm1();
        for category in KernelCategory::all() {
            let cells: Vec<crate::profile::ProfileCell> = SYMBOLIC_STAGES
                .iter()
                .map(|&stage| profile.cell(category, stage).copied().unwrap_or_default())
                .collect();
            if cells.iter().all(|c| c.killed == 0) {
                continue;
            }
            let mut order: Vec<usize> = (0..SYMBOLIC_STAGES.len()).collect();
            // Descending efficiency; `sort_by` is stable, so ties keep the
            // default order.
            order.sort_by(|&a, &b| efficiency_cmp(&cells[b], &cells[a]));
            let derived: Vec<Stage> = order.iter().map(|&i| SYMBOLIC_STAGES[i]).collect();
            if derived != SYMBOLIC_STAGES {
                schedule = schedule
                    .with_override(category, derived)
                    .expect("a permutation of SYMBOLIC_STAGES is always valid");
            }
        }
        schedule
    }

    /// Renders the schedule as its stable spec string:
    /// `category=stage,stage,stage` clauses joined by `;`, categories in
    /// stable order. The default schedule renders as `default`.
    pub fn spec(&self) -> String {
        if self.is_default() {
            return "default".to_string();
        }
        self.overrides
            .iter()
            .map(|(category, order)| {
                format!(
                    "{}={}",
                    category.tag(),
                    order
                        .iter()
                        .map(|s| stage_spec_tag(*s))
                        .collect::<Vec<_>>()
                        .join(",")
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    }

    /// Parses [`StageSchedule::spec`] output (`default`, or
    /// `category=stage,stage,stage[;...]`).
    pub fn parse_spec(spec: &str) -> Result<StageSchedule, String> {
        if spec == "default" {
            return Ok(StageSchedule::algorithm1());
        }
        let mut schedule = StageSchedule::algorithm1();
        for clause in spec.split(';').filter(|c| !c.is_empty()) {
            let (category, order) = clause
                .split_once('=')
                .ok_or_else(|| format!("schedule clause `{}` has no `=`", clause))?;
            let category = KernelCategory::from_tag(category.trim())?;
            let order = order
                .split(',')
                .map(|tag| parse_stage_spec_tag(tag.trim()))
                .collect::<Result<Vec<_>, _>>()?;
            schedule = schedule.with_override(category, order)?;
        }
        Ok(schedule)
    }
}

impl fmt::Display for StageSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.spec())
    }
}

/// Compares two profile cells by kill efficiency (kills per microsecond of
/// stage wall time), exactly: `a.killed / a.wall` vs `b.killed / b.wall` by
/// cross-multiplication in `u128`, with raw kill count as the secondary key.
/// Zero wall time is clamped to one microsecond so an unmeasurably fast
/// killer still compares finitely (and deterministically).
fn efficiency_cmp(
    a: &crate::profile::ProfileCell,
    b: &crate::profile::ProfileCell,
) -> std::cmp::Ordering {
    let left = a.killed as u128 * u128::from(b.wall_us.max(1));
    let right = b.killed as u128 * u128::from(a.wall_us.max(1));
    left.cmp(&right).then(a.killed.cmp(&b.killed))
}

fn validate_symbolic_order(order: &[Stage]) -> Result<(), String> {
    if order.len() != SYMBOLIC_STAGES.len() {
        return Err(format!(
            "a schedule override must order all {} symbolic stages, got {}",
            SYMBOLIC_STAGES.len(),
            order.len()
        ));
    }
    for stage in SYMBOLIC_STAGES {
        match order.iter().filter(|&&s| s == stage).count() {
            1 => {}
            0 => return Err(format!("schedule override is missing `{}`", stage.label())),
            _ => return Err(format!("schedule override repeats `{}`", stage.label())),
        }
    }
    debug_assert!(!order.contains(&Stage::Checksum), "covered by the counts");
    Ok(())
}

/// Stable one-byte stage codes for fingerprints — the same values
/// [`EngineConfig::semantic_fingerprint`](crate::EngineConfig::semantic_fingerprint)
/// has always used for the cascade list.
pub(crate) fn stage_fingerprint_byte(stage: Stage) -> u8 {
    match stage {
        Stage::Checksum => 1,
        Stage::Alive2 => 2,
        Stage::CUnroll => 3,
        Stage::Splitting => 4,
    }
}

/// Stable spec/CLI tag for a stage (matches the cache file's stage tags).
fn stage_spec_tag(stage: Stage) -> &'static str {
    match stage {
        Stage::Checksum => "checksum",
        Stage::Alive2 => "alive2",
        Stage::CUnroll => "cunroll",
        Stage::Splitting => "splitting",
    }
}

fn parse_stage_spec_tag(tag: &str) -> Result<Stage, String> {
    match tag {
        "checksum" => Ok(Stage::Checksum),
        "alive2" => Ok(Stage::Alive2),
        "cunroll" => Ok(Stage::CUnroll),
        "splitting" => Ok(Stage::Splitting),
        other => Err(format!("unknown stage tag `{}`", other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: [Stage; 4] = [
        Stage::Checksum,
        Stage::Alive2,
        Stage::CUnroll,
        Stage::Splitting,
    ];

    #[test]
    fn default_schedule_resolves_to_the_cascade_unchanged() {
        let schedule = StageSchedule::algorithm1();
        assert!(schedule.is_default());
        for category in KernelCategory::all() {
            assert_eq!(schedule.resolve(&FULL, category), FULL.to_vec());
        }
        assert!(schedule.resolved_overrides(&FULL).is_empty());
        assert_eq!(schedule.spec(), "default");
    }

    #[test]
    fn overrides_permute_only_symbolic_stages() {
        let schedule = StageSchedule::algorithm1()
            .with_override(
                KernelCategory::DependenceFree,
                vec![Stage::Splitting, Stage::Alive2, Stage::CUnroll],
            )
            .unwrap();
        assert_eq!(
            schedule.resolve(&FULL, KernelCategory::DependenceFree),
            vec![
                Stage::Checksum,
                Stage::Splitting,
                Stage::Alive2,
                Stage::CUnroll
            ],
            "checksum stays pinned first"
        );
        assert_eq!(
            schedule.resolve(&FULL, KernelCategory::Reduction),
            FULL.to_vec(),
            "unrelated categories keep the default"
        );
        // Against a checksum-only cascade the override has no effect — and
        // therefore no fingerprint contribution either.
        let checksum_only = [Stage::Checksum];
        assert_eq!(
            schedule.resolve(&checksum_only, KernelCategory::DependenceFree),
            checksum_only.to_vec()
        );
        assert!(schedule.resolved_overrides(&checksum_only).is_empty());
        assert_eq!(schedule.resolved_overrides(&FULL).len(), 1);
    }

    #[test]
    fn cascades_with_repeated_symbolic_stages_are_left_untouched() {
        // `EngineConfig::cascade` is public and permits duplicates; an
        // override cannot reorder such a cascade unambiguously, so it must
        // resolve to the cascade unchanged (and contribute no fingerprint)
        // rather than panic.
        let schedule = StageSchedule::algorithm1()
            .with_override(
                KernelCategory::Other,
                vec![Stage::Splitting, Stage::CUnroll, Stage::Alive2],
            )
            .unwrap();
        let doubled = [Stage::Checksum, Stage::Alive2, Stage::Alive2];
        assert_eq!(
            schedule.resolve(&doubled, KernelCategory::Other),
            doubled.to_vec()
        );
        assert!(schedule.resolved_overrides(&doubled).is_empty());
    }

    #[test]
    fn invalid_overrides_are_rejected() {
        for bad in [
            vec![Stage::Alive2, Stage::CUnroll],                  // too short
            vec![Stage::Alive2, Stage::Alive2, Stage::Splitting], // repeated
            vec![Stage::Checksum, Stage::Alive2, Stage::CUnroll], // checksum is pinned
        ] {
            assert!(
                StageSchedule::algorithm1()
                    .with_override(KernelCategory::Other, bad.clone())
                    .is_err(),
                "{:?} must be rejected",
                bad
            );
        }
    }

    #[test]
    fn spec_round_trips() {
        let schedule = StageSchedule::algorithm1()
            .with_override(
                KernelCategory::Reduction,
                vec![Stage::CUnroll, Stage::Alive2, Stage::Splitting],
            )
            .unwrap()
            .with_override(
                KernelCategory::Conditional,
                vec![Stage::Splitting, Stage::CUnroll, Stage::Alive2],
            )
            .unwrap();
        let spec = schedule.spec();
        assert_eq!(
            spec,
            "reduction=cunroll,alive2,splitting;conditional=splitting,cunroll,alive2"
        );
        assert_eq!(StageSchedule::parse_spec(&spec).unwrap(), schedule);
        assert_eq!(
            StageSchedule::parse_spec("default").unwrap(),
            StageSchedule::algorithm1()
        );
        assert!(StageSchedule::parse_spec("reduction=alive2").is_err());
        assert!(StageSchedule::parse_spec("nope=alive2,cunroll,splitting").is_err());
        assert!(StageSchedule::parse_spec("reduction:alive2,cunroll,splitting").is_err());
    }

    #[test]
    fn efficiency_ordering_is_deterministic() {
        use crate::profile::ProfileCell;
        let fast_killer = ProfileCell {
            entered: 10,
            killed: 8,
            wall_us: 100,
            ..ProfileCell::default()
        };
        let slow_killer = ProfileCell {
            entered: 10,
            killed: 8,
            wall_us: 10_000,
            ..ProfileCell::default()
        };
        let never_killed = ProfileCell {
            entered: 10,
            killed: 0,
            wall_us: 1,
            ..ProfileCell::default()
        };
        assert_eq!(
            efficiency_cmp(&fast_killer, &slow_killer),
            std::cmp::Ordering::Greater
        );
        assert_eq!(
            efficiency_cmp(&never_killed, &slow_killer),
            std::cmp::Ordering::Less
        );
        assert_eq!(
            efficiency_cmp(&fast_killer, &fast_killer),
            std::cmp::Ordering::Equal
        );
    }
}
