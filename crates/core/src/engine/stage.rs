//! The stage layer: one cascade stage as a [`VerificationStrategy`].
//!
//! A stage knows how to check one `(scalar, candidate)` pair and nothing
//! about ordering, scheduling, or parallelism — those live in the
//! [`schedule`](super::schedule) and [`pool`](super::pool) layers.
//! Implementations exist for the checksum filter (wrapping
//! [`lv_interp::ChecksumFilter`]) and for each [`lv_tv::SymbolicStrategy`];
//! the trait is public so alternative cascades (e.g. a future fuzzing stage)
//! can plug in without touching the engine.

use crate::pipeline::{Equivalence, Stage};
use lv_cir::ast::Function;
use lv_interp::{ChecksumClass, ChecksumFilter, ChecksumOutcome};
use lv_tv::{SymbolicStrategy, TvConfig, TvSession};

/// Per-worker mutable state threaded through every strategy call.
///
/// One value lives per worker thread for the whole batch; strategies use it
/// to reuse expensive resources (the SMT session) and to report side-band
/// facts (the checksum classification) without widening their return type.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// The worker's reusable SMT session.
    pub session: TvSession,
    /// Checksum classification of the current job, recorded by the checksum
    /// strategy so reports can distinguish "cannot compile" from "refuted".
    pub checksum: Option<ChecksumClass>,
    /// Set by the checksum strategy when the candidate's array parameter
    /// names differ from the scalar's — the harness binds arrays by name, so
    /// such a candidate is tested on disjoint arrays (see
    /// [`lv_interp::array_param_names_mismatch`]). Telemetry only; the
    /// verdict is unchanged.
    pub name_mismatch: bool,
}

/// What one strategy concluded about one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyOutcome {
    /// The cascade stops here with this verdict.
    Conclusive {
        /// The final verdict.
        verdict: Equivalence,
        /// Counterexample, mismatch, or failure description.
        detail: String,
    },
    /// This strategy could not decide; the cascade continues.
    Continue {
        /// Why the strategy passed (checksum: "plausible"; symbolic: the
        /// inconclusive reason, reported if no later stage concludes).
        reason: String,
    },
}

/// One stage of the verification cascade.
pub trait VerificationStrategy: Send + Sync {
    /// The Algorithm 1 stage this strategy implements, for reports.
    fn stage(&self) -> Stage;

    /// Checks one candidate against its scalar kernel.
    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome;
}

/// Algorithm 1 line 2: checksum testing as a cascade stage.
#[derive(Debug, Clone, Default)]
pub struct ChecksumStage {
    filter: ChecksumFilter,
}

impl ChecksumStage {
    /// A stage running the given checksum harness configuration.
    pub fn new(config: lv_interp::ChecksumConfig) -> ChecksumStage {
        ChecksumStage {
            filter: ChecksumFilter::new(config),
        }
    }
}

impl VerificationStrategy for ChecksumStage {
    fn stage(&self) -> Stage {
        Stage::Checksum
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        if lv_interp::array_param_names_mismatch(scalar, candidate) {
            // Diagnostic only: the harness binds arrays by parameter name, so
            // this candidate runs on disjoint arrays and the comparison is
            // vacuous. The flag surfaces in the job's checksum StageTrace and
            // the funnel; the behavioral fix (positional binding or a
            // CannotCompile classification) shifts Table 2 counts and is a
            // separate change (see ROADMAP).
            worker.name_mismatch = true;
            eprintln!(
                "warning: candidate `{}` renames array parameters away from the scalar's; \
                 the checksum harness binds arrays by name, so the candidate was tested on \
                 disjoint arrays (verdict unchanged)",
                candidate.name
            );
        }
        let report = self.filter.run(scalar, candidate);
        worker.checksum = Some(report.outcome.class());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { reason, .. } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: reason,
            },
            ChecksumOutcome::CannotCompile { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: format!("cannot compile: {}", error),
            },
            ChecksumOutcome::ScalarExecutionFailed { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::Inconclusive,
                detail: format!("scalar kernel failed to execute: {}", error),
            },
            ChecksumOutcome::Plausible => StrategyOutcome::Continue {
                reason: String::new(),
            },
        }
    }
}

/// Algorithm 1 lines 6–13: one symbolic strategy as a cascade stage.
#[derive(Debug, Clone)]
pub struct SymbolicStage {
    strategy: SymbolicStrategy,
    config: TvConfig,
}

impl SymbolicStage {
    /// A stage running `strategy` under `config`.
    pub fn new(strategy: SymbolicStrategy, config: TvConfig) -> SymbolicStage {
        SymbolicStage { strategy, config }
    }
}

impl VerificationStrategy for SymbolicStage {
    fn stage(&self) -> Stage {
        match self.strategy {
            SymbolicStrategy::Alive2Unroll => Stage::Alive2,
            SymbolicStrategy::CUnroll => Stage::CUnroll,
            SymbolicStrategy::SpatialSplitting => Stage::Splitting,
        }
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        match self
            .strategy
            .run(scalar, candidate, &self.config, &mut worker.session)
        {
            lv_tv::TvVerdict::Equivalent => StrategyOutcome::Conclusive {
                verdict: Equivalence::Equivalent,
                detail: String::new(),
            },
            lv_tv::TvVerdict::NotEquivalent { counterexample } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: counterexample,
            },
            lv_tv::TvVerdict::Inconclusive { reason } => StrategyOutcome::Continue { reason },
        }
    }
}
