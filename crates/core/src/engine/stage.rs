//! The stage layer: one cascade stage as a [`VerificationStrategy`].
//!
//! A stage knows how to check one `(scalar, candidate)` pair and nothing
//! about ordering, scheduling, or parallelism — those live in the
//! [`schedule`](super::schedule) and [`pool`](super::pool) layers.
//! Implementations exist for the checksum filter (wrapping
//! [`lv_interp::ChecksumFilter`]), for each [`lv_tv::SymbolicStrategy`], and
//! for the budget-racing [`PortfolioStage`] wrapper (tight attempt first,
//! full-budget escalation on Unknown); the trait is public so alternative
//! cascades (e.g. a future fuzzing stage) can plug in without touching the
//! engine.

use crate::pipeline::{Equivalence, Stage};
use lv_cir::ast::Function;
use lv_interp::{ChecksumClass, ChecksumFilter, ChecksumOutcome};
use lv_tv::{SolverBudget, SymbolicStrategy, TvConfig, TvReuse, TvSession};

/// Per-worker mutable state threaded through every strategy call.
///
/// One value lives per worker thread for the whole batch; strategies use it
/// to reuse expensive resources (the SMT session) and to report side-band
/// facts (the checksum classification) without widening their return type.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// The worker's reusable SMT session.
    pub session: TvSession,
    /// Checksum classification of the current job, recorded by the checksum
    /// strategy so reports can distinguish "cannot compile" from "refuted".
    pub checksum: Option<ChecksumClass>,
    /// Set by the checksum strategy when the candidate's array parameter
    /// names differ from the scalar's — the harness binds arrays by name, so
    /// such a candidate is tested on disjoint arrays (see
    /// [`lv_interp::array_param_names_mismatch`]). Telemetry only; the
    /// verdict is unchanged.
    pub name_mismatch: bool,
    /// Set by a [`PortfolioStage`] when the tightened-budget attempt was
    /// inconclusive and the stage re-ran under the full budget. Reset by the
    /// engine before every stage; telemetry only.
    pub escalated: bool,
}

impl WorkerState {
    /// A worker whose SMT session runs with the given reuse mechanisms.
    pub fn with_reuse(reuse: TvReuse) -> WorkerState {
        WorkerState {
            session: TvSession::with_reuse(reuse),
            ..WorkerState::default()
        }
    }
}

/// What one strategy concluded about one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyOutcome {
    /// The cascade stops here with this verdict.
    Conclusive {
        /// The final verdict.
        verdict: Equivalence,
        /// Counterexample, mismatch, or failure description.
        detail: String,
    },
    /// This strategy could not decide; the cascade continues.
    Continue {
        /// Why the strategy passed (checksum: "plausible"; symbolic: the
        /// inconclusive reason, reported if no later stage concludes).
        reason: String,
    },
}

/// One stage of the verification cascade.
pub trait VerificationStrategy: Send + Sync {
    /// The Algorithm 1 stage this strategy implements, for reports.
    fn stage(&self) -> Stage;

    /// Checks one candidate against its scalar kernel.
    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome;
}

/// Algorithm 1 line 2: checksum testing as a cascade stage.
#[derive(Debug, Clone, Default)]
pub struct ChecksumStage {
    filter: ChecksumFilter,
}

impl ChecksumStage {
    /// A stage running the given checksum harness configuration.
    pub fn new(config: lv_interp::ChecksumConfig) -> ChecksumStage {
        ChecksumStage {
            filter: ChecksumFilter::new(config),
        }
    }
}

impl VerificationStrategy for ChecksumStage {
    fn stage(&self) -> Stage {
        Stage::Checksum
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        if lv_interp::array_param_names_mismatch(scalar, candidate) {
            // Diagnostic only: the harness binds arrays by parameter name, so
            // this candidate runs on disjoint arrays and the comparison is
            // vacuous. The flag surfaces in the job's checksum StageTrace and
            // the funnel; the behavioral fix (positional binding or a
            // CannotCompile classification) shifts Table 2 counts and is a
            // separate change (see ROADMAP).
            worker.name_mismatch = true;
            eprintln!(
                "warning: candidate `{}` renames array parameters away from the scalar's; \
                 the checksum harness binds arrays by name, so the candidate was tested on \
                 disjoint arrays (verdict unchanged)",
                candidate.name
            );
        }
        let report = self.filter.run(scalar, candidate);
        worker.checksum = Some(report.outcome.class());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { reason, .. } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: reason,
            },
            ChecksumOutcome::CannotCompile { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: format!("cannot compile: {}", error),
            },
            ChecksumOutcome::ScalarExecutionFailed { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::Inconclusive,
                detail: format!("scalar kernel failed to execute: {}", error),
            },
            ChecksumOutcome::Plausible => StrategyOutcome::Continue {
                reason: String::new(),
            },
        }
    }
}

/// Algorithm 1 lines 6–13: one symbolic strategy as a cascade stage.
#[derive(Debug, Clone)]
pub struct SymbolicStage {
    strategy: SymbolicStrategy,
    config: TvConfig,
}

impl SymbolicStage {
    /// A stage running `strategy` under `config`.
    pub fn new(strategy: SymbolicStrategy, config: TvConfig) -> SymbolicStage {
        SymbolicStage { strategy, config }
    }
}

impl VerificationStrategy for SymbolicStage {
    fn stage(&self) -> Stage {
        match self.strategy {
            SymbolicStrategy::Alive2Unroll => Stage::Alive2,
            SymbolicStrategy::CUnroll => Stage::CUnroll,
            SymbolicStrategy::SpatialSplitting => Stage::Splitting,
        }
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        match self
            .strategy
            .run(scalar, candidate, &self.config, &mut worker.session)
        {
            lv_tv::TvVerdict::Equivalent => StrategyOutcome::Conclusive {
                verdict: Equivalence::Equivalent,
                detail: String::new(),
            },
            lv_tv::TvVerdict::NotEquivalent { counterexample } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: counterexample,
            },
            lv_tv::TvVerdict::Inconclusive { reason } => StrategyOutcome::Continue { reason },
        }
    }
}

/// The default conflict-budget divisor for [`PortfolioStage`]'s first
/// attempt: most conclusive queries need orders of magnitude fewer conflicts
/// than the stage budget allows (the funnel histograms are heavily
/// left-weighted), so racing a budget tightened by this factor wins on
/// typical workloads while the escalation path keeps hard queries whole.
pub const PORTFOLIO_TIGHT_DIVISOR: u64 = 8;

/// A symbolic stage run as a two-step budget portfolio: first under a
/// conflict budget tightened by [`PORTFOLIO_TIGHT_DIVISOR`], then — only if
/// that attempt is inconclusive — under the full configured budget.
///
/// Verdicts are identical to a plain [`SymbolicStage`] under the full
/// budget: CDCL search is deterministic, so an attempt that concludes within
/// the tight budget took exactly the search path the full-budget run would
/// have taken, and an attempt that exhausts it escalates to precisely the
/// full-budget run (whose result, conclusive or not, is the stage's). The
/// clause budget is *not* tightened — bit-blasting happens before any
/// conflict is spent, so a tight clause cap would only force a pointless
/// re-blast. Escalations are flagged on [`WorkerState::escalated`] for the
/// job's [`StageTrace`](crate::StageTrace).
#[derive(Debug, Clone)]
pub struct PortfolioStage {
    inner: SymbolicStage,
    tight: SymbolicStage,
}

impl PortfolioStage {
    /// A portfolio over `strategy` with the tight attempt derived from
    /// `config` by [`PORTFOLIO_TIGHT_DIVISOR`].
    pub fn new(strategy: SymbolicStrategy, config: TvConfig) -> PortfolioStage {
        let mut tight_config = config.clone();
        let tighten = |budget: &mut SolverBudget| {
            budget.max_conflicts = (budget.max_conflicts / PORTFOLIO_TIGHT_DIVISOR).max(1);
        };
        match strategy {
            SymbolicStrategy::Alive2Unroll => tighten(&mut tight_config.alive2_budget),
            SymbolicStrategy::CUnroll => tighten(&mut tight_config.cunroll_budget),
            SymbolicStrategy::SpatialSplitting => tighten(&mut tight_config.spatial_budget),
        }
        PortfolioStage {
            inner: SymbolicStage::new(strategy, config),
            tight: SymbolicStage::new(strategy, tight_config),
        }
    }
}

impl VerificationStrategy for PortfolioStage {
    fn stage(&self) -> Stage {
        self.inner.stage()
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        match self.tight.verify(scalar, candidate, worker) {
            StrategyOutcome::Continue { .. } => {
                worker.escalated = true;
                self.inner.verify(scalar, candidate, worker)
            }
            conclusive => conclusive,
        }
    }
}
