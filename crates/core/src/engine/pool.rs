//! The pool layer: the atomic work-queue worker pool.
//!
//! Workers claim item indices from a shared atomic cursor, each carrying
//! per-worker state (the engine's reusable SMT session; `()` for the plain
//! map). Ordering of *results* is by item index regardless of which worker
//! ran what, which is how every batch stays bit-identical across thread
//! counts. Nothing in this layer knows what a verification stage is — the
//! [stage](super::stage) and [schedule](super::schedule) layers are plugged
//! in by [`VerificationEngine`](super::VerificationEngine).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Maps `f` over `items` on a scoped worker pool, preserving order.
///
/// The engine's work-queue pattern as a standalone helper, used by drivers
/// whose per-item work is not a verification (e.g. Figure 6's cost-model
/// evaluations).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(
        resolve_threads(threads, items.len()),
        items,
        || (),
        |_, item, _| f(item),
    )
}

/// Resolves a configured worker count: `0` means one per available CPU, and
/// the result is clamped to `[1, items]` so idle workers are never spawned.
/// Public because it is also the natural work-stealing chunk size — one
/// claimed chunk keeps one worker pool exactly busy.
pub fn resolve_threads(configured: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if configured == 0 { hw } else { configured };
    threads.clamp(1, items.max(1))
}

/// The work-queue core shared by [`parallel_map`] and
/// [`VerificationEngine::run_batch`](super::VerificationEngine::run_batch):
/// workers claim item indices from an atomic cursor, each carrying
/// per-worker state built by `init`. The claimed index is passed to `f` so
/// the engine can label observer events with the job's position in the
/// batch.
///
/// `threads` must already be resolved and clamped by the caller.
pub(crate) fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item, &mut state))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let value = f(index, item, &mut state);
                    *results[index].lock().unwrap() = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index was claimed by a worker")
        })
        .collect()
}

/// [`parallel_map_with`] with *scalar affinity*: `groups` partitions the
/// item indices, workers claim whole groups from the atomic cursor, and a
/// group's members run on one worker in ascending index order.
///
/// This is the scheduling contract the incremental-reuse engine needs: all
/// jobs sharing a scalar kernel run consecutively on one session, so the
/// warm per-scalar SMT state actually gets hit — and because the whole group
/// is claimed atomically and its members run in a fixed order, the sequence
/// of queries each warm session sees (hence every verdict) is identical at
/// any thread count. Results are still returned in item order.
///
/// Every item index must appear in exactly one group; `threads` must already
/// be resolved by the caller.
pub(crate) fn parallel_map_grouped<T, R, S, I, F>(
    threads: usize,
    items: &[T],
    groups: &[Vec<usize>],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    debug_assert_eq!(
        groups.iter().map(Vec::len).sum::<usize>(),
        items.len(),
        "groups must partition the items"
    );
    if threads <= 1 {
        let mut state = init();
        let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for group in groups {
            for &index in group {
                results[index] = Some(f(index, &items[index], &mut state));
            }
        }
        return results
            .into_iter()
            .map(|slot| slot.expect("every item index appears in a group"))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let group_index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(group_index) else {
                        break;
                    };
                    for &index in group {
                        let value = f(index, &items[index], &mut state);
                        *results[index].lock().unwrap() = Some(value);
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index appears in a group")
        })
        .collect()
}

struct ChannelState<T> {
    queue: VecDeque<(usize, T)>,
    producers: usize,
}

struct Channel<T> {
    state: Mutex<ChannelState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// The producing half of a bounded streaming job channel (see
/// [`job_channel`]): generator threads [`push`](JobProducer::push) indexed
/// items as they are produced and the bound applies backpressure instead of
/// letting the queue materialize the whole batch.
///
/// Cloning adds a producer; the channel closes when the last producer
/// handle drops (including by panic unwind), after which consumers drain
/// the remaining items and then see end-of-stream.
pub struct JobProducer<T> {
    channel: Arc<Channel<T>>,
}

/// The consuming half of a bounded streaming job channel: the engine's
/// streaming intake. Workers share one `&JobSource` and claim `(index,
/// item)` pairs in arrival order; the index is the item's position in the
/// logical batch, which is how results reassemble in job order no matter
/// which worker ran what.
pub struct JobSource<T> {
    channel: Arc<Channel<T>>,
}

/// Creates a bounded producer/consumer job channel with room for
/// `capacity` in-flight items (clamped to at least 1).
pub fn job_channel<T>(capacity: usize) -> (JobProducer<T>, JobSource<T>) {
    let channel = Arc::new(Channel {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            producers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity: capacity.max(1),
    });
    (
        JobProducer {
            channel: Arc::clone(&channel),
        },
        JobSource { channel },
    )
}

impl<T> JobProducer<T> {
    /// Enqueues one item under its batch index, blocking while the channel
    /// is at capacity (backpressure). Indices must be unique across the
    /// stream; the consumer side panics on duplicates when reassembling.
    pub fn push(&self, index: usize, item: T) {
        let mut state = self.channel.state.lock().unwrap();
        while state.queue.len() >= self.channel.capacity {
            state = self.channel.not_full.wait(state).unwrap();
        }
        state.queue.push_back((index, item));
        drop(state);
        self.channel.not_empty.notify_one();
    }
}

impl<T> Clone for JobProducer<T> {
    fn clone(&self) -> JobProducer<T> {
        self.channel.state.lock().unwrap().producers += 1;
        JobProducer {
            channel: Arc::clone(&self.channel),
        }
    }
}

impl<T> Drop for JobProducer<T> {
    fn drop(&mut self) {
        let mut state = self.channel.state.lock().unwrap();
        state.producers -= 1;
        let closed = state.producers == 0;
        drop(state);
        if closed {
            // Wake every blocked consumer so it can observe end-of-stream.
            self.channel.not_empty.notify_all();
        }
    }
}

impl<T> JobSource<T> {
    /// Dequeues the next `(index, item)` pair, blocking while the channel
    /// is empty but still open. Returns `None` once the channel is closed
    /// (every producer dropped) *and* drained.
    pub fn next(&self) -> Option<(usize, T)> {
        let mut state = self.channel.state.lock().unwrap();
        loop {
            if let Some(pair) = state.queue.pop_front() {
                drop(state);
                self.channel.not_full.notify_one();
                return Some(pair);
            }
            if state.producers == 0 {
                return None;
            }
            state = self.channel.not_empty.wait(state).unwrap();
        }
    }

    /// The number of items currently queued (a live backlog snapshot; it
    /// may be stale by the time the caller acts on it).
    pub fn backlog(&self) -> usize {
        self.channel.state.lock().unwrap().queue.len()
    }
}

impl<T> std::fmt::Debug for JobProducer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobProducer")
    }
}

impl<T> std::fmt::Debug for JobSource<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobSource")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn job_channel_delivers_everything_across_threads() {
        let (producer, source) = job_channel::<u64>(4);
        let collected = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    while let Some(pair) = source.next() {
                        collected.lock().unwrap().push(pair);
                    }
                });
            }
            scope.spawn(move || {
                for index in 0..100usize {
                    producer.push(index, index as u64 * 3);
                }
                // `producer` drops here, closing the channel.
            });
        });
        let mut pairs = collected.into_inner().unwrap();
        pairs.sort();
        assert_eq!(
            pairs,
            (0..100usize).map(|i| (i, i as u64 * 3)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn job_channel_applies_backpressure_at_capacity() {
        let (producer, source) = job_channel::<u8>(2);
        producer.push(0, 10);
        producer.push(1, 11);
        assert_eq!(source.backlog(), 2);
        let third_landed = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                producer.push(2, 12);
                third_landed.store(true, Ordering::SeqCst);
            });
            // The producer must stay blocked while the queue is full.
            std::thread::sleep(std::time::Duration::from_millis(50));
            assert!(!third_landed.load(Ordering::SeqCst));
            assert_eq!(source.next(), Some((0, 10)));
        });
        assert!(third_landed.load(Ordering::SeqCst));
        assert_eq!(source.next(), Some((1, 11)));
        assert_eq!(source.next(), Some((2, 12)));
        drop(producer);
        assert_eq!(source.next(), None);
    }

    #[test]
    fn job_channel_closes_when_last_producer_clone_drops() {
        let (producer, source) = job_channel::<u8>(8);
        let second = producer.clone();
        drop(producer);
        second.push(0, 1);
        drop(second);
        assert_eq!(source.next(), Some((0, 1)));
        assert_eq!(source.next(), None);
    }

    #[test]
    fn grouped_map_keeps_groups_on_one_worker_in_member_order() {
        use std::sync::Mutex;

        // Items tagged by group; groups interleave in the item order.
        let items: Vec<(usize, usize)> = (0..24).map(|i| (i % 3, i)).collect();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (index, (group, _)) in items.iter().enumerate() {
            groups[*group].push(index);
        }

        // Each worker state records the sequence of items it ran; the
        // per-group order must be ascending and contiguous per worker.
        let logs: Mutex<Vec<Vec<usize>>> = Mutex::new(Vec::new());
        for threads in [1, 4] {
            logs.lock().unwrap().clear();
            let results = parallel_map_grouped(
                threads,
                &items,
                &groups,
                Vec::new,
                |index, &(_, payload), state: &mut Vec<usize>| {
                    state.push(index);
                    if state.len() == 8 {
                        // A full group has run on this worker: log it.
                        logs.lock().unwrap().push(std::mem::take(state));
                    }
                    payload * 10
                },
            );
            // Results are in item order regardless of grouping.
            assert_eq!(results, (0..24).map(|i| i * 10).collect::<Vec<_>>());
            // Every logged run is one whole group, members ascending.
            for run in logs.lock().unwrap().iter() {
                let group = items[run[0]].0;
                assert!(run.iter().all(|&i| items[i].0 == group));
                assert!(run.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(run.len(), groups[group].len());
            }
        }
    }
}
