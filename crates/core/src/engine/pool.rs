//! The pool layer: the atomic work-queue worker pool.
//!
//! Workers claim item indices from a shared atomic cursor, each carrying
//! per-worker state (the engine's reusable SMT session; `()` for the plain
//! map). Ordering of *results* is by item index regardless of which worker
//! ran what, which is how every batch stays bit-identical across thread
//! counts. Nothing in this layer knows what a verification stage is — the
//! [stage](super::stage) and [schedule](super::schedule) layers are plugged
//! in by [`VerificationEngine`](super::VerificationEngine).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on a scoped worker pool, preserving order.
///
/// The engine's work-queue pattern as a standalone helper, used by drivers
/// whose per-item work is not a verification (e.g. Figure 6's cost-model
/// evaluations).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(
        resolve_threads(threads, items.len()),
        items,
        || (),
        |_, item, _| f(item),
    )
}

/// Resolves a configured worker count: `0` means one per available CPU, and
/// the result is clamped to `[1, items]` so idle workers are never spawned.
/// Public because it is also the natural work-stealing chunk size — one
/// claimed chunk keeps one worker pool exactly busy.
pub fn resolve_threads(configured: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if configured == 0 { hw } else { configured };
    threads.clamp(1, items.max(1))
}

/// The work-queue core shared by [`parallel_map`] and
/// [`VerificationEngine::run_batch`](super::VerificationEngine::run_batch):
/// workers claim item indices from an atomic cursor, each carrying
/// per-worker state built by `init`. The claimed index is passed to `f` so
/// the engine can label observer events with the job's position in the
/// batch.
///
/// `threads` must already be resolved and clamped by the caller.
pub(crate) fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item, &mut state))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let value = f(index, item, &mut state);
                    *results[index].lock().unwrap() = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index was claimed by a worker")
        })
        .collect()
}

/// [`parallel_map_with`] with *scalar affinity*: `groups` partitions the
/// item indices, workers claim whole groups from the atomic cursor, and a
/// group's members run on one worker in ascending index order.
///
/// This is the scheduling contract the incremental-reuse engine needs: all
/// jobs sharing a scalar kernel run consecutively on one session, so the
/// warm per-scalar SMT state actually gets hit — and because the whole group
/// is claimed atomically and its members run in a fixed order, the sequence
/// of queries each warm session sees (hence every verdict) is identical at
/// any thread count. Results are still returned in item order.
///
/// Every item index must appear in exactly one group; `threads` must already
/// be resolved by the caller.
pub(crate) fn parallel_map_grouped<T, R, S, I, F>(
    threads: usize,
    items: &[T],
    groups: &[Vec<usize>],
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    debug_assert_eq!(
        groups.iter().map(Vec::len).sum::<usize>(),
        items.len(),
        "groups must partition the items"
    );
    if threads <= 1 {
        let mut state = init();
        let mut results: Vec<Option<R>> = items.iter().map(|_| None).collect();
        for group in groups {
            for &index in group {
                results[index] = Some(f(index, &items[index], &mut state));
            }
        }
        return results
            .into_iter()
            .map(|slot| slot.expect("every item index appears in a group"))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let group_index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(group_index) else {
                        break;
                    };
                    for &index in group {
                        let value = f(index, &items[index], &mut state);
                        *results[index].lock().unwrap() = Some(value);
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index appears in a group")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn grouped_map_keeps_groups_on_one_worker_in_member_order() {
        use std::sync::Mutex;

        // Items tagged by group; groups interleave in the item order.
        let items: Vec<(usize, usize)> = (0..24).map(|i| (i % 3, i)).collect();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); 3];
        for (index, (group, _)) in items.iter().enumerate() {
            groups[*group].push(index);
        }

        // Each worker state records the sequence of items it ran; the
        // per-group order must be ascending and contiguous per worker.
        let logs: Mutex<Vec<Vec<usize>>> = Mutex::new(Vec::new());
        for threads in [1, 4] {
            logs.lock().unwrap().clear();
            let results = parallel_map_grouped(
                threads,
                &items,
                &groups,
                Vec::new,
                |index, &(_, payload), state: &mut Vec<usize>| {
                    state.push(index);
                    if state.len() == 8 {
                        // A full group has run on this worker: log it.
                        logs.lock().unwrap().push(std::mem::take(state));
                    }
                    payload * 10
                },
            );
            // Results are in item order regardless of grouping.
            assert_eq!(results, (0..24).map(|i| i * 10).collect::<Vec<_>>());
            // Every logged run is one whole group, members ascending.
            for run in logs.lock().unwrap().iter() {
                let group = items[run[0]].0;
                assert!(run.iter().all(|&i| items[i].0 == group));
                assert!(run.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(run.len(), groups[group].len());
            }
        }
    }
}
