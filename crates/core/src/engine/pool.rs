//! The pool layer: the atomic work-queue worker pool.
//!
//! Workers claim item indices from a shared atomic cursor, each carrying
//! per-worker state (the engine's reusable SMT session; `()` for the plain
//! map). Ordering of *results* is by item index regardless of which worker
//! ran what, which is how every batch stays bit-identical across thread
//! counts. Nothing in this layer knows what a verification stage is — the
//! [stage](super::stage) and [schedule](super::schedule) layers are plugged
//! in by [`VerificationEngine`](super::VerificationEngine).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on a scoped worker pool, preserving order.
///
/// The engine's work-queue pattern as a standalone helper, used by drivers
/// whose per-item work is not a verification (e.g. Figure 6's cost-model
/// evaluations).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(
        resolve_threads(threads, items.len()),
        items,
        || (),
        |_, item, _| f(item),
    )
}

/// Resolves a configured worker count: `0` means one per available CPU, and
/// the result is clamped to `[1, items]` so idle workers are never spawned.
pub(crate) fn resolve_threads(configured: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if configured == 0 { hw } else { configured };
    threads.clamp(1, items.max(1))
}

/// The work-queue core shared by [`parallel_map`] and
/// [`VerificationEngine::run_batch`](super::VerificationEngine::run_batch):
/// workers claim item indices from an atomic cursor, each carrying
/// per-worker state built by `init`. The claimed index is passed to `f` so
/// the engine can label observer events with the job's position in the
/// batch.
///
/// `threads` must already be resolved and clamped by the caller.
pub(crate) fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item, &mut state))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let value = f(index, item, &mut state);
                    *results[index].lock().unwrap() = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }
}
