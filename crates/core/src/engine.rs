//! The parallel batch verification engine.
//!
//! Algorithm 1 is a cascade of verification strategies — checksum testing,
//! then the three symbolic strategies — applied to one `(scalar, candidate)`
//! pair. This module turns that cascade into an engine that:
//!
//! * represents each stage as a [`VerificationStrategy`] trait object, so the
//!   cascade is configurable (the experiment drivers use a checksum-only
//!   cascade for Table 2 / Figure 5 and the full cascade for Table 3);
//! * fans a batch of [`Job`]s out over a worker pool ([`VerificationEngine::
//!   run_batch`]): workers pull jobs from a shared atomic cursor, and each
//!   worker owns one reusable SMT session ([`lv_tv::TvSession`]) for its whole
//!   lifetime, so solver allocations are recycled instead of rebuilt per
//!   query;
//! * records structured per-job telemetry ([`StageTrace`]): which stages ran,
//!   which one concluded, wall time, and the SAT conflicts and CNF clauses
//!   each stage spent.
//!
//! Every job is deterministic given its inputs and each worker session is
//! reset to a just-constructed state between queries, so a batch produces
//! bit-identical verdicts regardless of the thread count — `threads = N` is
//! purely a wall-clock optimization over `threads = 1`, which in turn equals
//! the one-shot [`crate::check_equivalence`].
//!
//! On top of the worker pool the engine is *observable*, *cached*, and
//! optionally *self-tuning*:
//!
//! * [`VerificationEngine::run_batch_observed`] streams job/stage/verdict
//!   events to a [`BatchObserver`] as workers make progress;
//! * a configured [`VerdictCache`] is consulted per job *before any stage
//!   runs*, keyed by `(scalar, candidate, config)` content hashes; hits run
//!   zero stages and are counted in [`BatchReport::cache_hits`];
//! * [`VerificationEngine::run_batch_adaptive`] runs a pilot slice under the
//!   configured budgets, derives tightened per-stage [`lv_tv::SolverBudget`]s
//!   from the pilot's [`crate::FunnelReport`], and runs the remainder under
//!   them (opt-in via [`EngineConfig::adaptive`]; off by default so verdicts
//!   stay bit-identical to the sequential path).

use crate::cache::{CacheKey, CachedVerdict, VerdictCache};
use crate::funnel::{AdaptiveBudgetPolicy, FunnelReport};
use crate::observer::{BatchObserver, NoopObserver, OffsetObserver};
use crate::pipeline::{Equivalence, EquivalenceReport, PipelineConfig, Stage};
use lv_cir::ast::Function;
use lv_cir::hash::{structural_hash, structural_hash_in_env, Fnv64};
use lv_interp::{ChecksumClass, ChecksumFilter, ChecksumOutcome};
use lv_tv::{SymbolicStrategy, TvConfig, TvSession, TvSessionStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-worker mutable state threaded through every strategy call.
///
/// One value lives per worker thread for the whole batch; strategies use it
/// to reuse expensive resources (the SMT session) and to report side-band
/// facts (the checksum classification) without widening their return type.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// The worker's reusable SMT session.
    pub session: TvSession,
    /// Checksum classification of the current job, recorded by the checksum
    /// strategy so reports can distinguish "cannot compile" from "refuted".
    pub checksum: Option<ChecksumClass>,
    /// Set by the checksum strategy when the candidate's array parameter
    /// names differ from the scalar's — the harness binds arrays by name, so
    /// such a candidate is tested on disjoint arrays (see
    /// [`lv_interp::array_param_names_mismatch`]). Telemetry only; the
    /// verdict is unchanged.
    pub name_mismatch: bool,
}

/// What one strategy concluded about one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyOutcome {
    /// The cascade stops here with this verdict.
    Conclusive {
        /// The final verdict.
        verdict: Equivalence,
        /// Counterexample, mismatch, or failure description.
        detail: String,
    },
    /// This strategy could not decide; the cascade continues.
    Continue {
        /// Why the strategy passed (checksum: "plausible"; symbolic: the
        /// inconclusive reason, reported if no later stage concludes).
        reason: String,
    },
}

/// One stage of the verification cascade.
///
/// Implementations exist for the checksum filter (wrapping
/// [`lv_interp::ChecksumFilter`]) and for each [`lv_tv::SymbolicStrategy`];
/// the trait is public so alternative cascades (e.g. a future fuzzing stage)
/// can plug in without touching the engine.
pub trait VerificationStrategy: Send + Sync {
    /// The Algorithm 1 stage this strategy implements, for reports.
    fn stage(&self) -> Stage;

    /// Checks one candidate against its scalar kernel.
    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome;
}

/// Algorithm 1 line 2: checksum testing as a cascade stage.
#[derive(Debug, Clone, Default)]
pub struct ChecksumStage {
    filter: ChecksumFilter,
}

impl ChecksumStage {
    /// A stage running the given checksum harness configuration.
    pub fn new(config: lv_interp::ChecksumConfig) -> ChecksumStage {
        ChecksumStage {
            filter: ChecksumFilter::new(config),
        }
    }
}

impl VerificationStrategy for ChecksumStage {
    fn stage(&self) -> Stage {
        Stage::Checksum
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        if lv_interp::array_param_names_mismatch(scalar, candidate) {
            // Diagnostic only: the harness binds arrays by parameter name, so
            // this candidate runs on disjoint arrays and the comparison is
            // vacuous. The flag surfaces in the job's checksum StageTrace and
            // the funnel; the behavioral fix (positional binding or a
            // CannotCompile classification) shifts Table 2 counts and is a
            // separate change (see ROADMAP).
            worker.name_mismatch = true;
            eprintln!(
                "warning: candidate `{}` renames array parameters away from the scalar's; \
                 the checksum harness binds arrays by name, so the candidate was tested on \
                 disjoint arrays (verdict unchanged)",
                candidate.name
            );
        }
        let report = self.filter.run(scalar, candidate);
        worker.checksum = Some(report.outcome.class());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { reason, .. } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: reason,
            },
            ChecksumOutcome::CannotCompile { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: format!("cannot compile: {}", error),
            },
            ChecksumOutcome::ScalarExecutionFailed { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::Inconclusive,
                detail: format!("scalar kernel failed to execute: {}", error),
            },
            ChecksumOutcome::Plausible => StrategyOutcome::Continue {
                reason: String::new(),
            },
        }
    }
}

/// Algorithm 1 lines 6–13: one symbolic strategy as a cascade stage.
#[derive(Debug, Clone)]
pub struct SymbolicStage {
    strategy: SymbolicStrategy,
    config: TvConfig,
}

impl SymbolicStage {
    /// A stage running `strategy` under `config`.
    pub fn new(strategy: SymbolicStrategy, config: TvConfig) -> SymbolicStage {
        SymbolicStage { strategy, config }
    }
}

impl VerificationStrategy for SymbolicStage {
    fn stage(&self) -> Stage {
        match self.strategy {
            SymbolicStrategy::Alive2Unroll => Stage::Alive2,
            SymbolicStrategy::CUnroll => Stage::CUnroll,
            SymbolicStrategy::SpatialSplitting => Stage::Splitting,
        }
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        match self
            .strategy
            .run(scalar, candidate, &self.config, &mut worker.session)
        {
            lv_tv::TvVerdict::Equivalent => StrategyOutcome::Conclusive {
                verdict: Equivalence::Equivalent,
                detail: String::new(),
            },
            lv_tv::TvVerdict::NotEquivalent { counterexample } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: counterexample,
            },
            lv_tv::TvVerdict::Inconclusive { reason } => StrategyOutcome::Continue { reason },
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// The stages to run, in order. Defaults to Algorithm 1's full cascade.
    pub cascade: Vec<Stage>,
    /// Stage configurations (checksum harness + symbolic budgets).
    pub pipeline: PipelineConfig,
    /// Verdict cache consulted per job before any stage runs. `None`
    /// disables caching.
    pub cache: Option<Arc<VerdictCache>>,
    /// Opt-in adaptive budget tuning, applied by
    /// [`VerificationEngine::run_batch_adaptive`]. `None` (the default)
    /// keeps the configured budgets and bit-identical verdicts.
    pub adaptive: Option<AdaptiveBudgetPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cascade: vec![
                Stage::Checksum,
                Stage::Alive2,
                Stage::CUnroll,
                Stage::Splitting,
            ],
            pipeline: PipelineConfig::default(),
            cache: None,
            adaptive: None,
        }
    }
}

impl EngineConfig {
    /// The full Algorithm 1 cascade with the given stage configurations.
    pub fn full(pipeline: PipelineConfig) -> EngineConfig {
        EngineConfig {
            pipeline,
            ..EngineConfig::default()
        }
    }

    /// A checksum-only cascade (the Table 2 / Figure 5 experiments).
    pub fn checksum_only(checksum: lv_interp::ChecksumConfig) -> EngineConfig {
        EngineConfig {
            cascade: vec![Stage::Checksum],
            pipeline: PipelineConfig {
                checksum,
                ..PipelineConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    /// Returns this configuration with the given worker count.
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }

    /// Returns this configuration with a verdict cache attached.
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> EngineConfig {
        self.cache = Some(cache);
        self
    }

    /// Returns this configuration with adaptive budget tuning enabled.
    pub fn with_adaptive(mut self, policy: AdaptiveBudgetPolicy) -> EngineConfig {
        self.adaptive = Some(policy);
        self
    }

    /// A stable fingerprint of everything that can influence a verdict: the
    /// cascade stage list (order matters — it decides which stage answers
    /// first), the checksum harness configuration, and the symbolic budgets.
    ///
    /// This is the `config` component of every [`CacheKey`]. Thread count,
    /// the cache itself, and the adaptive *policy* are deliberately
    /// excluded: none of them changes the verdict a given budget
    /// configuration produces (an adaptive run caches its tuned-phase
    /// verdicts under the tuned configuration's own fingerprint).
    pub fn semantic_fingerprint(&self) -> u64 {
        let mut fnv = Fnv64::new();
        fnv.write_u64(self.cascade.len() as u64);
        for stage in &self.cascade {
            fnv.write_u8(match stage {
                Stage::Checksum => 1,
                Stage::Alive2 => 2,
                Stage::CUnroll => 3,
                Stage::Splitting => 4,
            });
        }
        fnv.write_u64(self.pipeline.checksum.fingerprint());
        fnv.write_u64(self.pipeline.tv.fingerprint());
        fnv.finish()
    }
}

/// One unit of work: check `candidate` against `scalar`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label for reports (kernel name, optionally with a completion index).
    pub label: String,
    /// The scalar reference kernel.
    pub scalar: Function,
    /// The vectorization candidate.
    pub candidate: Function,
}

impl Job {
    /// A job with the given label.
    pub fn new(label: impl Into<String>, scalar: Function, candidate: Function) -> Job {
        Job {
            label: label.into(),
            scalar,
            candidate,
        }
    }
}

/// Telemetry for one cascade stage of one job.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// The stage that ran.
    pub stage: Stage,
    /// Whether this stage produced the job's final verdict.
    pub conclusive: bool,
    /// Wall time the stage took.
    pub wall: Duration,
    /// SAT conflicts spent (always 0 for the checksum stage).
    pub conflicts: u64,
    /// CNF clauses built (always 0 for the checksum stage).
    pub clauses: u64,
    /// `true` on a checksum-stage trace whose candidate renamed its array
    /// parameters away from the scalar's — the harness bound disjoint arrays
    /// and the comparison was vacuous (telemetry only; the verdict is
    /// unchanged). Always `false` for symbolic stages.
    pub name_mismatch: bool,
}

/// The result of one job, with telemetry.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's label.
    pub label: String,
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it (the last stage run, if none concluded).
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade includes the checksum stage.
    pub checksum: Option<ChecksumClass>,
    /// Per-stage telemetry, in execution order. A conclusive stage is always
    /// last — stages after an early exit never run, which is how tests pin
    /// Algorithm 1's short-circuit ordering. Empty for cache hits, which run
    /// no stages at all.
    pub traces: Vec<StageTrace>,
    /// Total wall time for the job.
    pub wall: Duration,
    /// `true` when the verdict came from the [`VerdictCache`] and no stage
    /// ran.
    pub cache_hit: bool,
}

impl JobReport {
    /// Collapses the report into the pipeline's three-field form.
    pub fn equivalence_report(&self) -> EquivalenceReport {
        EquivalenceReport {
            verdict: self.verdict,
            stage: self.stage,
            detail: self.detail.clone(),
        }
    }
}

/// The result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per job, in job order (independent of scheduling).
    pub jobs: Vec<JobReport>,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Jobs answered from the verdict cache without running any stage.
    pub cache_hits: usize,
    /// Jobs that ran their cascade and stored the verdict (always `0` when
    /// the engine has no cache).
    pub cache_misses: usize,
}

impl BatchReport {
    /// Total SAT conflicts spent across all jobs and stages.
    pub fn total_conflicts(&self) -> u64 {
        self.jobs
            .iter()
            .flat_map(|j| &j.traces)
            .map(|t| t.conflicts)
            .sum()
    }

    /// Total stage executions across all jobs — `0` for a fully cached
    /// batch, which is how tests pin "a warm cache runs neither checksum nor
    /// SMT stages".
    pub fn stage_runs(&self) -> usize {
        self.jobs.iter().map(|j| j.traces.len()).sum()
    }

    /// Count of jobs whose final verdict is `verdict`.
    pub fn count(&self, verdict: Equivalence) -> usize {
        self.jobs.iter().filter(|j| j.verdict == verdict).count()
    }

    /// The telemetry funnel over this batch's stage traces.
    pub fn funnel(&self) -> FunnelReport {
        FunnelReport::from_jobs(&self.jobs)
    }
}

/// The result of [`VerificationEngine::run_batch_adaptive`]: the merged
/// batch plus what the tuning did.
#[derive(Debug, Clone)]
pub struct AdaptiveBatchReport {
    /// The merged report over all jobs, in job order.
    pub report: BatchReport,
    /// How many leading jobs formed the pilot (run under base budgets).
    pub pilot_jobs: usize,
    /// The configured budgets the pilot ran under.
    pub base: TvConfig,
    /// The derived budgets the remainder ran under. Equal to `base` when the
    /// engine has no adaptive policy or the pilot produced no evidence.
    pub tuned: TvConfig,
    /// The pilot's funnel — the evidence the tuning was derived from.
    pub funnel: FunnelReport,
}

/// The parallel batch verification engine.
pub struct VerificationEngine {
    threads: usize,
    strategies: Vec<Box<dyn VerificationStrategy>>,
    cache: Option<Arc<VerdictCache>>,
    /// [`EngineConfig::semantic_fingerprint`] of the source configuration,
    /// precomputed once — it is part of every cache key.
    config_fingerprint: u64,
    /// The source configuration, kept so the adaptive path can rebuild a
    /// tuned engine. `None` for caller-assembled cascades.
    config: Option<EngineConfig>,
}

impl VerificationEngine {
    /// Builds an engine from a configuration, instantiating one strategy per
    /// cascade stage.
    pub fn new(config: EngineConfig) -> VerificationEngine {
        let strategies = config
            .cascade
            .iter()
            .map(|stage| -> Box<dyn VerificationStrategy> {
                match stage {
                    Stage::Checksum => {
                        Box::new(ChecksumStage::new(config.pipeline.checksum.clone()))
                    }
                    Stage::Alive2 => Box::new(SymbolicStage::new(
                        SymbolicStrategy::Alive2Unroll,
                        config.pipeline.tv.clone(),
                    )),
                    Stage::CUnroll => Box::new(SymbolicStage::new(
                        SymbolicStrategy::CUnroll,
                        config.pipeline.tv.clone(),
                    )),
                    Stage::Splitting => Box::new(SymbolicStage::new(
                        SymbolicStrategy::SpatialSplitting,
                        config.pipeline.tv.clone(),
                    )),
                }
            })
            .collect();
        VerificationEngine {
            threads: config.threads,
            strategies,
            cache: config.cache.clone(),
            config_fingerprint: config.semantic_fingerprint(),
            config: Some(config),
        }
    }

    /// An engine with a caller-assembled cascade. Such an engine has no
    /// configuration fingerprint, so it never caches, and
    /// [`VerificationEngine::run_batch_adaptive`] degenerates to a plain
    /// batch.
    pub fn with_strategies(
        threads: usize,
        strategies: Vec<Box<dyn VerificationStrategy>>,
    ) -> VerificationEngine {
        VerificationEngine {
            threads,
            strategies,
            cache: None,
            config_fingerprint: 0,
            config: None,
        }
    }

    /// The worker count a batch of `jobs` jobs would use.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        resolve_threads(self.threads, jobs)
    }

    /// Runs the cascade on a single pair, reusing nothing (the
    /// [`crate::check_equivalence`] path). Consults the verdict cache like
    /// any batched job.
    pub fn check_one(&self, scalar: &Function, candidate: &Function) -> JobReport {
        let mut worker = WorkerState::default();
        self.run_job(
            0,
            &Job::new(scalar.name.clone(), scalar.clone(), candidate.clone()),
            &mut worker,
            &NoopObserver,
        )
    }

    /// Verifies a batch of jobs on the worker pool.
    ///
    /// Results are returned in job order. Verdicts, stages, and details are
    /// identical for every thread count; only `wall` varies.
    pub fn run_batch(&self, jobs: &[Job]) -> BatchReport {
        self.run_batch_observed(jobs, &NoopObserver)
    }

    /// [`VerificationEngine::run_batch`], streaming progress to `observer`.
    ///
    /// Callbacks fire from worker threads in completion order; the reports
    /// in the returned batch are still in job order, bit-identical to an
    /// unobserved run.
    pub fn run_batch_observed(&self, jobs: &[Job], observer: &dyn BatchObserver) -> BatchReport {
        let threads = self.resolved_threads(jobs.len());
        let start = Instant::now();
        let reports =
            parallel_map_with(threads, jobs, WorkerState::default, |index, job, worker| {
                self.run_job(index, job, worker, observer)
            });
        let cache_hits = reports.iter().filter(|r| r.cache_hit).count();
        let cache_misses = if self.cache.is_some() {
            reports.len() - cache_hits
        } else {
            0
        };
        BatchReport {
            jobs: reports,
            wall: start.elapsed(),
            threads,
            cache_hits,
            cache_misses,
        }
    }

    /// Runs a batch with telemetry-driven budget tuning: a pilot slice runs
    /// under the configured budgets, the [`AdaptiveBudgetPolicy`] derives
    /// tightened budgets from the pilot's funnel, and the remaining jobs run
    /// under them.
    ///
    /// Requires [`EngineConfig::adaptive`]; without it (or for a
    /// caller-assembled cascade) this is exactly
    /// [`Self::run_batch_observed`] with the whole batch as the pilot, so
    /// drivers can call it unconditionally.
    pub fn run_batch_adaptive(
        &self,
        jobs: &[Job],
        observer: &dyn BatchObserver,
    ) -> AdaptiveBatchReport {
        let policy = self.config.as_ref().and_then(|c| c.adaptive.clone());
        let (Some(config), Some(policy)) = (&self.config, policy) else {
            let report = self.run_batch_observed(jobs, observer);
            let funnel = report.funnel();
            let base = self
                .config
                .as_ref()
                .map_or_else(TvConfig::default, |c| c.pipeline.tv.clone());
            return AdaptiveBatchReport {
                report,
                pilot_jobs: jobs.len(),
                base: base.clone(),
                tuned: base,
                funnel,
            };
        };

        let pilot_len = policy.pilot_len(jobs.len());
        // The pilot must produce real stage evidence even when a warm cache
        // could answer it: a trace-less funnel would silently fall back to
        // base budgets, making a warm adaptive run diverge from the cold run
        // that filled the cache. Running the pilot through a cache-less twin
        // re-derives the identical tuned budgets, so the remainder hits the
        // tuned-fingerprint entries the cold run stored.
        let pilot = if config.cache.is_some() {
            let uncached = VerificationEngine::new(EngineConfig {
                cache: None,
                ..config.clone()
            });
            uncached.run_batch_observed(&jobs[..pilot_len], observer)
        } else {
            self.run_batch_observed(&jobs[..pilot_len], observer)
        };
        let funnel = pilot.funnel();
        let base = config.pipeline.tv.clone();
        let tuned = policy.derive(&funnel, &base);

        let mut merged = pilot;
        if pilot_len < jobs.len() {
            let mut tuned_config = config.clone();
            tuned_config.adaptive = None; // the tuning is already applied
            tuned_config.pipeline.tv = tuned.clone();
            let tuned_engine = VerificationEngine::new(tuned_config);
            let rest = tuned_engine.run_batch_observed(
                &jobs[pilot_len..],
                &OffsetObserver::new(observer, pilot_len),
            );
            merged.jobs.extend(rest.jobs);
            merged.wall += rest.wall;
            merged.threads = merged.threads.max(rest.threads);
            merged.cache_hits += rest.cache_hits;
            merged.cache_misses += rest.cache_misses;
        }
        AdaptiveBatchReport {
            report: merged,
            pilot_jobs: pilot_len,
            base,
            tuned,
            funnel,
        }
    }

    /// The cache key of one job under this engine's configuration, or `None`
    /// when the engine has no cache.
    fn cache_key(&self, job: &Job) -> Option<CacheKey> {
        self.cache.as_ref()?;
        Some(job_cache_key(job, self.config_fingerprint))
    }

    /// Runs the cascade on one job, collecting per-stage telemetry. The
    /// verdict cache is consulted first — a hit returns before any stage
    /// (checksum included) runs.
    fn run_job(
        &self,
        index: usize,
        job: &Job,
        worker: &mut WorkerState,
        observer: &dyn BatchObserver,
    ) -> JobReport {
        let job_start = Instant::now();
        observer.job_started(index, job);

        let key = self.cache_key(job);
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            if let Some(hit) = cache.get(&key) {
                let report = JobReport {
                    label: job.label.clone(),
                    verdict: hit.verdict,
                    stage: hit.stage,
                    detail: hit.detail,
                    checksum: hit.checksum,
                    traces: Vec::new(),
                    wall: job_start.elapsed(),
                    cache_hit: true,
                };
                observer.job_finished(index, &report);
                return report;
            }
        }

        worker.checksum = None;
        worker.name_mismatch = false;
        let mut traces = Vec::with_capacity(self.strategies.len());
        // If no stage concludes, report the last stage that ran (Alive2 with
        // an empty reason for an empty cascade, mirroring the sequential
        // pipeline's initializer).
        let mut last_stage = Stage::Alive2;
        let mut last_reason = String::new();
        let mut conclusion: Option<(Equivalence, Stage, String)> = None;

        for strategy in &self.strategies {
            let stats_before = worker.session.stats;
            let stage_start = Instant::now();
            let outcome = strategy.verify(&job.scalar, &job.candidate, worker);
            let wall = stage_start.elapsed();
            let spent = effort_delta(stats_before, worker.session.stats);
            let conclusive = matches!(outcome, StrategyOutcome::Conclusive { .. });
            traces.push(StageTrace {
                stage: strategy.stage(),
                conclusive,
                wall,
                conflicts: spent.0,
                clauses: spent.1,
                name_mismatch: strategy.stage() == Stage::Checksum && worker.name_mismatch,
            });
            observer.stage_finished(index, job, traces.last().expect("just pushed"));
            match outcome {
                StrategyOutcome::Conclusive { verdict, detail } => {
                    conclusion = Some((verdict, strategy.stage(), detail));
                    break;
                }
                StrategyOutcome::Continue { reason } => {
                    last_stage = strategy.stage();
                    last_reason = reason;
                }
            }
        }

        let (verdict, stage, detail) =
            conclusion.unwrap_or((Equivalence::Inconclusive, last_stage, last_reason));
        let report = JobReport {
            label: job.label.clone(),
            verdict,
            stage,
            detail,
            checksum: worker.checksum,
            traces,
            wall: job_start.elapsed(),
            cache_hit: false,
        };
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.insert(
                key,
                CachedVerdict {
                    verdict: report.verdict,
                    stage: report.stage,
                    detail: report.detail.clone(),
                    checksum: report.checksum,
                },
            );
        }
        observer.job_finished(index, &report);
        report
    }
}

/// The verdict-cache key of `job` under a configuration fingerprint — the
/// single definition shared by the engine's per-job lookup and the shard
/// coordinator's report-to-cache reconstruction, so the two can never drift
/// apart and mis-key (or spuriously conflict on) the same verdict.
///
/// The candidate is hashed in the scalar's parameter-name environment
/// ([`structural_hash_in_env`]): the checksum harness and the refinement
/// check bind arrays by parameter name, so a candidate whose parameters are
/// renamed away from the scalar's is a *different* verification problem and
/// must not share a key with the name-matched spelling.
pub(crate) fn job_cache_key(job: &Job, config_fingerprint: u64) -> CacheKey {
    CacheKey {
        scalar: structural_hash(&job.scalar),
        candidate: structural_hash_in_env(
            &job.candidate,
            job.scalar.params.iter().map(|p| p.name.as_str()),
        ),
        config: config_fingerprint,
    }
}

fn effort_delta(before: TvSessionStats, after: TvSessionStats) -> (u64, u64) {
    (
        after.conflicts - before.conflicts,
        after.clauses - before.clauses,
    )
}

/// Maps `f` over `items` on a scoped worker pool, preserving order.
///
/// The engine's work-queue pattern as a standalone helper, used by drivers
/// whose per-item work is not a verification (e.g. Figure 6's cost-model
/// evaluations).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(
        resolve_threads(threads, items.len()),
        items,
        || (),
        |_, item, _| f(item),
    )
}

/// Resolves a configured worker count: `0` means one per available CPU, and
/// the result is clamped to `[1, items]` so idle workers are never spawned.
fn resolve_threads(configured: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if configured == 0 { hw } else { configured };
    threads.clamp(1, items.max(1))
}

/// The work-queue core shared by [`parallel_map`] and
/// [`VerificationEngine::run_batch`]: workers claim item indices from an
/// atomic cursor, each carrying per-worker state built by `init` (the
/// engine's reusable SMT session; `()` for the plain map). The claimed index
/// is passed to `f` so the engine can label observer events with the job's
/// position in the batch.
///
/// `threads` must already be resolved and clamped by the caller.
fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &T, &mut S) -> R + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(index, item)| f(index, item, &mut state))
            .collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let value = f(index, item, &mut state);
                    *results[index].lock().unwrap() = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_agents::vectorize_correct;
    use lv_cir::parse_function;
    use lv_interp::ChecksumConfig;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S000_WRONG: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }";

    fn quick_pipeline() -> PipelineConfig {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn engine_verifies_a_correct_candidate() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
        // The checksum stage ran first and passed; a symbolic stage concluded.
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(!report.traces[0].conclusive);
        assert!(report.traces.last().unwrap().conclusive);
    }

    #[test]
    fn checksum_refutation_short_circuits_the_cascade() {
        let scalar = parse_function(S000).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &wrong);
        assert_eq!(report.verdict, Equivalence::NotEquivalent);
        assert_eq!(report.stage, Stage::Checksum);
        // Early exit: exactly one trace, no symbolic stage ran, no SAT work.
        assert_eq!(report.traces.len(), 1);
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(report.traces[0].conclusive);
        assert_eq!(report.traces[0].conflicts, 0);
    }

    #[test]
    fn batch_reports_preserve_job_order_for_any_thread_count() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let candidate = if i % 2 == 0 {
                    good.clone()
                } else {
                    wrong.clone()
                };
                Job::new(format!("job{}", i), scalar.clone(), candidate)
            })
            .collect();
        let sequential =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(1))
                .run_batch(&jobs);
        let parallel =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(4))
                .run_batch(&jobs);
        assert_eq!(parallel.threads, 4);
        for (s, p) in sequential.jobs.iter().zip(&parallel.jobs) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.verdict, p.verdict);
            assert_eq!(s.stage, p.stage);
            assert_eq!(s.detail, p.detail);
        }
        assert_eq!(sequential.count(Equivalence::Equivalent), 4);
        assert_eq!(sequential.count(Equivalence::NotEquivalent), 4);
    }

    #[test]
    fn checksum_only_cascade_reports_inconclusive_for_plausible() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::checksum_only(ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        }));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Inconclusive);
        assert_eq!(
            report.stage,
            Stage::Checksum,
            "last stage that actually ran"
        );
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
    }

    #[test]
    fn renamed_array_params_are_flagged_but_verdicts_unchanged() {
        let scalar = parse_function(S000).unwrap();
        // Same body, arrays renamed: the harness binds arrays by name, so
        // the checksum comparison is vacuous — the stage must record the
        // mismatch in its trace (and warn) without changing its outcome.
        let renamed = parse_function(
            "void s000(int n, int *x, int *y) { for (int i = 0; i < n; i++) { x[i] = y[i] + 1; } }",
        )
        .unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &renamed);
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(report.traces[0].name_mismatch, "mismatch must be flagged");
        assert_eq!(
            report.checksum,
            Some(ChecksumClass::Plausible),
            "diagnostic only: the vacuous pass is preserved, not reclassified"
        );
        let funnel = crate::FunnelReport::from_jobs(std::slice::from_ref(&report));
        assert_eq!(funnel.stage(Stage::Checksum).unwrap().name_mismatches, 1);
        assert!(
            funnel.render().contains("disjoint arrays"),
            "{}",
            funnel.render()
        );

        // Name-matched candidates are never flagged, on any stage.
        let good = vectorize_correct(&scalar).unwrap();
        let report = engine.check_one(&scalar, &good);
        assert!(report.traces.iter().all(|t| !t.name_mismatch));
        let funnel = crate::FunnelReport::from_jobs(std::slice::from_ref(&report));
        assert!(funnel.stages.iter().all(|s| s.name_mismatches == 0));
        assert!(!funnel.render().contains("disjoint arrays"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }

    #[test]
    fn warm_cache_reruns_with_zero_stage_runs_and_identical_verdicts() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs = vec![
            Job::new("good", scalar.clone(), good),
            Job::new("wrong", scalar.clone(), wrong),
        ];
        let cache = Arc::new(VerdictCache::in_memory());
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));

        let cold = engine.run_batch(&jobs);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cache_misses, 2);
        assert!(cold.stage_runs() > 0);
        assert_eq!(cache.len(), 2);

        let warm = engine.run_batch(&jobs);
        assert_eq!(warm.cache_hits, 2);
        assert_eq!(warm.cache_misses, 0);
        assert_eq!(warm.stage_runs(), 0, "no checksum or SMT stage may run");
        assert_eq!(warm.total_conflicts(), 0);
        for (c, w) in cold.jobs.iter().zip(&warm.jobs) {
            assert_eq!(c.verdict, w.verdict);
            assert_eq!(c.stage, w.stage);
            assert_eq!(c.detail, w.detail);
            assert_eq!(c.checksum, w.checksum);
            assert!(!c.cache_hit);
            assert!(w.cache_hit);
        }

        // An engine without the cache reports no hit/miss accounting.
        let uncached = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let batch = uncached.run_batch(&jobs);
        assert_eq!((batch.cache_hits, batch.cache_misses), (0, 0));
    }

    #[test]
    fn config_changes_invalidate_cache_keys() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let jobs = vec![Job::new("good", scalar.clone(), good)];
        let cache = Arc::new(VerdictCache::in_memory());
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_cache(cache.clone()));
        engine.run_batch(&jobs);
        assert_eq!(cache.len(), 1);

        // A different checksum configuration is a different verification
        // problem: same jobs, fresh misses, second entry.
        let mut other = quick_pipeline();
        other.checksum.trials = 2;
        let engine2 = VerificationEngine::new(EngineConfig::full(other).with_cache(cache.clone()));
        let batch = engine2.run_batch(&jobs);
        assert_eq!(batch.cache_hits, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn observer_sees_every_job_and_stage() {
        use crate::observer::CountingObserver;
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs = vec![
            Job::new("good", scalar.clone(), good),
            Job::new("wrong", scalar.clone(), wrong),
        ];
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(2));
        let counter = CountingObserver::new();
        let batch = engine.run_batch_observed(&jobs, &counter);
        assert_eq!(counter.finished_count(), 2);
        assert_eq!(counter.started.load(Ordering::Relaxed), 2);
        assert_eq!(
            counter.stage_count(),
            batch.stage_runs(),
            "one callback per executed stage"
        );
        assert_eq!(counter.cache_hit_count(), 0);
    }

    #[test]
    fn adaptive_run_tightens_budgets_and_keeps_verdicts() {
        use crate::funnel::AdaptiveBudgetPolicy;
        use crate::observer::NoopObserver;
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let jobs: Vec<Job> = (0..6)
            .map(|i| Job::new(format!("job{}", i), scalar.clone(), good.clone()))
            .collect();
        let policy = AdaptiveBudgetPolicy {
            min_pilot: 2,
            pilot_fraction: 0.3,
            ..AdaptiveBudgetPolicy::default()
        };
        let engine =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_adaptive(policy));
        let adaptive = engine.run_batch_adaptive(&jobs, &NoopObserver);
        assert_eq!(adaptive.pilot_jobs, 2);
        assert_eq!(adaptive.report.jobs.len(), 6);
        // Tuning only tightens.
        assert!(
            adaptive.tuned.alive2_budget.max_conflicts <= adaptive.base.alive2_budget.max_conflicts
        );
        assert!(
            adaptive.tuned.cunroll_budget.max_conflicts
                <= adaptive.base.cunroll_budget.max_conflicts
        );
        // Identical jobs stay provable under the tuned budgets.
        assert_eq!(adaptive.report.count(Equivalence::Equivalent), 6);
        for (i, report) in adaptive.report.jobs.iter().enumerate() {
            assert_eq!(report.label, format!("job{}", i), "job order is kept");
        }
        // Without a policy, the adaptive entry point degenerates to a plain
        // batch with everything as the pilot.
        let plain = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = plain.run_batch_adaptive(&jobs, &NoopObserver);
        assert_eq!(report.pilot_jobs, 6);
        assert_eq!(
            report.tuned.alive2_budget.max_conflicts,
            report.base.alive2_budget.max_conflicts
        );
    }
}
