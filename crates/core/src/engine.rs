//! The parallel batch verification engine.
//!
//! Algorithm 1 is a cascade of verification strategies — checksum testing,
//! then the three symbolic strategies — applied to one `(scalar, candidate)`
//! pair. This module turns that cascade into an engine that:
//!
//! * represents each stage as a [`VerificationStrategy`] trait object, so the
//!   cascade is configurable (the experiment drivers use a checksum-only
//!   cascade for Table 2 / Figure 5 and the full cascade for Table 3);
//! * fans a batch of [`Job`]s out over a worker pool ([`VerificationEngine::
//!   run_batch`]): workers pull jobs from a shared atomic cursor, and each
//!   worker owns one reusable SMT session ([`lv_tv::TvSession`]) for its whole
//!   lifetime, so solver allocations are recycled instead of rebuilt per
//!   query;
//! * records structured per-job telemetry ([`StageTrace`]): which stages ran,
//!   which one concluded, wall time, and the SAT conflicts and CNF clauses
//!   each stage spent.
//!
//! Every job is deterministic given its inputs and each worker session is
//! reset to a just-constructed state between queries, so a batch produces
//! bit-identical verdicts regardless of the thread count — `threads = N` is
//! purely a wall-clock optimization over `threads = 1`, which in turn equals
//! the one-shot [`crate::check_equivalence`].

use crate::pipeline::{Equivalence, EquivalenceReport, PipelineConfig, Stage};
use lv_cir::ast::Function;
use lv_interp::{ChecksumClass, ChecksumFilter, ChecksumOutcome};
use lv_tv::{SymbolicStrategy, TvConfig, TvSession, TvSessionStats};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Per-worker mutable state threaded through every strategy call.
///
/// One value lives per worker thread for the whole batch; strategies use it
/// to reuse expensive resources (the SMT session) and to report side-band
/// facts (the checksum classification) without widening their return type.
#[derive(Debug, Default)]
pub struct WorkerState {
    /// The worker's reusable SMT session.
    pub session: TvSession,
    /// Checksum classification of the current job, recorded by the checksum
    /// strategy so reports can distinguish "cannot compile" from "refuted".
    pub checksum: Option<ChecksumClass>,
}

/// What one strategy concluded about one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrategyOutcome {
    /// The cascade stops here with this verdict.
    Conclusive {
        /// The final verdict.
        verdict: Equivalence,
        /// Counterexample, mismatch, or failure description.
        detail: String,
    },
    /// This strategy could not decide; the cascade continues.
    Continue {
        /// Why the strategy passed (checksum: "plausible"; symbolic: the
        /// inconclusive reason, reported if no later stage concludes).
        reason: String,
    },
}

/// One stage of the verification cascade.
///
/// Implementations exist for the checksum filter (wrapping
/// [`lv_interp::ChecksumFilter`]) and for each [`lv_tv::SymbolicStrategy`];
/// the trait is public so alternative cascades (e.g. a future fuzzing stage)
/// can plug in without touching the engine.
pub trait VerificationStrategy: Send + Sync {
    /// The Algorithm 1 stage this strategy implements, for reports.
    fn stage(&self) -> Stage;

    /// Checks one candidate against its scalar kernel.
    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome;
}

/// Algorithm 1 line 2: checksum testing as a cascade stage.
#[derive(Debug, Clone, Default)]
pub struct ChecksumStage {
    filter: ChecksumFilter,
}

impl ChecksumStage {
    /// A stage running the given checksum harness configuration.
    pub fn new(config: lv_interp::ChecksumConfig) -> ChecksumStage {
        ChecksumStage {
            filter: ChecksumFilter::new(config),
        }
    }
}

impl VerificationStrategy for ChecksumStage {
    fn stage(&self) -> Stage {
        Stage::Checksum
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        let report = self.filter.run(scalar, candidate);
        worker.checksum = Some(report.outcome.class());
        match report.outcome {
            ChecksumOutcome::NotEquivalent { reason, .. } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: reason,
            },
            ChecksumOutcome::CannotCompile { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: format!("cannot compile: {}", error),
            },
            ChecksumOutcome::ScalarExecutionFailed { error } => StrategyOutcome::Conclusive {
                verdict: Equivalence::Inconclusive,
                detail: format!("scalar kernel failed to execute: {}", error),
            },
            ChecksumOutcome::Plausible => StrategyOutcome::Continue {
                reason: String::new(),
            },
        }
    }
}

/// Algorithm 1 lines 6–13: one symbolic strategy as a cascade stage.
#[derive(Debug, Clone)]
pub struct SymbolicStage {
    strategy: SymbolicStrategy,
    config: TvConfig,
}

impl SymbolicStage {
    /// A stage running `strategy` under `config`.
    pub fn new(strategy: SymbolicStrategy, config: TvConfig) -> SymbolicStage {
        SymbolicStage { strategy, config }
    }
}

impl VerificationStrategy for SymbolicStage {
    fn stage(&self) -> Stage {
        match self.strategy {
            SymbolicStrategy::Alive2Unroll => Stage::Alive2,
            SymbolicStrategy::CUnroll => Stage::CUnroll,
            SymbolicStrategy::SpatialSplitting => Stage::Splitting,
        }
    }

    fn verify(
        &self,
        scalar: &Function,
        candidate: &Function,
        worker: &mut WorkerState,
    ) -> StrategyOutcome {
        match self
            .strategy
            .run(scalar, candidate, &self.config, &mut worker.session)
        {
            lv_tv::TvVerdict::Equivalent => StrategyOutcome::Conclusive {
                verdict: Equivalence::Equivalent,
                detail: String::new(),
            },
            lv_tv::TvVerdict::NotEquivalent { counterexample } => StrategyOutcome::Conclusive {
                verdict: Equivalence::NotEquivalent,
                detail: counterexample,
            },
            lv_tv::TvVerdict::Inconclusive { reason } => StrategyOutcome::Continue { reason },
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// The stages to run, in order. Defaults to Algorithm 1's full cascade.
    pub cascade: Vec<Stage>,
    /// Stage configurations (checksum harness + symbolic budgets).
    pub pipeline: PipelineConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 0,
            cascade: vec![
                Stage::Checksum,
                Stage::Alive2,
                Stage::CUnroll,
                Stage::Splitting,
            ],
            pipeline: PipelineConfig::default(),
        }
    }
}

impl EngineConfig {
    /// The full Algorithm 1 cascade with the given stage configurations.
    pub fn full(pipeline: PipelineConfig) -> EngineConfig {
        EngineConfig {
            pipeline,
            ..EngineConfig::default()
        }
    }

    /// A checksum-only cascade (the Table 2 / Figure 5 experiments).
    pub fn checksum_only(checksum: lv_interp::ChecksumConfig) -> EngineConfig {
        EngineConfig {
            cascade: vec![Stage::Checksum],
            pipeline: PipelineConfig {
                checksum,
                ..PipelineConfig::default()
            },
            ..EngineConfig::default()
        }
    }

    /// Returns this configuration with the given worker count.
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads = threads;
        self
    }
}

/// One unit of work: check `candidate` against `scalar`.
#[derive(Debug, Clone)]
pub struct Job {
    /// Label for reports (kernel name, optionally with a completion index).
    pub label: String,
    /// The scalar reference kernel.
    pub scalar: Function,
    /// The vectorization candidate.
    pub candidate: Function,
}

impl Job {
    /// A job with the given label.
    pub fn new(label: impl Into<String>, scalar: Function, candidate: Function) -> Job {
        Job {
            label: label.into(),
            scalar,
            candidate,
        }
    }
}

/// Telemetry for one cascade stage of one job.
#[derive(Debug, Clone)]
pub struct StageTrace {
    /// The stage that ran.
    pub stage: Stage,
    /// Whether this stage produced the job's final verdict.
    pub conclusive: bool,
    /// Wall time the stage took.
    pub wall: Duration,
    /// SAT conflicts spent (always 0 for the checksum stage).
    pub conflicts: u64,
    /// CNF clauses built (always 0 for the checksum stage).
    pub clauses: u64,
}

/// The result of one job, with telemetry.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// The job's label.
    pub label: String,
    /// The final verdict.
    pub verdict: Equivalence,
    /// The stage that produced it (the last stage run, if none concluded).
    pub stage: Stage,
    /// Counterexample, mismatch, or inconclusive reason.
    pub detail: String,
    /// Checksum classification, when the cascade includes the checksum stage.
    pub checksum: Option<ChecksumClass>,
    /// Per-stage telemetry, in execution order. A conclusive stage is always
    /// last — stages after an early exit never run, which is how tests pin
    /// Algorithm 1's short-circuit ordering.
    pub traces: Vec<StageTrace>,
    /// Total wall time for the job.
    pub wall: Duration,
}

impl JobReport {
    /// Collapses the report into the pipeline's three-field form.
    pub fn equivalence_report(&self) -> EquivalenceReport {
        EquivalenceReport {
            verdict: self.verdict,
            stage: self.stage,
            detail: self.detail.clone(),
        }
    }
}

/// The result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per job, in job order (independent of scheduling).
    pub jobs: Vec<JobReport>,
    /// Wall time of the whole batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl BatchReport {
    /// Total SAT conflicts spent across all jobs and stages.
    pub fn total_conflicts(&self) -> u64 {
        self.jobs
            .iter()
            .flat_map(|j| &j.traces)
            .map(|t| t.conflicts)
            .sum()
    }

    /// Count of jobs whose final verdict is `verdict`.
    pub fn count(&self, verdict: Equivalence) -> usize {
        self.jobs.iter().filter(|j| j.verdict == verdict).count()
    }
}

/// The parallel batch verification engine.
pub struct VerificationEngine {
    threads: usize,
    strategies: Vec<Box<dyn VerificationStrategy>>,
}

impl VerificationEngine {
    /// Builds an engine from a configuration, instantiating one strategy per
    /// cascade stage.
    pub fn new(config: EngineConfig) -> VerificationEngine {
        let strategies = config
            .cascade
            .iter()
            .map(|stage| -> Box<dyn VerificationStrategy> {
                match stage {
                    Stage::Checksum => {
                        Box::new(ChecksumStage::new(config.pipeline.checksum.clone()))
                    }
                    Stage::Alive2 => Box::new(SymbolicStage::new(
                        SymbolicStrategy::Alive2Unroll,
                        config.pipeline.tv.clone(),
                    )),
                    Stage::CUnroll => Box::new(SymbolicStage::new(
                        SymbolicStrategy::CUnroll,
                        config.pipeline.tv.clone(),
                    )),
                    Stage::Splitting => Box::new(SymbolicStage::new(
                        SymbolicStrategy::SpatialSplitting,
                        config.pipeline.tv.clone(),
                    )),
                }
            })
            .collect();
        VerificationEngine {
            threads: config.threads,
            strategies,
        }
    }

    /// An engine with a caller-assembled cascade.
    pub fn with_strategies(
        threads: usize,
        strategies: Vec<Box<dyn VerificationStrategy>>,
    ) -> VerificationEngine {
        VerificationEngine {
            threads,
            strategies,
        }
    }

    /// The worker count a batch of `jobs` jobs would use.
    pub fn resolved_threads(&self, jobs: usize) -> usize {
        resolve_threads(self.threads, jobs)
    }

    /// Runs the cascade on a single pair, reusing nothing (the
    /// [`crate::check_equivalence`] path).
    pub fn check_one(&self, scalar: &Function, candidate: &Function) -> JobReport {
        let mut worker = WorkerState::default();
        self.run_job(
            &Job::new(scalar.name.clone(), scalar.clone(), candidate.clone()),
            &mut worker,
        )
    }

    /// Verifies a batch of jobs on the worker pool.
    ///
    /// Results are returned in job order. Verdicts, stages, and details are
    /// identical for every thread count; only `wall` varies.
    pub fn run_batch(&self, jobs: &[Job]) -> BatchReport {
        let threads = self.resolved_threads(jobs.len());
        let start = Instant::now();
        let reports = parallel_map_with(threads, jobs, WorkerState::default, |job, worker| {
            self.run_job(job, worker)
        });
        BatchReport {
            jobs: reports,
            wall: start.elapsed(),
            threads,
        }
    }

    /// Runs the cascade on one job, collecting per-stage telemetry.
    fn run_job(&self, job: &Job, worker: &mut WorkerState) -> JobReport {
        let job_start = Instant::now();
        worker.checksum = None;
        let mut traces = Vec::with_capacity(self.strategies.len());
        // If no stage concludes, report the last stage that ran (Alive2 with
        // an empty reason for an empty cascade, mirroring the sequential
        // pipeline's initializer).
        let mut last_stage = Stage::Alive2;
        let mut last_reason = String::new();

        for strategy in &self.strategies {
            let stats_before = worker.session.stats;
            let stage_start = Instant::now();
            let outcome = strategy.verify(&job.scalar, &job.candidate, worker);
            let wall = stage_start.elapsed();
            let spent = effort_delta(stats_before, worker.session.stats);
            match outcome {
                StrategyOutcome::Conclusive { verdict, detail } => {
                    traces.push(StageTrace {
                        stage: strategy.stage(),
                        conclusive: true,
                        wall,
                        conflicts: spent.0,
                        clauses: spent.1,
                    });
                    return JobReport {
                        label: job.label.clone(),
                        verdict,
                        stage: strategy.stage(),
                        detail,
                        checksum: worker.checksum,
                        traces,
                        wall: job_start.elapsed(),
                    };
                }
                StrategyOutcome::Continue { reason } => {
                    traces.push(StageTrace {
                        stage: strategy.stage(),
                        conclusive: false,
                        wall,
                        conflicts: spent.0,
                        clauses: spent.1,
                    });
                    last_stage = strategy.stage();
                    last_reason = reason;
                }
            }
        }

        JobReport {
            label: job.label.clone(),
            verdict: Equivalence::Inconclusive,
            stage: last_stage,
            detail: last_reason,
            checksum: worker.checksum,
            traces,
            wall: job_start.elapsed(),
        }
    }
}

fn effort_delta(before: TvSessionStats, after: TvSessionStats) -> (u64, u64) {
    (
        after.conflicts - before.conflicts,
        after.clauses - before.clauses,
    )
}

/// Maps `f` over `items` on a scoped worker pool, preserving order.
///
/// The engine's work-queue pattern as a standalone helper, used by drivers
/// whose per-item work is not a verification (e.g. Figure 6's cost-model
/// evaluations).
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(
        resolve_threads(threads, items.len()),
        items,
        || (),
        |item, _| f(item),
    )
}

/// Resolves a configured worker count: `0` means one per available CPU, and
/// the result is clamped to `[1, items]` so idle workers are never spawned.
fn resolve_threads(configured: usize, items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = if configured == 0 { hw } else { configured };
    threads.clamp(1, items.max(1))
}

/// The work-queue core shared by [`parallel_map`] and
/// [`VerificationEngine::run_batch`]: workers claim item indices from an
/// atomic cursor, each carrying per-worker state built by `init` (the
/// engine's reusable SMT session; `()` for the plain map).
///
/// `threads` must already be resolved and clamped by the caller.
fn parallel_map_with<T, R, S, I, F>(threads: usize, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&T, &mut S) -> R + Sync,
{
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(item, &mut state)).collect();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    let value = f(item, &mut state);
                    *results[index].lock().unwrap() = Some(value);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every item index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lv_agents::vectorize_correct;
    use lv_cir::parse_function;
    use lv_interp::ChecksumConfig;

    const S000: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }";
    const S000_WRONG: &str =
        "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 2; } }";

    fn quick_pipeline() -> PipelineConfig {
        PipelineConfig {
            checksum: ChecksumConfig {
                trials: 1,
                n: 40,
                ..ChecksumConfig::default()
            },
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn engine_verifies_a_correct_candidate() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Equivalent, "{}", report.detail);
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
        // The checksum stage ran first and passed; a symbolic stage concluded.
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(!report.traces[0].conclusive);
        assert!(report.traces.last().unwrap().conclusive);
    }

    #[test]
    fn checksum_refutation_short_circuits_the_cascade() {
        let scalar = parse_function(S000).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let engine = VerificationEngine::new(EngineConfig::full(quick_pipeline()));
        let report = engine.check_one(&scalar, &wrong);
        assert_eq!(report.verdict, Equivalence::NotEquivalent);
        assert_eq!(report.stage, Stage::Checksum);
        // Early exit: exactly one trace, no symbolic stage ran, no SAT work.
        assert_eq!(report.traces.len(), 1);
        assert_eq!(report.traces[0].stage, Stage::Checksum);
        assert!(report.traces[0].conclusive);
        assert_eq!(report.traces[0].conflicts, 0);
    }

    #[test]
    fn batch_reports_preserve_job_order_for_any_thread_count() {
        let scalar = parse_function(S000).unwrap();
        let good = vectorize_correct(&scalar).unwrap();
        let wrong = parse_function(S000_WRONG).unwrap();
        let jobs: Vec<Job> = (0..8)
            .map(|i| {
                let candidate = if i % 2 == 0 {
                    good.clone()
                } else {
                    wrong.clone()
                };
                Job::new(format!("job{}", i), scalar.clone(), candidate)
            })
            .collect();
        let sequential =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(1))
                .run_batch(&jobs);
        let parallel =
            VerificationEngine::new(EngineConfig::full(quick_pipeline()).with_threads(4))
                .run_batch(&jobs);
        assert_eq!(parallel.threads, 4);
        for (s, p) in sequential.jobs.iter().zip(&parallel.jobs) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.verdict, p.verdict);
            assert_eq!(s.stage, p.stage);
            assert_eq!(s.detail, p.detail);
        }
        assert_eq!(sequential.count(Equivalence::Equivalent), 4);
        assert_eq!(sequential.count(Equivalence::NotEquivalent), 4);
    }

    #[test]
    fn checksum_only_cascade_reports_inconclusive_for_plausible() {
        let scalar = parse_function(S000).unwrap();
        let candidate = vectorize_correct(&scalar).unwrap();
        let engine = VerificationEngine::new(EngineConfig::checksum_only(ChecksumConfig {
            trials: 1,
            n: 40,
            ..ChecksumConfig::default()
        }));
        let report = engine.check_one(&scalar, &candidate);
        assert_eq!(report.verdict, Equivalence::Inconclusive);
        assert_eq!(
            report.stage,
            Stage::Checksum,
            "last stage that actually ran"
        );
        assert_eq!(report.checksum, Some(ChecksumClass::Plausible));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(4, &items, |&x| x * 2);
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(4, &empty, |&x: &u64| x).is_empty());
    }
}
