//! # lv-core — the observable, cached, self-tuning batch verification engine
//!
//! This crate ties the substrates together into the system the paper
//! describes, built around a batch engine rather than a hard-coded loop:
//!
//! * [`engine`] — the [`VerificationEngine`], split into three layers:
//!   [`engine::stage`] (Algorithm 1's checksum testing, Alive2-style
//!   unrolling, C-level unrolling, and spatial splitting as
//!   [`VerificationStrategy`] trait objects), [`engine::schedule`] (the
//!   cascade *order* as data — a [`StageSchedule`] is the default Algorithm
//!   1 order plus per-kernel-category overrides permuting only the symbolic
//!   stages, keyed by [`lv_analysis::categorize`]), and [`engine::pool`]
//!   (the atomic work-queue worker pool fanning `(kernel × candidate)`
//!   [`Job`]s out). Each worker owns one reusable SMT session, and every job
//!   records structured telemetry ([`StageTrace`]: stage reached, SAT
//!   conflicts, CNF clauses, wall time). Verdicts are bit-identical for any
//!   thread count *and* any schedule — parallelism is purely a wall-clock
//!   win, and reordering sound symbolic stages only changes which one
//!   answers first. [`EngineReuse`] layers cross-job SMT reuse on top
//!   (blasted-CNF memoization, incremental per-scalar sessions under
//!   scalar-affinity scheduling, portfolio budget racing via
//!   [`PortfolioStage`]); verdict classes and checksums are pinned across
//!   all layers, per-job activity is counted in [`ReuseCounters`], and only
//!   the incremental layer (which can improve the concluding stage)
//!   perturbs the cache fingerprint;
//! * [`observer`] — the [`BatchObserver`] trait: job-started /
//!   stage-finished / job-finished callbacks fired from the worker pool as
//!   a batch progresses, so sweeps render incrementally
//!   ([`StreamObserver`]) instead of waiting on the full [`BatchReport`].
//!   Every experiment driver has a `*_with` variant taking an observer;
//! * [`cache`] — the content-addressed [`VerdictCache`]: an in-memory +
//!   JSON-file verdict store keyed by
//!   `(scalar hash, candidate hash, config hash)` using
//!   [`lv_cir::structural_hash`] (alpha-renaming-insensitive) and
//!   [`EngineConfig::semantic_fingerprint`]. The engine consults it per job
//!   before *any* stage runs; a warmed cache re-runs a whole sweep with
//!   zero checksum/SMT executions and bit-identical verdicts. See the
//!   module docs for the file format and invalidation rules;
//! * [`funnel`] — the first consumer of the telemetry: [`FunnelReport`]
//!   aggregates per-stage reach/kill/conflict distributions over a batch,
//!   and [`AdaptiveBudgetPolicy`] derives tightened per-stage
//!   [`lv_tv::SolverBudget`]s from it
//!   ([`VerificationEngine::run_batch_adaptive`]; opt-in, default off so
//!   verdicts stay bit-identical);
//! * [`profile`] — the *cross-run* consumer of the telemetry: a
//!   [`CrossRunProfile`] persists per-category per-stage reach/kill/time
//!   as a CRC-framed journal next to the verdict cache, accumulating over
//!   every sweep; [`StageSchedule::from_profile`] derives the next run's
//!   per-category stage order from it and
//!   [`AdaptiveBudgetPolicy::derive_from_profile`] its tightened budgets —
//!   no pilot slice needed once a profile exists;
//! * [`service`] — the always-on form of the engine: a loopback-first TCP
//!   daemon ([`VerificationService`]) plus client ([`ServiceClient`])
//!   speaking a length-prefixed, CRC32-framed binary protocol whose verdict
//!   payloads are the cache's own binary records. Submitted jobs are
//!   deduped through the [`VerdictCache`] before any stage runs; admitted
//!   jobs run on the worker pool with the configured schedule and stream
//!   back incrementally through the observer path;
//! * [`shard`] — sharded *multi-process* sweeps: a deterministic
//!   [`ShardPlan`] partitions a batch over N worker processes (spawned by a
//!   coordinator via self-exec `--shard i/N`), each shard runs the unchanged
//!   engine path and exchanges results through a per-shard verdict-cache
//!   file + JSON shard report, and the coordinator supervises (timeouts,
//!   crashes), recovers missing jobs in-process, and merges everything —
//!   with typed cache-conflict errors and [`CacheBounds`] compaction — into
//!   a [`BatchReport`] and cache file equal to the single-process run;
//! * [`pipeline`] — Algorithm 1 ([`check_equivalence`]) as a thin wrapper
//!   over a single-job engine run, so the one-shot and batched paths share
//!   one cascade implementation;
//! * [`passk`] — the pass@k estimator of Section 4.1.2, plus the
//!   overlapped generation→verification drivers ([`overlapped_pass_at_k`]
//!   streaming per-cell seeded completions into the engine's bounded
//!   [`job_channel`] intake, [`generate_then_verify_pass_at_k`] as the
//!   unoverlapped reference — verdicts bit-identical by construction,
//!   CI-pinned);
//! * [`experiments`] — drivers regenerating Table 2 ([`table2`]), Figure 5
//!   ([`figure5`]), Table 3 ([`table3`]), Figure 1(c) ([`figure1`]),
//!   Figure 6 ([`figure6`]) and the Section 4.4 FSM evaluation
//!   ([`fsm_evaluation`]); all of them generate candidates sequentially
//!   (the synthetic LLM is a seeded, stateful sampler) and verify through
//!   the engine's work queue, streaming per-job results through the
//!   observer they are given.
//!
//! # One-shot example
//!
//! ```
//! use lv_core::{check_equivalence, Equivalence, PipelineConfig};
//! use lv_agents::vectorize_correct;
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let candidate = vectorize_correct(&scalar)?;
//! let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
//! assert_eq!(report.verdict, Equivalence::Equivalent);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Cached batch example
//!
//! ```
//! use lv_core::{EngineConfig, Equivalence, Job, PipelineConfig, VerdictCache, VerificationEngine};
//! use lv_agents::vectorize_correct;
//! use std::sync::Arc;
//!
//! let jobs: Vec<Job> = ["s000", "s112", "s212"]
//!     .iter()
//!     .map(|name| {
//!         let scalar = lv_tsvc::kernel(name).unwrap().function();
//!         let candidate = vectorize_correct(&scalar).unwrap();
//!         Job::new(*name, scalar, candidate)
//!     })
//!     .collect();
//! let cache = Arc::new(VerdictCache::in_memory());
//! let engine = VerificationEngine::new(
//!     EngineConfig::full(PipelineConfig::default()).with_cache(cache.clone()),
//! );
//! let cold = engine.run_batch(&jobs);
//! assert_eq!(cold.count(Equivalence::Equivalent), 3);
//! assert_eq!(cold.cache_misses, 3);
//! // The second run answers every job from the cache: zero stages run.
//! let warm = engine.run_batch(&jobs);
//! assert_eq!(warm.cache_hits, 3);
//! assert_eq!(warm.stage_runs(), 0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod experiments;
pub mod funnel;
pub mod journal;
pub mod observer;
pub mod passk;
pub mod pipeline;
pub mod profile;
pub mod service;
pub mod shard;

pub use cache::{
    cache_file_stats, BloomStats, CacheBounds, CacheFileStats, CacheFormat, CacheKey,
    CacheMergeError, CacheSnapshot, CachedVerdict, MergeStats, SnapshotError, SyncEvent,
    VerdictCache, CACHE_FORMAT_VERSION,
};
pub use engine::{
    job_channel, parallel_map, AdaptiveBatchReport, BatchReport, ChecksumStage, EngineConfig,
    EngineReuse, Job, JobProducer, JobReport, JobSource, PortfolioStage, ReuseCounters,
    SimplifyCounters, StageSchedule, StageTrace, StrategyOutcome, SymbolicStage,
    VerificationEngine, VerificationStrategy, WorkerState, PORTFOLIO_TIGHT_DIVISOR,
    SYMBOLIC_STAGES,
};
pub use experiments::{
    figure1, figure1_with, figure5, figure5_with, figure6, figure6_with, fsm_evaluation,
    fsm_evaluation_with, scale_to_paper, table2, table2_with, table3, table3_with,
    ExperimentConfig, Figure5, FsmEvaluation, KernelVerdict, SpeedupFigure, SpeedupRow, Table2,
    Table2Column, Table3, Table3Row,
};
pub use funnel::{AdaptiveBudgetPolicy, FunnelReport, StageFunnel, HISTOGRAM_BUCKETS};
pub use journal::FsyncPolicy;
pub use observer::{
    BatchObserver, CallbackObserver, CountingObserver, IndexMapObserver, NoopObserver,
    OffsetObserver, StreamObserver, TeeObserver,
};
pub use passk::{
    generate_then_verify_pass_at_k, overlapped_pass_at_k, overlapped_pass_at_k_observed, pass_at_k,
    pass_at_k_curve, PassKRun,
};
pub use pipeline::{check_equivalence, Equivalence, EquivalenceReport, PipelineConfig, Stage};
pub use profile::{CrossRunProfile, ProfileCell, PROFILE_FORMAT_VERSION};
pub use service::{
    GenerationRequest, ServiceClient, ServiceError, ServiceStatus, VerificationService,
};
pub use shard::{
    run_generated_sweep, run_sharded_sweep, run_worker_from_args, FlushMode, GenerationSpec,
    ShardError, ShardOutcome, ShardPlan, ShardPolicy, ShardStatus, ShardedSweep, SweepConfig,
    SweepManifest, WorkerSpec,
};
