//! # lv-core — the parallel batch verification engine and experiment drivers
//!
//! This crate ties the substrates together into the system the paper
//! describes, built around a batch engine rather than a hard-coded loop:
//!
//! * [`engine`] — the [`VerificationEngine`]: Algorithm 1's cascade
//!   (checksum testing, Alive2-style unrolling, C-level unrolling, spatial
//!   splitting) expressed as [`VerificationStrategy`] trait objects, fanned
//!   over a pool of workers that pull `(kernel × candidate)` [`Job`]s from a
//!   shared queue. Each worker owns one reusable SMT session, and every job
//!   records structured telemetry ([`StageTrace`]: stage reached, SAT
//!   conflicts, CNF clauses, wall time). Verdicts are bit-identical for any
//!   thread count — parallelism is purely a wall-clock win;
//! * [`pipeline`] — Algorithm 1 ([`check_equivalence`]) as a thin wrapper
//!   over a single-job engine run, so the one-shot and batched paths share
//!   one cascade implementation;
//! * [`passk`] — the pass@k estimator of Section 4.1.2;
//! * [`experiments`] — drivers regenerating Table 2 ([`table2`]), Figure 5
//!   ([`figure5`]), Table 3 ([`table3`]), Figure 1(c) ([`figure1`]),
//!   Figure 6 ([`figure6`]) and the Section 4.4 FSM evaluation
//!   ([`fsm_evaluation`]); all of them generate candidates sequentially
//!   (the synthetic LLM is a seeded, stateful sampler) and verify through
//!   the engine's work queue.
//!
//! # One-shot example
//!
//! ```
//! use lv_core::{check_equivalence, Equivalence, PipelineConfig};
//! use lv_agents::vectorize_correct;
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let candidate = vectorize_correct(&scalar)?;
//! let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
//! assert_eq!(report.verdict, Equivalence::Equivalent);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! # Batch example
//!
//! ```
//! use lv_core::{EngineConfig, Equivalence, Job, PipelineConfig, VerificationEngine};
//! use lv_agents::vectorize_correct;
//!
//! let jobs: Vec<Job> = ["s000", "s112", "s212"]
//!     .iter()
//!     .map(|name| {
//!         let scalar = lv_tsvc::kernel(name).unwrap().function();
//!         let candidate = vectorize_correct(&scalar).unwrap();
//!         Job::new(*name, scalar, candidate)
//!     })
//!     .collect();
//! let engine = VerificationEngine::new(EngineConfig::full(PipelineConfig::default()));
//! let batch = engine.run_batch(&jobs);
//! assert_eq!(batch.count(Equivalence::Equivalent), 3);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod experiments;
pub mod passk;
pub mod pipeline;

pub use engine::{
    parallel_map, BatchReport, ChecksumStage, EngineConfig, Job, JobReport, StageTrace,
    StrategyOutcome, SymbolicStage, VerificationEngine, VerificationStrategy, WorkerState,
};
pub use experiments::{
    figure1, figure5, figure6, fsm_evaluation, scale_to_paper, table2, table3, ExperimentConfig,
    Figure5, FsmEvaluation, KernelVerdict, SpeedupFigure, SpeedupRow, Table2, Table2Column, Table3,
    Table3Row,
};
pub use passk::{pass_at_k, pass_at_k_curve};
pub use pipeline::{check_equivalence, Equivalence, EquivalenceReport, PipelineConfig, Stage};
