//! # lv-core — the end-to-end LLM-Vectorizer pipeline and experiment drivers
//!
//! This crate ties the substrates together into the system the paper
//! describes and provides one driver per table/figure of the evaluation:
//!
//! * [`pipeline`] — Algorithm 1 ([`check_equivalence`]): checksum testing
//!   followed by Alive2-style unrolling, C-level unrolling and spatial
//!   splitting;
//! * [`passk`] — the pass@k estimator of Section 4.1.2;
//! * [`experiments`] — drivers regenerating Table 2 ([`table2`]), Figure 5
//!   ([`figure5`]), Table 3 ([`table3`]), Figure 1(c) ([`figure1`]),
//!   Figure 6 ([`figure6`]) and the Section 4.4 FSM evaluation
//!   ([`fsm_evaluation`]).
//!
//! # Examples
//!
//! ```
//! use lv_core::{check_equivalence, Equivalence, PipelineConfig};
//! use lv_agents::vectorize_correct;
//! use lv_cir::parse_function;
//!
//! let scalar = parse_function(
//!     "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
//! )?;
//! let candidate = vectorize_correct(&scalar)?;
//! let report = check_equivalence(&scalar, &candidate, &PipelineConfig::default());
//! assert_eq!(report.verdict, Equivalence::Equivalent);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod passk;
pub mod pipeline;

pub use experiments::{
    figure1, figure5, figure6, fsm_evaluation, scale_to_paper, table2, table3, ExperimentConfig,
    Figure5, FsmEvaluation, KernelVerdict, SpeedupFigure, SpeedupRow, Table2, Table2Column,
    Table3, Table3Row,
};
pub use passk::{pass_at_k, pass_at_k_curve};
pub use pipeline::{check_equivalence, Equivalence, EquivalenceReport, PipelineConfig, Stage};
