//! The pass@k metric (Chen et al. 2021), adapted as in Section 4.1.2: a
//! completion "passes" when checksum-based testing labels it `Plausible`.
//!
//! Besides the estimator itself, this module hosts the **overlapped
//! pass@k driver** ([`overlapped_pass_at_k`]): seeded parallel candidate
//! generation (per-cell seeds via
//! [`lv_agents::derive_cell_seed`]) streaming into the engine's bounded
//! [`JobSource`](crate::JobSource) intake, so verification starts on the
//! first candidates while later ones are still being sampled. Scaling `k`
//! no longer pays generation as a dead serial prefix — and the result is
//! bit-identical to the unoverlapped [`generate_then_verify_pass_at_k`]
//! run at any generator/worker thread count, because every cell's draws
//! come from its own derived seed and the engine reassembles reports in
//! job-index order.

use crate::engine::{job_channel, BatchReport, Job, VerificationEngine};
use crate::observer::{BatchObserver, NoopObserver};
use lv_agents::{sample_completion_batch_seeded, sample_completion_cell, LlmConfig};
use lv_cir::ast::Function;
use lv_interp::ChecksumClass;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The unbiased pass@k estimator for a single problem: given `n` samples of
/// which `c` are correct, `pass@k = 1 - C(n-c, k) / C(n, k)`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    if k == 0 || n == 0 {
        return 0.0;
    }
    if c == 0 {
        return 0.0;
    }
    if n.saturating_sub(c) < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k / i)
    let mut prod = 1.0f64;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Averages pass@k over a set of problems for each requested `k`.
pub fn pass_at_k_curve(correct_per_problem: &[usize], n: usize, ks: &[usize]) -> Vec<(usize, f64)> {
    ks.iter()
        .map(|&k| {
            let mean = if correct_per_problem.is_empty() {
                0.0
            } else {
                correct_per_problem
                    .iter()
                    .map(|&c| pass_at_k(n, c, k))
                    .sum::<f64>()
                    / correct_per_problem.len() as f64
            };
            (k, mean)
        })
        .collect()
}

/// The result of one pass@k pipeline run (overlapped or not).
#[derive(Debug)]
pub struct PassKRun {
    /// The engine's batch report, in job order: cell `(kernel i,
    /// completion j)` is job `i * k + j`, labeled `name#j`.
    pub report: BatchReport,
    /// Per-kernel count of completions whose checksum classification was
    /// `Plausible` — the pass@k notion of "correct" (Section 4.1.2).
    pub plausible_per_kernel: Vec<usize>,
    /// The averaged `(k, pass@k)` curve over the requested `ks`.
    pub curve: Vec<(usize, f64)>,
}

fn finish_run(report: BatchReport, kernels: usize, k: usize, ks: &[usize]) -> PassKRun {
    let mut plausible_per_kernel = vec![0usize; kernels];
    for (cell, job) in report.jobs.iter().enumerate() {
        if job.checksum == Some(ChecksumClass::Plausible) {
            plausible_per_kernel[cell / k.max(1)] += 1;
        }
    }
    PassKRun {
        curve: pass_at_k_curve(&plausible_per_kernel, k, ks),
        plausible_per_kernel,
        report,
    }
}

/// Streams `k` seeded completions per kernel into `engine` as they are
/// generated — verification overlaps generation instead of waiting for the
/// full candidate list.
///
/// `gen_threads` generator threads claim `(kernel, completion)` cells from
/// a shared cursor (0 = one per available CPU), sample each cell with its
/// [`lv_agents::derive_cell_seed`]-derived seed, and push the job into a
/// bounded channel with room for `queue_capacity` in-flight candidates
/// (backpressure, not a materialized batch). Output is bit-identical to
/// [`generate_then_verify_pass_at_k`] with the same `llm_config.seed` at
/// any generator or worker thread count.
pub fn overlapped_pass_at_k(
    engine: &VerificationEngine,
    kernels: &[(String, Function)],
    llm_config: &LlmConfig,
    k: usize,
    ks: &[usize],
    gen_threads: usize,
    queue_capacity: usize,
) -> PassKRun {
    overlapped_pass_at_k_observed(
        engine,
        kernels,
        llm_config,
        k,
        ks,
        gen_threads,
        queue_capacity,
        &NoopObserver,
    )
}

/// [`overlapped_pass_at_k`], streaming engine events to `observer` (job
/// indices are the cell indices `i * k + j`).
#[allow(clippy::too_many_arguments)]
pub fn overlapped_pass_at_k_observed(
    engine: &VerificationEngine,
    kernels: &[(String, Function)],
    llm_config: &LlmConfig,
    k: usize,
    ks: &[usize],
    gen_threads: usize,
    queue_capacity: usize,
    observer: &dyn BatchObserver,
) -> PassKRun {
    let cells = kernels.len().saturating_mul(k);
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gen_threads = (if gen_threads == 0 { hw } else { gen_threads }).clamp(1, cells.max(1));
    let (producer, source) = job_channel(queue_capacity);
    let cursor = AtomicUsize::new(0);
    let report = std::thread::scope(|scope| {
        for _ in 0..gen_threads {
            let producer = producer.clone();
            let cursor = &cursor;
            scope.spawn(move || loop {
                let cell = cursor.fetch_add(1, Ordering::Relaxed);
                if cell >= cells {
                    break;
                }
                let (i, j) = (cell / k, cell % k);
                let (name, scalar) = &kernels[i];
                let completion = sample_completion_cell(scalar, llm_config, i, j);
                producer.push(
                    cell,
                    Job::new(
                        format!("{}#{}", name, j),
                        scalar.clone(),
                        completion.candidate,
                    ),
                );
            });
        }
        // The spawned generators hold their own clones; dropping the
        // original lets the channel close when the last generator exits.
        drop(producer);
        engine.run_stream_observed(&source, observer)
    });
    finish_run(report, kernels.len(), k, ks)
}

/// The unoverlapped reference: seeded generation of the full candidate
/// list first, then one [`VerificationEngine::run_batch`] — same jobs,
/// same labels, same verdicts as [`overlapped_pass_at_k`], but generation
/// is a serial prefix on the wall clock. This is the baseline arm of the
/// `pipeline_overlap` bench and of the pipeline identity pins.
pub fn generate_then_verify_pass_at_k(
    engine: &VerificationEngine,
    kernels: &[(String, Function)],
    llm_config: &LlmConfig,
    k: usize,
    ks: &[usize],
    gen_threads: usize,
) -> PassKRun {
    let scalars: Vec<Function> = kernels.iter().map(|(_, f)| f.clone()).collect();
    let batch = sample_completion_batch_seeded(&scalars, llm_config, k, gen_threads);
    let jobs: Vec<Job> = batch
        .into_jobs()
        .map(|(i, j, completion)| {
            Job::new(
                format!("{}#{}", kernels[i].0, j),
                kernels[i].1.clone(),
                completion.candidate,
            )
        })
        .collect();
    let report = engine.run_batch(&jobs);
    finish_run(report, kernels.len(), k, ks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_cases() {
        assert_eq!(pass_at_k(10, 0, 5), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
        assert_eq!(pass_at_k(0, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 3, 0), 0.0);
    }

    #[test]
    fn matches_closed_form_for_single_sample() {
        // With n samples, c correct, k = 1 the estimator equals c / n.
        for (n, c) in [(10usize, 3usize), (20, 7), (100, 42)] {
            let estimate = pass_at_k(n, c, 1);
            assert!((estimate - c as f64 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_in_k_and_c() {
        assert!(pass_at_k(10, 3, 5) > pass_at_k(10, 3, 1));
        assert!(pass_at_k(10, 5, 3) > pass_at_k(10, 2, 3));
        assert_eq!(pass_at_k(10, 3, 8), 1.0, "k > n - c forces a hit");
    }

    #[test]
    fn curve_averages_problems() {
        let curve = pass_at_k_curve(&[0, 10], 10, &[1, 5]);
        assert_eq!(curve[0], (1, 0.5));
        assert_eq!(curve[1], (5, 0.5));
    }

    fn passk_kernels() -> Vec<(String, Function)> {
        [
            (
                "s000",
                "void s000(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] + 1; } }",
            ),
            (
                "vag",
                "void vag(int n, int *a, int *b) { for (int i = 0; i < n; i++) { a[i] = b[i] * b[i]; } }",
            ),
        ]
        .iter()
        .map(|(name, src)| (name.to_string(), lv_cir::parse_function(src).unwrap()))
        .collect()
    }

    fn checksum_only_engine(threads: usize) -> VerificationEngine {
        use crate::engine::{ChecksumStage, VerificationStrategy};
        let stages: Vec<Box<dyn VerificationStrategy>> =
            vec![Box::new(ChecksumStage::new(Default::default()))];
        VerificationEngine::with_strategies(threads, stages)
    }

    #[test]
    fn overlapped_matches_generate_then_verify() {
        let kernels = passk_kernels();
        let config = LlmConfig::default();
        let ks = [1usize, 2, 4];
        let reference =
            generate_then_verify_pass_at_k(&checksum_only_engine(1), &kernels, &config, 4, &ks, 1);
        for (gen_threads, workers) in [(1usize, 1usize), (2, 2), (8, 8), (3, 1)] {
            let overlapped = overlapped_pass_at_k(
                &checksum_only_engine(workers),
                &kernels,
                &config,
                4,
                &ks,
                gen_threads,
                2,
            );
            assert_eq!(overlapped.curve, reference.curve);
            assert_eq!(
                overlapped.plausible_per_kernel,
                reference.plausible_per_kernel
            );
            assert_eq!(overlapped.report.jobs.len(), reference.report.jobs.len());
            for (a, b) in overlapped.report.jobs.iter().zip(&reference.report.jobs) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.verdict, b.verdict);
                assert_eq!(a.stage, b.stage);
                assert_eq!(a.checksum, b.checksum);
                assert_eq!(a.detail, b.detail);
            }
        }
    }

    #[test]
    fn overlapped_handles_an_empty_axis() {
        let kernels = passk_kernels();
        let run = overlapped_pass_at_k(
            &checksum_only_engine(2),
            &kernels,
            &LlmConfig::default(),
            0,
            &[1],
            2,
            2,
        );
        assert!(run.report.jobs.is_empty());
        assert_eq!(run.plausible_per_kernel, vec![0, 0]);
    }
}
