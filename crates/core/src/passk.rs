//! The pass@k metric (Chen et al. 2021), adapted as in Section 4.1.2: a
//! completion "passes" when checksum-based testing labels it `Plausible`.

/// The unbiased pass@k estimator for a single problem: given `n` samples of
/// which `c` are correct, `pass@k = 1 - C(n-c, k) / C(n, k)`.
pub fn pass_at_k(n: usize, c: usize, k: usize) -> f64 {
    if k == 0 || n == 0 {
        return 0.0;
    }
    if c == 0 {
        return 0.0;
    }
    if n.saturating_sub(c) < k {
        return 1.0;
    }
    // 1 - prod_{i=n-c+1..=n} (1 - k / i)
    let mut prod = 1.0f64;
    for i in (n - c + 1)..=n {
        prod *= 1.0 - k as f64 / i as f64;
    }
    1.0 - prod
}

/// Averages pass@k over a set of problems for each requested `k`.
pub fn pass_at_k_curve(correct_per_problem: &[usize], n: usize, ks: &[usize]) -> Vec<(usize, f64)> {
    ks.iter()
        .map(|&k| {
            let mean = if correct_per_problem.is_empty() {
                0.0
            } else {
                correct_per_problem
                    .iter()
                    .map(|&c| pass_at_k(n, c, k))
                    .sum::<f64>()
                    / correct_per_problem.len() as f64
            };
            (k, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_cases() {
        assert_eq!(pass_at_k(10, 0, 5), 0.0);
        assert_eq!(pass_at_k(10, 10, 1), 1.0);
        assert_eq!(pass_at_k(0, 0, 1), 0.0);
        assert_eq!(pass_at_k(10, 3, 0), 0.0);
    }

    #[test]
    fn matches_closed_form_for_single_sample() {
        // With n samples, c correct, k = 1 the estimator equals c / n.
        for (n, c) in [(10usize, 3usize), (20, 7), (100, 42)] {
            let estimate = pass_at_k(n, c, 1);
            assert!((estimate - c as f64 / n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_in_k_and_c() {
        assert!(pass_at_k(10, 3, 5) > pass_at_k(10, 3, 1));
        assert!(pass_at_k(10, 5, 3) > pass_at_k(10, 2, 3));
        assert_eq!(pass_at_k(10, 3, 8), 1.0, "k > n - c forces a hit");
    }

    #[test]
    fn curve_averages_problems() {
        let curve = pass_at_k_curve(&[0, 10], 10, &[1, 5]);
        assert_eq!(curve[0], (1, 0.5));
        assert_eq!(curve[1], (5, 0.5));
    }
}
