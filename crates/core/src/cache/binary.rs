//! The compact binary record codec and the binary cache-journal dialect.
//!
//! One cache record is the fixed-width key prefix followed by the verdict
//! payload (see the [module docs](super) for the full byte layout):
//!
//! ```text
//! [scalar u64 LE][candidate u64 LE][config u64 LE]   -- 24-byte key prefix
//! [verdict u8][stage u8][checksum u8]                -- enum tags
//! [detail varint length][detail UTF-8 bytes]         -- the only variable field
//! ```
//!
//! The same record bytes are used as binary-journal frame payloads and,
//! key-stripped (the key lives in the snapshot's index), as snapshot payload
//! entries — one codec, two containers. Decoding is strict: unknown tags,
//! truncated fields, non-UTF-8 details, and trailing bytes are all errors,
//! never guesses, so a corrupt record can never produce a wrong verdict.

use super::{CacheKey, CachedVerdict, CACHE_FORMAT_VERSION, CACHE_JOURNAL_KIND};
use crate::pipeline::{Equivalence, Stage};
use lv_interp::ChecksumClass;
use serde::bin::{self, Reader};
use std::collections::HashMap;

/// Size of the fixed-width key prefix: three `u64` hashes.
pub(crate) const KEY_BYTES: usize = 24;

fn verdict_byte(verdict: Equivalence) -> u8 {
    match verdict {
        Equivalence::Equivalent => 0,
        Equivalence::NotEquivalent => 1,
        Equivalence::Inconclusive => 2,
    }
}

fn parse_verdict_byte(tag: u8) -> Result<Equivalence, String> {
    match tag {
        0 => Ok(Equivalence::Equivalent),
        1 => Ok(Equivalence::NotEquivalent),
        2 => Ok(Equivalence::Inconclusive),
        other => Err(format!("unknown binary verdict tag {}", other)),
    }
}

fn stage_byte(stage: Stage) -> u8 {
    match stage {
        Stage::Checksum => 0,
        Stage::Alive2 => 1,
        Stage::CUnroll => 2,
        Stage::Splitting => 3,
    }
}

fn parse_stage_byte(tag: u8) -> Result<Stage, String> {
    match tag {
        0 => Ok(Stage::Checksum),
        1 => Ok(Stage::Alive2),
        2 => Ok(Stage::CUnroll),
        3 => Ok(Stage::Splitting),
        other => Err(format!("unknown binary stage tag {}", other)),
    }
}

fn checksum_byte(class: Option<ChecksumClass>) -> u8 {
    match class {
        None => 0,
        Some(ChecksumClass::Plausible) => 1,
        Some(ChecksumClass::NotEquivalent) => 2,
        Some(ChecksumClass::CannotCompile) => 3,
        Some(ChecksumClass::ScalarFailed) => 4,
    }
}

fn parse_checksum_byte(tag: u8) -> Result<Option<ChecksumClass>, String> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(ChecksumClass::Plausible)),
        2 => Ok(Some(ChecksumClass::NotEquivalent)),
        3 => Ok(Some(ChecksumClass::CannotCompile)),
        4 => Ok(Some(ChecksumClass::ScalarFailed)),
        other => Err(format!("unknown binary checksum tag {}", other)),
    }
}

/// Appends the 24-byte key prefix.
pub(crate) fn encode_key(buf: &mut Vec<u8>, key: &CacheKey) {
    bin::put_u64(buf, key.scalar);
    bin::put_u64(buf, key.candidate);
    bin::put_u64(buf, key.config);
}

/// Decodes a 24-byte key prefix.
pub(crate) fn decode_key(r: &mut Reader<'_>) -> Result<CacheKey, String> {
    Ok(CacheKey {
        scalar: r.u64()?,
        candidate: r.u64()?,
        config: r.u64()?,
    })
}

/// Appends the verdict payload (tags + varint-length detail).
pub(crate) fn encode_verdict(buf: &mut Vec<u8>, verdict: &CachedVerdict) {
    bin::put_u8(buf, verdict_byte(verdict.verdict));
    bin::put_u8(buf, stage_byte(verdict.stage));
    bin::put_u8(buf, checksum_byte(verdict.checksum));
    bin::put_str(buf, &verdict.detail);
}

/// Decodes a verdict payload.
pub(crate) fn decode_verdict(r: &mut Reader<'_>) -> Result<CachedVerdict, String> {
    let verdict = parse_verdict_byte(r.u8()?)?;
    let stage = parse_stage_byte(r.u8()?)?;
    let checksum = parse_checksum_byte(r.u8()?)?;
    let detail = r.str()?.to_string();
    Ok(CachedVerdict {
        verdict,
        stage,
        detail,
        checksum,
    })
}

/// Structurally validates a verdict payload without allocating: tags in
/// range, length prefix in bounds, detail valid UTF-8. What makes the
/// snapshot's lazy [`decode_verdict`] on the hit path infallible.
pub(crate) fn validate_verdict(r: &mut Reader<'_>) -> Result<(), String> {
    parse_verdict_byte(r.u8()?)?;
    parse_stage_byte(r.u8()?)?;
    parse_checksum_byte(r.u8()?)?;
    r.str()?;
    Ok(())
}

/// Appends one full record: key prefix + verdict payload.
pub(crate) fn encode_record(buf: &mut Vec<u8>, key: &CacheKey, verdict: &CachedVerdict) {
    encode_key(buf, key);
    encode_verdict(buf, verdict);
}

/// Decodes one full record, requiring every byte to be consumed.
pub(crate) fn decode_record(bytes: &[u8]) -> Result<(CacheKey, CachedVerdict), String> {
    let mut r = Reader::new(bytes);
    let key = decode_key(&mut r)?;
    let verdict = decode_verdict(&mut r)?;
    if !r.is_empty() {
        return Err(format!(
            "binary record has {} trailing bytes after the detail field",
            r.remaining()
        ));
    }
    Ok((key, verdict))
}

/// Fills the binary cache journal's header frame payload: the kind string
/// and the format version (mirroring the JSON journal's header record).
pub(crate) fn emit_binary_cache_header(buf: &mut Vec<u8>) {
    bin::put_str(buf, CACHE_JOURNAL_KIND);
    bin::put_u32(buf, CACHE_FORMAT_VERSION as u32);
}

/// Validates a replayed binary journal header against the cache kind and
/// version. `None` (a header torn at creation) passes with zero records,
/// like the JSON path.
pub(crate) fn check_binary_cache_header(header: Option<&[u8]>) -> Result<(), String> {
    let Some(payload) = header else {
        return Ok(());
    };
    let mut r = Reader::new(payload);
    let kind = r
        .str()
        .map_err(|e| format!("binary journal header: {}", e))?;
    if kind != CACHE_JOURNAL_KIND {
        return Err(format!(
            "binary journal is of kind `{}`, expected `{}`",
            kind, CACHE_JOURNAL_KIND
        ));
    }
    let version = r
        .u32()
        .map_err(|e| format!("binary journal header: {}", e))?;
    if i64::from(version) != CACHE_FORMAT_VERSION {
        return Err(format!(
            "binary journal has format version {}, this build reads version {}",
            version, CACHE_FORMAT_VERSION
        ));
    }
    Ok(())
}

/// Builds the entry map from replayed binary journal records, with the same
/// duplicate-key semantics as the JSON path: an identical duplicate is a
/// no-op, a disagreeing one is corruption — never last-write-wins.
pub(crate) fn entries_from_binary_records(
    records: &[&[u8]],
) -> Result<HashMap<CacheKey, CachedVerdict>, String> {
    let mut entries = HashMap::with_capacity(records.len());
    for record in records {
        let (key, verdict) = decode_record(record)?;
        match entries.get(&key) {
            None => {
                entries.insert(key, verdict);
            }
            Some(existing) if *existing == verdict => {}
            Some(_) => {
                return Err(format!(
                    "binary journal records disagree on key (scalar {:016x}, candidate \
                     {:016x}, config {:016x})",
                    key.scalar, key.candidate, key.config
                ))
            }
        }
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_class_entries() -> Vec<(CacheKey, CachedVerdict)> {
        let mut entries = Vec::new();
        let verdicts = [
            Equivalence::Equivalent,
            Equivalence::NotEquivalent,
            Equivalence::Inconclusive,
        ];
        let stages = [
            Stage::Checksum,
            Stage::Alive2,
            Stage::CUnroll,
            Stage::Splitting,
        ];
        let checksums = [
            None,
            Some(ChecksumClass::Plausible),
            Some(ChecksumClass::NotEquivalent),
            Some(ChecksumClass::CannotCompile),
            Some(ChecksumClass::ScalarFailed),
        ];
        let mut i = 0u64;
        for verdict in verdicts {
            for stage in stages {
                for checksum in checksums {
                    i += 1;
                    entries.push((
                        CacheKey {
                            scalar: i,
                            candidate: i.wrapping_mul(0x9e37),
                            config: u64::MAX - i,
                        },
                        CachedVerdict {
                            verdict,
                            stage,
                            detail: format!("detail {} with \"quotes\"\nand unicode é", i),
                            checksum,
                        },
                    ));
                }
            }
        }
        entries
    }

    #[test]
    fn every_class_round_trips() {
        for (key, verdict) in all_class_entries() {
            let mut buf = Vec::new();
            encode_record(&mut buf, &key, &verdict);
            let (k, v) = decode_record(&buf).unwrap();
            assert_eq!(k, key);
            assert_eq!(v, verdict);
            let mut prefix = Vec::new();
            encode_key(&mut prefix, &key);
            assert_eq!(&buf[..KEY_BYTES], &prefix[..]);
        }
    }

    #[test]
    fn bad_tags_and_trailing_bytes_are_errors() {
        let (key, verdict) = all_class_entries().remove(0);
        let mut buf = Vec::new();
        encode_record(&mut buf, &key, &verdict);
        for (offset, limit) in [(KEY_BYTES, 3u8), (KEY_BYTES + 1, 4), (KEY_BYTES + 2, 5)] {
            let mut bad = buf.clone();
            bad[offset] = limit;
            assert!(
                decode_record(&bad).is_err(),
                "tag at {} out of range",
                offset
            );
        }
        let mut trailing = buf.clone();
        trailing.push(0);
        let err = decode_record(&trailing).unwrap_err();
        assert!(err.contains("trailing"), "{}", err);
        assert!(
            decode_record(&buf[..buf.len() - 1]).is_err(),
            "truncated detail"
        );
    }

    #[test]
    fn header_checks_kind_and_version() {
        let mut buf = Vec::new();
        emit_binary_cache_header(&mut buf);
        check_binary_cache_header(Some(&buf)).unwrap();
        check_binary_cache_header(None).unwrap();
        let mut wrong_kind = Vec::new();
        serde::bin::put_str(&mut wrong_kind, "shard-report");
        serde::bin::put_u32(&mut wrong_kind, 1);
        assert!(check_binary_cache_header(Some(&wrong_kind)).is_err());
        let mut wrong_version = Vec::new();
        serde::bin::put_str(&mut wrong_version, CACHE_JOURNAL_KIND);
        serde::bin::put_u32(&mut wrong_version, 999);
        let err = check_binary_cache_header(Some(&wrong_version)).unwrap_err();
        assert!(err.contains("999"), "{}", err);
    }

    #[test]
    fn duplicate_records_agree_or_error() {
        let (key, verdict) = all_class_entries().remove(0);
        let mut record = Vec::new();
        encode_record(&mut record, &key, &verdict);
        let entries =
            entries_from_binary_records(&[&record, &record]).expect("identical duplicate is fine");
        assert_eq!(entries.len(), 1);

        let mut flipped = verdict.clone();
        flipped.verdict = Equivalence::Inconclusive;
        let mut other = Vec::new();
        encode_record(&mut other, &key, &flipped);
        let err = entries_from_binary_records(&[&record, &other]).unwrap_err();
        assert!(err.contains("disagree"), "{}", err);
    }
}
